//! News routing: multiclass topic classification (AG News, 4 classes) with
//! different query-instance samplers — the Table 4 ablation as an
//! application.
//!
//! A newsroom wants incoming wire stories routed to the World, Sports,
//! Business, or Sci/Tech desk without labeling 96k articles by hand.
//!
//! ```text
//! cargo run -p datasculpt --example news_routing --release
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::prelude::*;

fn main() {
    // Down-scaled AG News; remove `load_scaled` for the full 96k articles.
    let dataset = DatasetName::Agnews.load_scaled(21, 0.05);
    println!(
        "news routing over {} unlabeled articles, {} classes: {:?}\n",
        dataset.train.len(),
        dataset.n_classes(),
        dataset.spec.class_names
    );

    let eval_cfg = EvalConfig::default();
    for sampler in [
        SamplerKind::Random,
        SamplerKind::Uncertain,
        SamplerKind::Seu,
    ] {
        let mut config = DataSculptConfig::sc(5);
        config.sampler = sampler;
        let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), 3);
        let run = DataSculpt::new(&dataset, config)
            .run(&mut llm)
            .expect("the simulated model does not fail");
        let eval = evaluate_lf_set(&dataset, &run.lf_set, &eval_cfg);
        println!(
            "{:>9} sampler: {:>3} LFs, LF acc {}, total cov {:.3}, routing accuracy {:.3}",
            sampler.label(),
            eval.lf_stats.n_lfs,
            eval.lf_stats
                .lf_accuracy
                .map_or("   -".to_string(), |a| format!("{a:.3}")),
            eval.lf_stats.total_coverage,
            eval.end_metric
        );
    }

    println!("\n(The paper's Table 4 finding: random sampling is a strong default;");
    println!(" SEU yields fewer, more redundant LFs; uncertainty picks hard instances");
    println!(" the LLM labels poorly.)");
}
