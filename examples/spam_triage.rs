//! Spam triage: build an SMS spam filter with weak supervision, comparing
//! DataSculpt against the hand-written-expert and exhaustive-annotation
//! baselines on cost and quality.
//!
//! This is the workload the paper's introduction motivates: a large pile
//! of unlabeled messages, a small labeled validation set, and no budget
//! for manual labeling.
//!
//! ```text
//! cargo run -p datasculpt --example spam_triage --release
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::core::eval::evaluate_matrix;
use datasculpt::prelude::*;

fn main() {
    // Down-scaled for a quick demo; remove `load_scaled` for Table 1 sizes.
    let dataset = DatasetName::Sms.load_scaled(11, 0.25);
    println!(
        "SMS spam triage: {} unlabeled texts, {} labeled validation texts\n",
        dataset.train.len(),
        dataset.valid.len()
    );
    let eval_cfg = EvalConfig::default();

    // --- Expert baseline: hand-written keyword rules (WRENCH style). ---
    let expert_lfs = wrench_expert_lfs(&dataset, wrench_lf_count(DatasetName::Sms));
    let mut expert_set = LfSet::new(&dataset, FilterConfig::validity_only());
    for lf in expert_lfs {
        expert_set.try_add(lf);
    }
    let expert = evaluate_lf_set(&dataset, &expert_set, &eval_cfg);
    println!(
        "expert rules:   {:>3} LFs, F1 {:.3}, cost $0 (but a domain expert's afternoon)",
        expert.lf_stats.n_lfs, expert.end_metric
    );

    // --- DataSculpt-SC: 50 LLM queries with self-consistency. ---
    let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), 3);
    let run = DataSculpt::new(&dataset, DataSculptConfig::sc(5))
        .run(&mut llm)
        .expect("the simulated model does not fail");
    let sculpt = evaluate_lf_set(&dataset, &run.lf_set, &eval_cfg);
    println!(
        "DataSculpt-SC:  {:>3} LFs, F1 {:.3}, cost ${:.4} ({} tokens)",
        sculpt.lf_stats.n_lfs,
        sculpt.end_metric,
        run.ledger.total_cost_usd(),
        run.ledger.total_usage().total()
    );

    // --- PromptedLF: annotate every message with every template. ---
    let mut llm2 = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), 9);
    let prompted = promptedlf_run(&dataset, &mut llm2);
    let prompted_eval = evaluate_matrix(&dataset, &prompted.matrix, &eval_cfg);
    println!(
        "PromptedLF:     {:>3} LFs, F1 {:.3}, cost ${:.4} ({} tokens)",
        prompted.n_lfs(),
        prompted_eval.end_metric,
        prompted.ledger.total_cost_usd(),
        prompted.ledger.total_usage().total()
    );

    let ratio = prompted.ledger.total_cost_usd() / run.ledger.total_cost_usd().max(1e-9);
    println!(
        "\nDataSculpt reaches comparable F1 at {ratio:.0}x lower cost than exhaustive annotation."
    );
}
