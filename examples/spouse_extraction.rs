//! Relation extraction: find spouse pairs in news text — the paper's
//! hardest setting (§3.1, §3.6). Demonstrates entity-anchored LFs and the
//! default-class rule.
//!
//! ```text
//! cargo run -p datasculpt --example spouse_extraction --release
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::core::lf::anchored_fires;
use datasculpt::prelude::*;

fn main() {
    let dataset = DatasetName::Spouse.load_scaled(33, 0.1);
    println!(
        "spouse extraction over {} passages ({}% positive)\n",
        dataset.train.len(),
        (dataset.generative.priors()[1] * 100.0).round()
    );

    // Show why anchoring matters: the classic "A marry C" confusion.
    let sample = dataset
        .train
        .iter()
        .find(|i| {
            i.marked_tokens
                .as_ref()
                .is_some_and(|m| m.iter().any(|t| t == "married"))
        })
        .and_then(|i| i.marked_tokens.clone());
    if let Some(tokens) = sample {
        let plain_fires = tokens.iter().any(|t| t == "married");
        let anchored = anchored_fires(&tokens, "married");
        println!(
            "example passage mentions 'married': plain LF fires = {plain_fires}, entity-anchored LF fires = {anchored}\n"
        );
    }

    // Run DataSculpt-SC; keywords become both plain and [A]…[B]-anchored
    // LFs, and the filters keep whichever survive validation.
    let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), 3);
    let run = DataSculpt::new(&dataset, DataSculptConfig::sc(5))
        .run(&mut llm)
        .expect("the simulated model does not fail");
    let anchored_count = run.lf_set.lfs().iter().filter(|l| l.anchored).count();
    println!(
        "synthesized {} LFs ({} entity-anchored), e.g.:",
        run.lf_set.len(),
        anchored_count
    );
    for lf in run.lf_set.lfs().iter().take(6) {
        println!("  {lf}");
    }

    // Evaluation applies the default class (§3.6): uncovered passages are
    // assigned "no relation" before end-model training.
    let eval = evaluate_lf_set(&dataset, &run.lf_set, &EvalConfig::default());
    println!(
        "\ntotal coverage {:.3} (rest defaulted to '{}'), test F1 {:.3}, cost ${:.4}",
        eval.lf_stats.total_coverage,
        dataset.spec.class_names[dataset.spec.default_class.expect("spouse has a default")],
        eval.end_metric,
        run.ledger.total_cost_usd()
    );
}
