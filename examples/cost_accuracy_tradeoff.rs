//! Cost/accuracy trade-off: sweep the number of LLM queries and watch end
//! model accuracy saturate while cost stays pennies — the heart of the
//! paper's cost-efficiency argument (§4.2, Figures 3–4).
//!
//! ```text
//! cargo run -p datasculpt --example cost_accuracy_tradeoff --release
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::prelude::*;

fn main() {
    let dataset = DatasetName::Imdb.load_scaled(5, 0.1);
    println!(
        "IMDB sentiment, {} unlabeled reviews — DataSculpt-Base with growing query budgets\n",
        dataset.train.len()
    );
    println!(
        "{:>8} {:>7} {:>9} {:>10} {:>11} {:>10}",
        "queries", "#LFs", "total cov", "test acc", "tokens", "cost"
    );

    for queries in [5, 10, 25, 50, 100] {
        let mut config = DataSculptConfig::base(1);
        config.num_queries = queries;
        let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), 7);
        let run = DataSculpt::new(&dataset, config)
            .run(&mut llm)
            .expect("the simulated model does not fail");
        let eval = evaluate_lf_set(&dataset, &run.lf_set, &EvalConfig::default());
        println!(
            "{queries:>8} {:>7} {:>9.3} {:>10.3} {:>11} {:>9.4}$",
            run.lf_set.len(),
            eval.lf_stats.total_coverage,
            eval.end_metric,
            run.ledger.total_usage().total(),
            run.ledger.total_cost_usd(),
        );
    }

    // Reference point: what exhaustive annotation costs on the same data.
    let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), 9);
    let prompted = promptedlf_run(&dataset, &mut llm);
    println!(
        "\nPromptedLF reference: {} templates x {} instances = {} calls, ${:.2}",
        promptedlf_templates(&dataset).len(),
        dataset.train.len(),
        prompted.ledger.calls(),
        prompted.ledger.total_cost_usd()
    );
    println!("(At the full Table 1 sizes the paper reports ~$0.06 vs >$250.)");
}
