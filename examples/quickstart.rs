//! Quickstart: run DataSculpt-Base on the Youtube spam dataset and print
//! the Table 2 metric family for the run.
//!
//! ```text
//! cargo run -p datasculpt --example quickstart --release
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::prelude::*;

fn main() {
    // Load the synthetic Youtube comment-spam dataset at the Table 1
    // sizes (1586 train / 120 valid / 250 test).
    let dataset = DatasetName::Youtube.load(42);
    println!(
        "dataset: {} ({} train / {} valid / {} test, {} classes)",
        dataset.spec.name,
        dataset.train.len(),
        dataset.valid.len(),
        dataset.test.len(),
        dataset.n_classes()
    );

    // The simulated gpt-3.5-turbo. Swap in any `ChatModel` implementation
    // — a real API client would plug in here unchanged.
    let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), 7);

    // DataSculpt-Base: 50 query iterations, few-shot prompt, all filters.
    let config = DataSculptConfig::base(1);
    let run = DataSculpt::new(&dataset, config)
        .run(&mut llm)
        .expect("the simulated model does not fail");

    println!("\nfirst few synthesized LFs:");
    for lf in run.lf_set.lfs().iter().take(8) {
        println!("  {lf}");
    }

    // Aggregate with the MeTaL-style label model, train the logistic-
    // regression end model, and score on the test split.
    let eval = evaluate_lf_set(&dataset, &run.lf_set, &EvalConfig::default());

    let usage = run.ledger.total_usage();
    println!("\n#LFs:           {}", eval.lf_stats.n_lfs);
    if let Some(acc) = eval.lf_stats.lf_accuracy {
        println!("LF accuracy:    {acc:.3}");
    }
    println!("LF coverage:    {:.4}", eval.lf_stats.lf_coverage);
    println!("total coverage: {:.3}", eval.lf_stats.total_coverage);
    println!("end model {}:  {:.3}", eval.metric, eval.end_metric);
    println!(
        "tokens:         {} prompt + {} completion = {}",
        usage.prompt_tokens,
        usage.completion_tokens,
        usage.total()
    );
    println!("API cost:       ${:.4}", run.ledger.total_cost_usd());
}
