//! Sequence utilities. Only the pieces the workspace uses: `shuffle` and
//! `choose`, with the exact per-element RNG consumption of `rand` 0.8
//! (inclusive-range Fisher–Yates from the back).

use crate::distributions::uniform::SampleUniform;
use crate::Rng;

/// Extension trait for slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffle the slice in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Return one random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            // Matches rand 0.8: uniform over the *inclusive* range 0..=i.
            let j = usize::sample_single_inclusive(0, i, rng);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rngs::StdRng, SeedableRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.as_mut_slice().shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
