//! Distributions: `Standard` plus the uniform-range machinery behind
//! `Rng::gen_range`. Algorithms match `rand` 0.8.5 exactly.

pub mod uniform;

use crate::RngCore;

/// Types that can produce values of type `T`.
pub trait Distribution<T> {
    /// Sample a value using `rng` as the entropy source.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: full-range integers, `[0, 1)` floats,
/// fair-coin bools.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u8> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Distribution<u16> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        // Matches rand 0.8: high word sampled first.
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        (hi << 64) | lo
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        #[cfg(target_pointer_width = "64")]
        {
            rng.next_u64() as usize
        }
        #[cfg(not(target_pointer_width = "64"))]
        {
            rng.next_u32() as usize
        }
    }
}

macro_rules! signed_standard {
    ($ty:ty, $uty:ty) => {
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                <Standard as Distribution<$uty>>::sample(self, rng) as $ty
            }
        }
    };
}
signed_standard!(i8, u8);
signed_standard!(i16, u16);
signed_standard!(i32, u32);
signed_standard!(i64, u64);
signed_standard!(isize, usize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // rand 0.8: sign test on the most significant bit of a u32.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Multiply-based [0, 1): 53 most significant bits of a u64.
        let value = rng.next_u64() >> (64 - 53);
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // Multiply-based [0, 1): 24 most significant bits of a u32.
        let value = rng.next_u32() >> (32 - 24);
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
