//! Uniform range sampling, matching `rand` 0.8.5's single-sample path
//! (`UniformInt::sample_single_inclusive`): widening multiply with a
//! conservative rejection zone for 32/64-bit types, modulus-exact zone for
//! 8/16-bit types.

use crate::distributions::{Distribution, Standard};
use crate::RngCore;
use core::ops::{Range, RangeInclusive};

/// Types that `Rng::gen_range` can sample uniformly.
pub trait SampleUniform: Sized + PartialOrd {
    /// Sample from `[low, high)`. Caller guarantees `low < high`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Sample from `[low, high]`. Caller guarantees `low <= high`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range types accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Sample a value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    /// Whether the range contains no values.
    fn is_empty(&self) -> bool;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
    fn is_empty(&self) -> bool {
        !(self.start < self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
    fn is_empty(&self) -> bool {
        !(self.start() <= self.end())
    }
}

/// Widening multiply returning `(high_word, low_word)`.
trait WideningMultiply: Sized {
    fn wmul(self, other: Self) -> (Self, Self);
}

macro_rules! wmul_impl {
    ($ty:ty, $wide:ty, $shift:expr) => {
        impl WideningMultiply for $ty {
            #[inline]
            fn wmul(self, other: Self) -> (Self, Self) {
                let tmp = (self as $wide) * (other as $wide);
                ((tmp >> $shift) as $ty, tmp as $ty)
            }
        }
    };
}
wmul_impl!(u32, u64, 32);
wmul_impl!(u64, u128, 64);
#[cfg(target_pointer_width = "64")]
wmul_impl!(usize, u128, 64);
#[cfg(not(target_pointer_width = "64"))]
wmul_impl!(usize, u64, 32);

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "sample_single: low >= high");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "sample_single_inclusive: low > high");
                let range =
                    (high.wrapping_sub(low) as $unsigned).wrapping_add(1) as $u_large;
                // If the range wrapped to zero it spans the whole type.
                if range == 0 {
                    return <Standard as Distribution<$ty>>::sample(&Standard, rng);
                }
                let zone = if <$unsigned>::MAX as u64 <= u16::MAX as u64 {
                    // 8/16-bit types: exact zone via modulus (cheap here).
                    let unsigned_max: $u_large = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    // Conservative zone: at most one value rejected per
                    // power-of-two band.
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = <Standard as Distribution<$u_large>>::sample(&Standard, rng);
                    let (hi, lo) = v.wmul(range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(u8, u8, u32);
uniform_int_impl!(u16, u16, u32);
uniform_int_impl!(u32, u32, u32);
uniform_int_impl!(u64, u64, u64);
uniform_int_impl!(usize, usize, usize);
uniform_int_impl!(i8, u8, u32);
uniform_int_impl!(i16, u16, u32);
uniform_int_impl!(i32, u32, u32);
uniform_int_impl!(i64, u64, u64);
uniform_int_impl!(isize, usize, usize);

macro_rules! uniform_float_impl {
    ($ty:ty) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let value: $ty = <Standard as Distribution<$ty>>::sample(&Standard, rng);
                let scale = high - low;
                let res = value * scale + low;
                if res < high {
                    res
                } else {
                    // Guard against rounding up to `high` exactly.
                    low
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                let value: $ty = <Standard as Distribution<$ty>>::sample(&Standard, rng);
                value * (high - low) + low
            }
        }
    };
}
uniform_float_impl!(f32);
uniform_float_impl!(f64);
