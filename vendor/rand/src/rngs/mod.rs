//! RNG implementations. Only `StdRng` is provided; it matches `rand`
//! 0.8's `StdRng` (ChaCha12) bit-for-bit.

mod std_rng;

pub use std_rng::StdRng;
