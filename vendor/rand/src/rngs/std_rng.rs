//! `StdRng`: ChaCha with 12 rounds, identical output to
//! `rand_chacha::ChaCha12Rng` as used by `rand` 0.8.
//!
//! Two details matter for bit-compatibility beyond the ChaCha core itself:
//!
//! 1. `rand_chacha` wraps the core in `rand_core::block::BlockRng`, which
//!    buffers **four** 64-byte blocks (64 `u32` words) per refill and has
//!    specific straddling rules for `next_u64` at the buffer boundary.
//! 2. The djb variant is used: a 64-bit block counter in words 12–13 and a
//!    64-bit stream id in words 14–15 (zero for seeded construction).

use crate::{RngCore, SeedableRng};

const BUF_WORDS: usize = 64; // four 16-word ChaCha blocks
const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[derive(Debug, Clone)]
struct ChaCha12Core {
    key: [u32; 8],
    counter: u64,
    stream: u64,
}

impl ChaCha12Core {
    fn block(&self, counter: u64, out: &mut [u32]) {
        let initial: [u32; 16] = [
            CHACHA_CONSTANTS[0],
            CHACHA_CONSTANTS[1],
            CHACHA_CONSTANTS[2],
            CHACHA_CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter as u32,
            (counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let mut x = initial;
        for _ in 0..6 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (o, (w, i)) in out.iter_mut().zip(x.iter().zip(initial.iter())) {
            *o = w.wrapping_add(*i);
        }
    }

    fn generate(&mut self, results: &mut [u32; BUF_WORDS]) {
        for blk in 0..4 {
            let counter = self.counter.wrapping_add(blk as u64);
            self.block(counter, &mut results[blk * 16..(blk + 1) * 16]);
        }
        self.counter = self.counter.wrapping_add(4);
    }
}

#[inline(always)]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

/// The standard RNG: ChaCha12, bit-compatible with `rand` 0.8's `StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng {
    results: [u32; BUF_WORDS],
    index: usize,
    core: ChaCha12Core,
}

impl StdRng {
    fn generate_and_set(&mut self, index: usize) {
        self.core.generate(&mut self.results);
        self.index = index;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        StdRng {
            results: [0; BUF_WORDS],
            // Empty buffer: first use triggers a refill.
            index: BUF_WORDS,
            core: ChaCha12Core {
                key,
                counter: 0,
                stream: 0,
            },
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate_and_set(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        // Mirrors rand_core's BlockRng::next_u64 buffer-straddling rules.
        let read_u64 = |results: &[u32; BUF_WORDS], index: usize| {
            (u64::from(results[index + 1]) << 32) | u64::from(results[index])
        };
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            read_u64(&self.results, index)
        } else if index >= BUF_WORDS {
            self.generate_and_set(2);
            read_u64(&self.results, 0)
        } else {
            let x = u64::from(self.results[BUF_WORDS - 1]);
            self.generate_and_set(1);
            let y = u64::from(self.results[0]);
            (y << 32) | x
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // Byte-level compatibility with BlockRng::fill_bytes is not needed
        // by this workspace; a straightforward word-serial fill suffices.
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    /// ECRYPT/eSTREAM verified test vector for ChaCha12 with a 256-bit
    /// all-zero key and all-zero IV: the first 64 keystream bytes. This
    /// pins the core (rounds, constants, counter layout) to the same
    /// cipher `rand_chacha`'s `ChaCha12Rng` implements.
    #[test]
    fn chacha12_zero_key_estream_vector() {
        let rng = StdRng::from_seed([0u8; 32]);
        let mut words = [0u32; 16];
        rng.core.block(0, &mut words);
        let mut stream = [0u8; 64];
        for (chunk, w) in stream.chunks_exact_mut(4).zip(words.iter()) {
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        let expected: [u8; 64] = [
            0x9b, 0xf4, 0x9a, 0x6a, 0x07, 0x55, 0xf9, 0x53, 0x81, 0x1f, 0xce, 0x12, 0x5f, 0x26,
            0x83, 0xd5, 0x04, 0x29, 0xc3, 0xbb, 0x49, 0xe0, 0x74, 0x14, 0x7e, 0x00, 0x89, 0xa5,
            0x2e, 0xae, 0x15, 0x5f, 0x05, 0x64, 0xf8, 0x79, 0xd2, 0x7a, 0xe3, 0xc0, 0x2c, 0xe8,
            0x28, 0x34, 0xac, 0xfa, 0x8c, 0x79, 0x3a, 0x62, 0x9f, 0x2c, 0xa0, 0xde, 0x69, 0x19,
            0x61, 0x0b, 0xe8, 0x2f, 0x41, 0x13, 0x26, 0xbe,
        ];
        assert_eq!(stream, expected);
    }

    /// The word stream must be a stable function of the u64 seed (this is
    /// what every downstream determinism test leans on).
    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            assert!(v < 10);
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
