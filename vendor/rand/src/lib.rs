//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no network access and no
//! registry cache, so the external `rand` crate cannot be fetched. This
//! crate re-implements exactly the slice of the 0.8 API the workspace uses
//! — `Rng`, `SeedableRng`, `rngs::StdRng`, `seq::SliceRandom`, and the
//! `Standard`/uniform distributions behind `gen`/`gen_range` — and is wired
//! in via `[patch.crates-io]` in the workspace root.
//!
//! Bit-compatibility matters: the workspace's seeded statistical tests
//! (simulator accuracy bands, Zipf/Gaussian moments, deterministic-run
//! fixtures) were tuned against the real `rand` 0.8 `StdRng`. `StdRng` here
//! is therefore a faithful ChaCha12 implementation with the same 256-byte
//! block buffering as `rand_chacha`, the same PCG32-based `seed_from_u64`
//! fill as `rand_core` 0.6, and the same widening-multiply uniform sampler
//! as `rand` 0.8.5, so every seeded sequence matches the real crate
//! bit-for-bit.

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// The core of a random number generator.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed type, typically a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Create a new instance from the given seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create a new instance seeded from a single `u64`.
    ///
    /// Matches `rand_core` 0.6: the seed buffer is filled 4 bytes at a
    /// time from a PCG32 stream advanced from `state`.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let bytes = pcg32(&mut state);
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing extension trait providing `gen`, `gen_range`, etc.
pub trait Rng: RngCore {
    /// Sample a value from the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample a value uniformly from the given range.
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Sample a value from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Return a bool with probability `p` of being true.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p out of range");
        // Matches rand 0.8's Bernoulli: compare 64 random bits against a
        // fixed-point threshold of p * 2^64.
        if p == 1.0 {
            // Degenerate case: p * 2^64 overflows; always true.
            return true;
        }
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub use rngs::StdRng;
