//! Offline vendored subset of the `criterion` 0.5 API.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This implementation keeps the same bench-authoring surface
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `Bencher::iter`/`iter_batched`, `BatchSize`, `black_box`) but replaces
//! the statistical machinery with a plain calibrate-then-sample loop that
//! prints min/median/max nanoseconds per iteration. Good enough to spot
//! order-of-magnitude regressions; not a substitute for real criterion's
//! confidence intervals.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
///
/// Only a hint in this implementation: inputs are always materialized one
/// batch ahead of timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many per sample.
    SmallInput,
    /// Large inputs: fewer per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Timing helper handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the bencher's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with per-iteration inputs built by `setup` outside
    /// the timed section.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Bound the number of pre-built inputs so calibration can't blow
        // up memory; time is accumulated across chunks.
        const MAX_BATCH: u64 = 4096;
        let mut remaining = self.iters;
        let mut elapsed = Duration::ZERO;
        while remaining > 0 {
            let batch = remaining.min(MAX_BATCH);
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            elapsed += start.elapsed();
            remaining -= batch;
        }
        self.elapsed = elapsed;
    }
}

/// Bench registry and runner.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            filter: None,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark (min 10).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 10, "sample size must be >= 10");
        self.sample_size = n;
        self
    }

    /// Apply command-line arguments (`cargo bench -- <filter>`).
    pub fn configure_from_args(mut self) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        if filter.is_some() {
            self.filter = filter;
        }
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }

        // Calibrate: grow the iteration count until one sample takes at
        // least ~2ms (capped so pathological benches still terminate).
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter.first().copied().unwrap_or(0.0);
        let max = per_iter.last().copied().unwrap_or(0.0);
        let median = per_iter[per_iter.len() / 2];
        println!(
            "{id:<40} time: [{} {} {}]",
            format_ns(min),
            format_ns(median),
            format_ns(max)
        );
        self
    }

    /// No-op; the real crate prints an overall summary here.
    pub fn final_summary(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a group of benchmarks, mirroring the real macro's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
