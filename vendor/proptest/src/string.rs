//! String generation from the small regex subset the workspace's
//! property tests use:
//!
//! - character classes `[a-zA-Z ,.!?]` with ranges and literals
//! - `\PC` — "any non-control character"
//! - groups `( ... )`
//! - quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (bounded)
//! - literal characters
//!
//! Unsupported constructs panic, loudly naming the pattern, so a new test
//! pattern fails fast instead of silently generating garbage.

use rand::rngs::StdRng;
use rand::Rng;

/// Pool of non-ASCII, non-control characters mixed into `\PC` output so
/// multi-byte UTF-8 handling gets exercised.
const NON_ASCII_POOL: [char; 8] = ['é', 'ü', 'ß', 'λ', '中', '日', '€', '☃'];

#[derive(Debug, Clone)]
enum Atom {
    /// Inclusive character ranges; single chars are degenerate ranges.
    Class(Vec<(char, char)>),
    /// `\PC`: any non-control character.
    AnyNonControl,
    /// A parenthesized sub-pattern.
    Group(Vec<(Atom, Repeat)>),
    /// One literal character.
    Literal(char),
}

#[derive(Debug, Clone, Copy)]
struct Repeat {
    min: u32,
    max: u32,
}

const ONCE: Repeat = Repeat { min: 1, max: 1 };

/// Generate one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let atoms = parse_sequence(&mut pattern.chars().peekable(), pattern, false);
    let mut out = String::new();
    emit_sequence(&atoms, rng, &mut out);
    out
}

type CharStream<'a> = core::iter::Peekable<core::str::Chars<'a>>;

fn parse_sequence(chars: &mut CharStream, pattern: &str, in_group: bool) -> Vec<(Atom, Repeat)> {
    let mut atoms = Vec::new();
    while let Some(&c) = chars.peek() {
        if in_group && c == ')' {
            break;
        }
        chars.next();
        let atom = match c {
            '[' => parse_class(chars, pattern),
            '(' => {
                let inner = parse_sequence(chars, pattern, true);
                match chars.next() {
                    Some(')') => {}
                    _ => panic!("unterminated group in pattern {pattern:?}"),
                }
                Atom::Group(inner)
            }
            '\\' => match chars.next() {
                Some('P') => match chars.next() {
                    Some('C') => Atom::AnyNonControl,
                    other => panic!("unsupported escape \\P{other:?} in pattern {pattern:?}"),
                },
                Some(esc @ ('\\' | '.' | '(' | ')' | '[' | ']' | '{' | '}' | '+' | '*' | '?')) => {
                    Atom::Literal(esc)
                }
                Some('n') => Atom::Literal('\n'),
                Some('t') => Atom::Literal('\t'),
                other => panic!("unsupported escape \\{other:?} in pattern {pattern:?}"),
            },
            '.' => Atom::AnyNonControl,
            '{' | '}' | '*' | '+' | '?' | '|' | '^' | '$' => {
                panic!("unsupported bare {c:?} in pattern {pattern:?}")
            }
            literal => Atom::Literal(literal),
        };
        let repeat = parse_quantifier(chars, pattern);
        atoms.push((atom, repeat));
    }
    atoms
}

fn parse_class(chars: &mut CharStream, pattern: &str) -> Atom {
    let mut ranges = Vec::new();
    loop {
        let c = match chars.next() {
            Some(']') => break,
            Some(c) => c,
            None => panic!("unterminated class in pattern {pattern:?}"),
        };
        // A '-' is a range operator only between two chars, not before ']'.
        if chars.peek() == Some(&'-') {
            let mut lookahead = chars.clone();
            lookahead.next();
            if lookahead.peek().is_some_and(|&n| n != ']') {
                chars.next();
                let hi = chars.next().unwrap_or(c);
                assert!(c <= hi, "inverted class range in pattern {pattern:?}");
                ranges.push((c, hi));
                continue;
            }
        }
        ranges.push((c, c));
    }
    assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
    Atom::Class(ranges)
}

fn parse_quantifier(chars: &mut CharStream, pattern: &str) -> Repeat {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    let (min, max) = match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().unwrap_or(0),
                            hi.trim().parse().unwrap_or_else(|_| {
                                panic!("open-ended repeat in pattern {pattern:?}")
                            }),
                        ),
                        None => {
                            let n = spec
                                .trim()
                                .parse()
                                .unwrap_or_else(|_| panic!("bad repeat in pattern {pattern:?}"));
                            (n, n)
                        }
                    };
                    assert!(min <= max, "inverted repeat in pattern {pattern:?}");
                    return Repeat { min, max };
                }
                spec.push(c);
            }
            panic!("unterminated repeat in pattern {pattern:?}")
        }
        Some('?') => {
            chars.next();
            Repeat { min: 0, max: 1 }
        }
        Some('*') => {
            chars.next();
            Repeat { min: 0, max: 8 }
        }
        Some('+') => {
            chars.next();
            Repeat { min: 1, max: 8 }
        }
        _ => ONCE,
    }
}

fn emit_sequence(atoms: &[(Atom, Repeat)], rng: &mut StdRng, out: &mut String) {
    for (atom, repeat) in atoms {
        let count = rng.gen_range(repeat.min..=repeat.max);
        for _ in 0..count {
            emit_atom(atom, rng, out);
        }
    }
}

fn emit_atom(atom: &Atom, rng: &mut StdRng, out: &mut String) {
    match atom {
        Atom::Literal(c) => out.push(*c),
        Atom::Class(ranges) => {
            // Weight ranges by their width for uniformity over the class.
            let total: u32 = ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
            let mut pick = rng.gen_range(0..total);
            for (lo, hi) in ranges {
                let width = *hi as u32 - *lo as u32 + 1;
                if pick < width {
                    let c = char::from_u32(*lo as u32 + pick)
                        .expect("class ranges stay inside valid scalar values");
                    out.push(c);
                    return;
                }
                pick -= width;
            }
            unreachable!("pick fits within the summed class width");
        }
        Atom::AnyNonControl => {
            // Mostly printable ASCII with a sprinkle of multi-byte chars.
            let pool_len = 95 + NON_ASCII_POOL.len();
            let idx = rng.gen_range(0..pool_len);
            if idx < 95 {
                out.push(char::from_u32(0x20 + idx as u32).expect("printable ASCII"));
            } else {
                out.push(NON_ASCII_POOL[idx - 95]);
            }
        }
        Atom::Group(inner) => emit_sequence(inner, rng, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn class_with_repeat() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[a-c]{1,2}", &mut r);
            assert!((1..=2).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn group_repeat_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[a-c]{1,2}( [a-c]{1,2}){0,2}", &mut r);
            let words: Vec<&str> = s.split(' ').collect();
            assert!((1..=3).contains(&words.len()), "{s:?}");
            for w in words {
                assert!((1..=2).contains(&w.len()), "{s:?}");
            }
        }
    }

    #[test]
    fn mixed_class_literals() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[a-zA-Z ,.!?]{0,80}", &mut r);
            assert!(s.chars().count() <= 80);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphabetic() || " ,.!?".contains(c)));
        }
    }

    #[test]
    fn non_control_escape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("\\PC{0,40}", &mut r);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }
}
