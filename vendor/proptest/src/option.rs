//! `Option` strategies: `option::of`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy for `Option<S::Value>`, `None` with probability 1/4 (the real
/// crate's default weighting is 3:1 in favor of `Some`).
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        if rng.gen_range(0..4u32) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Wrap `inner` into an `Option` strategy.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
