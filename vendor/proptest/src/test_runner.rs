//! Test-runner configuration and RNG construction for the `proptest!`
//! macro expansion.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration. Only `cases` is consulted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// RNG used to drive generation.
///
/// Deterministic by default so test runs are reproducible; set
/// `PROPTEST_SEED` to explore a different slice of the input space.
pub fn new_rng() -> StdRng {
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5eed_1e55_u64);
    StdRng::seed_from_u64(seed)
}

/// Compatibility re-export: the real crate reports failures through this
/// type; here it exists only so `use` statements resolve.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was rejected (e.g. by a filter).
    Reject(String),
    /// The property failed.
    Fail(String),
}
