//! The `Strategy` trait and its combinators.

use rand::distributions::uniform::SampleUniform;
use rand::rngs::StdRng;
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real crate there is no value tree / shrinking machinery: a
/// strategy simply produces a value from an RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Keep only values satisfying `pred` (re-sampling on rejection).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) source: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    pub(crate) source: S,
    pub(crate) f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    pub(crate) source: S,
    pub(crate) whence: &'static str,
    pub(crate) pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.source.generate(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values: {}", self.whence);
    }
}

/// Exclusive numeric ranges are strategies over their element type.
impl<T> Strategy for Range<T>
where
    T: SampleUniform + PartialOrd + Copy,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

/// Inclusive numeric ranges are strategies over their element type.
impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + PartialOrd + Copy,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

/// String literals are regex-subset strategies yielding `String`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
