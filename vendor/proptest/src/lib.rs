//! Offline vendored subset of the `proptest` 1.x API.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched; this implementation covers exactly the surface the
//! workspace's property tests use: the `proptest!` macro, `prop_assert*`,
//! `any`, numeric-range and string-regex strategies, tuples,
//! `collection::vec`, and the `prop_map`/`prop_flat_map` combinators.
//!
//! Semantics differ from the real crate in one deliberate way: cases are
//! generated from a fixed seed (overridable via `PROPTEST_SEED`) and
//! failures are reported by ordinary `panic!` without shrinking. For a
//! passing suite the observable behavior is identical; a failure points at
//! a concrete reproducible input, just not a minimal one.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Define property tests.
///
/// Mirrors the real macro's surface: an optional
/// `#![proptest_config(...)]` inner attribute followed by `#[test]`
/// functions whose parameters take the form `pattern in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::new_rng();
                for case in 0..config.cases {
                    let _ = case;
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}
