//! The commonly imported surface, mirroring `proptest::prelude`.

pub use crate::arbitrary::any;
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

/// Alias matching the real crate's `prelude::prop` module path.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}
