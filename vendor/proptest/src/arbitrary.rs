//! `any::<T>()`: full-domain strategies for primitive types.

use crate::strategy::Strategy;
use core::marker::PhantomData;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// A strategy over the full domain of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

macro_rules! any_impl {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Any<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.gen()
                }
            }
        )+
    };
}

any_impl!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
