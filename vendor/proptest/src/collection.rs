//! Collection strategies: `vec` with a size range.

use crate::strategy::Strategy;
use core::ops::{Range, RangeInclusive};
use rand::rngs::StdRng;
use rand::Rng;

/// Number-of-elements specification accepted by [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Create a strategy generating vectors of values from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
