#!/usr/bin/env bash
# Repo gate: formatting, lints, and the full test suite.
# Run from the repo root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ds-lint (panic-freedom / determinism / ledger integrity)"
mkdir -p results
if ! cargo run -q -p datasculpt-xtask -- lint --json > results/lint.json; then
  echo "FAIL: ds-lint reported findings (see results/lint.json)" >&2
  exit 1
fi

echo "==> ds-lint --fix-dry-run (a clean tree must propose zero edits)"
if ! cargo run -q -p datasculpt-xtask -- lint --fix-dry-run; then
  echo "FAIL: ds-lint --fix-dry-run proposed edits on a clean tree" >&2
  exit 1
fi

echo "==> cargo test"
cargo test -q --workspace

echo "==> trace smoke test (emit a JSONL trace, validate it against the schema)"
trace_file="$(mktemp /tmp/ds-trace.XXXXXX.jsonl)"
trace_file_b="$(mktemp /tmp/ds-trace-b.XXXXXX.jsonl)"
store_a="$(mktemp -d /tmp/ds-store-a.XXXXXX)"
store_b="$(mktemp -d /tmp/ds-store-b.XXXXXX)"
trap 'rm -f "$trace_file" "$trace_file_b"; rm -rf "$store_a" "$store_b" "${serve_dir:-}"; [ -n "${serve_pid:-}" ] && kill "$serve_pid" 2>/dev/null || true' EXIT
cargo run -q -p datasculpt --bin datasculpt -- \
  run youtube --scale 0.05 --queries 5 --revise --cache 256 \
  --trace "$trace_file" --metrics > /dev/null
cargo run -q -p datasculpt --bin datasculpt -- trace check "$trace_file"
# trace-check is the pre-PR-9 spelling, kept as an alias; exercise it too.
cargo run -q -p datasculpt --bin datasculpt -- trace-check "$trace_file" > /dev/null

echo "==> trace diff smoke test (same-seed runs at --threads 1 vs 8 diff empty)"
cargo run -q -p datasculpt --bin datasculpt -- \
  run youtube --scale 0.05 --queries 5 --revise --cache 256 --threads 8 \
  --trace "$trace_file_b" > /dev/null
if ! cargo run -q -p datasculpt --bin datasculpt -- \
    trace diff "$trace_file" "$trace_file_b"; then
  echo "FAIL: trace diff of same-seed runs is non-empty" >&2
  exit 1
fi

echo "==> trace analyze golden fixture (CLI output matches tests/fixtures/)"
analyze_out="$(mktemp /tmp/ds-analyze.XXXXXX.json)"
cargo run -q -p datasculpt --bin datasculpt -- \
  trace analyze tests/fixtures/trace_small.jsonl --json > "$analyze_out"
if ! diff -u tests/fixtures/trace_small_analyze.json "$analyze_out"; then
  echo "FAIL: trace analyze --json drifted from the golden fixture" >&2
  echo "  (intentional change? DS_REGEN_FIXTURES=1 cargo test --test trace_analytics)" >&2
  rm -f "$analyze_out"
  exit 1
fi
rm -f "$analyze_out"

echo "==> hot-path bench smoke test (one iteration per kernel + JSON schema)"
./scripts/bench.sh --check

echo "==> parallel determinism smoke test (serial vs 8-thread run digest)"
digest_at() {
  cargo run -q -p datasculpt --bin datasculpt -- \
    run youtube --scale 0.1 --queries 8 --threads "$1" --show-lfs 0 \
    | sed -n 's/^run digest: *//p'
}
serial_digest="$(digest_at 1)"
parallel_digest="$(digest_at 8)"
if [ -z "$serial_digest" ] || [ "$serial_digest" != "$parallel_digest" ]; then
  echo "FAIL: run digest differs across thread counts" >&2
  echo "  --threads 1: ${serial_digest:-<missing>}" >&2
  echo "  --threads 8: ${parallel_digest:-<missing>}" >&2
  exit 1
fi
echo "    digest ${serial_digest} identical at --threads 1 and 8"

echo "==> durable run smoke test (run, crash via injection, resume, compare digests)"
durable_run() { # durable_run <flag> <dir> [extra args...]
  local flag="$1" dir="$2"
  shift 2
  cargo run -q -p datasculpt --bin datasculpt -- \
    run youtube --scale 0.1 --queries 8 --show-lfs 0 "$flag" "$dir" "$@" \
    | sed -n 's/^run digest: *//p'
}
baseline_digest="$(durable_run --store "$store_a")"
# The same run, killed mid-flight by the injected abort; the directory it
# leaves behind must resume to the exact baseline digest.
durable_run --store "$store_b" --inject-crash-after 3 > /dev/null 2>&1 || true
resumed_digest="$(durable_run --resume "$store_b")"
if [ -z "$baseline_digest" ] || [ "$baseline_digest" != "$resumed_digest" ]; then
  echo "FAIL: resumed run digest differs from the uninterrupted run" >&2
  echo "  uninterrupted: ${baseline_digest:-<missing>}" >&2
  echo "  crash+resume:  ${resumed_digest:-<missing>}" >&2
  exit 1
fi
echo "    digest ${baseline_digest} identical for uninterrupted and crash+resume"

echo "==> serve smoke test (daemon over a unix socket: submit, budget reject, drain)"
serve_dir="$(mktemp -d /tmp/ds-serve.XXXXXX)"
serve_sock="$serve_dir/serve.sock"
serve_cli() { cargo run -q -p datasculpt --bin datasculpt -- serve "$@"; }
serve_cli start --socket "$serve_sock" --state "$serve_dir/state" --slots 2 &
serve_pid=$!
for _ in $(seq 1 50); do
  if serve_cli ping --socket "$serve_sock" > /dev/null 2>&1; then break; fi
  sleep 0.2
done
serve_cli submit youtube --socket "$serve_sock" --tenant acme \
  --budget 1000000000000 --scale 0.05 --queries 2 --seed 7 > /dev/null
serve_cli submit youtube --socket "$serve_sock" --tenant freeloader \
  --budget 0 --scale 0.05 --queries 2 --seed 8 > /dev/null
# The background scheduler runs the jobs on its own; poll the per-job
# states until both reach their verdicts, then drain (which also shuts
# the daemon down).
serve_status=""
for _ in $(seq 1 100); do
  serve_status="$(serve_cli status --socket "$serve_sock")"
  if echo "$serve_status" | grep -q '"tenant":"acme".*"state":"completed"' \
     && echo "$serve_status" | grep -q '"tenant":"freeloader".*"state":"rejected"'; then
    break
  fi
  sleep 0.2
done
echo "$serve_status" | grep -q '"tenant":"acme".*"state":"completed"' \
  || { echo "FAIL: funded serve job did not complete: $serve_status" >&2; exit 1; }
echo "$serve_status" | grep -q '"tenant":"freeloader".*"state":"rejected"' \
  || { echo "FAIL: zero-budget serve job was not rejected: $serve_status" >&2; exit 1; }
serve_cli drain --socket "$serve_sock" | grep -q '"drained":true' \
  || { echo "FAIL: serve drain did not ack" >&2; exit 1; }
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
echo "    daemon completed the funded job and rejected the unfunded one"

echo "==> all checks passed"
