#!/usr/bin/env bash
# Repo gate: formatting, lints, and the full test suite.
# Run from the repo root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ds-lint (panic-freedom / determinism / ledger integrity)"
cargo run -q -p datasculpt-xtask -- lint

echo "==> cargo test"
cargo test -q --workspace

echo "==> all checks passed"
