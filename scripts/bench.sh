#!/usr/bin/env bash
# Hot-path kernel benchmark: regenerates BENCH_hotpath.json at the repo
# root (schema: docs/perf.md) and validates the emitted document.
#
#   ./scripts/bench.sh            full run (Agnews, 5 iterations/kernel)
#   ./scripts/bench.sh --check    smoke mode: one short iteration per
#                                 kernel into a temp file, schema check
#                                 only, no timing thresholds (wired into
#                                 scripts/check.sh)
#
# Extra arguments after the mode are passed through to the hotpath
# binary (e.g. --dataset youtube --scale 0.5 --iters 9).
set -euo pipefail
cd "$(dirname "$0")/.."

mode="full"
if [ "${1:-}" = "--check" ]; then
  mode="check"
  shift
fi

if [ "$mode" = "check" ]; then
  out="$(mktemp /tmp/ds-bench-hotpath.XXXXXX.json)"
  trap 'rm -f "$out"' EXIT
  cargo run -q --release -p datasculpt-bench --bin hotpath -- \
    --check --out "$out" "$@"
else
  out="BENCH_hotpath.json"
  cargo run -q --release -p datasculpt-bench --bin hotpath -- \
    --out "$out" "$@"
fi

# Schema validation: the v1 document marker, the RSS field, and one entry
# per required kernel (columnar kernels and their row-major baselines).
fail() { echo "FAIL: $1 (in $out)" >&2; exit 1; }
grep -q '"schema": "datasculpt-bench-hotpath/v1"' "$out" \
  || fail "missing schema marker datasculpt-bench-hotpath/v1"
grep -q '"peak_rss_kb": [0-9]' "$out" || fail "missing peak_rss_kb"
for kernel in index-build lf-apply lf-apply-rowscan-baseline \
              metal-e-step metal-e-step-rowmajor-baseline tfidf; do
  grep -q "\"name\": \"$kernel\", \"median_ns_per_op\": [0-9]" "$out" \
    || fail "missing kernel entry $kernel"
done
echo "bench.sh: $out valid (schema datasculpt-bench-hotpath/v1)"
