#!/usr/bin/env bash
# Benchmark driver: regenerates the tracked BENCH_*.json documents at the
# repo root and validates each emitted document.
#
#   ./scripts/bench.sh                 full run of every bench:
#                                      BENCH_hotpath.json (Agnews,
#                                      5 iterations/kernel, docs/perf.md),
#                                      BENCH_obs.json (observer overhead,
#                                      docs/observability.md), and
#                                      BENCH_serve.json (serve traffic,
#                                      docs/serving.md)
#   ./scripts/bench.sh hotpath [...]   just the hot-path kernels
#   ./scripts/bench.sh obs [...]       just the observer-overhead bench
#   ./scripts/bench.sh serve [...]     just the serve traffic simulation
#                                      (BENCH_serve.json, docs/serving.md)
#   ./scripts/bench.sh --check         smoke mode: one short iteration of
#                                      every bench into temp files, schema
#                                      check only, no timing thresholds
#                                      (wired into scripts/check.sh)
#
# Extra arguments after a bench name are passed through to that binary
# (e.g. ./scripts/bench.sh hotpath --dataset youtube --scale 0.5).
set -euo pipefail
cd "$(dirname "$0")/.."

mode="full"
if [ "${1:-}" = "--check" ]; then
  mode="check"
  shift
fi

bench="${1:-all}"
if [ $# -gt 0 ]; then shift; fi

fail() { echo "FAIL: $1 (in $2)" >&2; exit 1; }

# Schema validation: the v1 document marker, the RSS field, and one entry
# per required kernel (columnar kernels and their row-major baselines).
validate_hotpath() {
  local out="$1"
  grep -q '"schema": "datasculpt-bench-hotpath/v1"' "$out" \
    || fail "missing schema marker datasculpt-bench-hotpath/v1" "$out"
  grep -q '"peak_rss_kb": [0-9]' "$out" || fail "missing peak_rss_kb" "$out"
  for kernel in index-build lf-apply lf-apply-rowscan-baseline \
                metal-e-step metal-e-step-rowmajor-baseline tfidf; do
    grep -q "\"name\": \"$kernel\", \"median_ns_per_op\": [0-9]" "$out" \
      || fail "missing kernel entry $kernel" "$out"
  done
  echo "bench.sh: $out valid (schema datasculpt-bench-hotpath/v1)"
}

# Schema validation: one entry per observer stack, each with a derived
# per-event cost.
validate_obs() {
  local out="$1"
  grep -q '"schema": "datasculpt-bench-obs/v1"' "$out" \
    || fail "missing schema marker datasculpt-bench-obs/v1" "$out"
  grep -q '"events": [0-9]' "$out" || fail "missing events" "$out"
  for kernel in noop tracer-metrics tracer-jsonl tracer-full; do
    grep -q "\"name\": \"$kernel\", \"median_ns_per_op\": [0-9]" "$out" \
      || fail "missing kernel entry $kernel" "$out"
  done
  grep -q '"ns_per_event": [0-9]' "$out" || fail "missing ns_per_event" "$out"
  echo "bench.sh: $out valid (schema datasculpt-bench-obs/v1)"
}

# Schema validation: the traffic/latency figures and the budget audit.
validate_serve() {
  local out="$1"
  grep -q '"schema": "datasculpt-bench-serve/v1"' "$out" \
    || fail "missing schema marker datasculpt-bench-serve/v1" "$out"
  grep -q '"tenants": [0-9]' "$out" || fail "missing tenants" "$out"
  for field in completed rejected paused rounds round_p50_ns round_p95_ns \
               jobs_per_sec_milli budget_violation_tenants \
               max_overdraft_nanousd total_cost_nanousd; do
    grep -q "\"$field\": [0-9]" "$out" || fail "missing $field" "$out"
  done
  grep -q '"peak_rss_kb": [0-9]' "$out" || fail "missing peak_rss_kb" "$out"
  echo "bench.sh: $out valid (schema datasculpt-bench-serve/v1)"
}

run_hotpath() {
  if [ "$mode" = "check" ]; then
    local out
    out="$(mktemp /tmp/ds-bench-hotpath.XXXXXX.json)"
    cargo run -q --release -p datasculpt-bench --bin hotpath -- \
      --check --out "$out" "$@"
    validate_hotpath "$out"
    rm -f "$out"
  else
    cargo run -q --release -p datasculpt-bench --bin hotpath -- \
      --out BENCH_hotpath.json "$@"
    validate_hotpath BENCH_hotpath.json
  fi
}

run_obs() {
  if [ "$mode" = "check" ]; then
    local out
    out="$(mktemp /tmp/ds-bench-obs.XXXXXX.json)"
    cargo run -q --release -p datasculpt-bench --bin obsbench -- \
      --check --out "$out" "$@"
    validate_obs "$out"
    rm -f "$out"
  else
    cargo run -q --release -p datasculpt-bench --bin obsbench -- \
      --out BENCH_obs.json "$@"
    validate_obs BENCH_obs.json
  fi
}

run_serve() {
  if [ "$mode" = "check" ]; then
    local out
    out="$(mktemp /tmp/ds-bench-serve.XXXXXX.json)"
    cargo run -q --release -p datasculpt-bench --bin servebench -- \
      --check --out "$out" "$@"
    validate_serve "$out"
    rm -f "$out"
  else
    cargo run -q --release -p datasculpt-bench --bin servebench -- \
      --out BENCH_serve.json "$@"
    validate_serve BENCH_serve.json
  fi
}

case "$bench" in
  all)     run_hotpath; run_obs; run_serve ;;
  hotpath) run_hotpath "$@" ;;
  obs)     run_obs "$@" ;;
  serve)   run_serve "$@" ;;
  *)       echo "unknown bench '$bench' (all|hotpath|obs|serve)" >&2; exit 2 ;;
esac
