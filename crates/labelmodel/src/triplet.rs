//! Triplet-method label model (FlyingSquid-style closed form).
//!
//! Fu et al. ("Fast and Three-rious", ICML 2020 — cited as \[11\] in the
//! paper) estimate binary LF accuracies without EM: for signed votes
//! `λ ∈ {−1, +1}` under conditional independence,
//! `E[λ_i λ_j] = a_i a_j` where `a_j = 2·acc_j − 1`, so for any triplet
//! `|a_i| = sqrt(|E_ij · E_ik / E_jk|)`. We average the estimate over all
//! triplets containing each LF, resolve the global sign by majority
//! agreement, and plug the accuracies into the same naive-Bayes posterior
//! as [`crate::MetalModel`].
//!
//! Multiclass matrices are handled one-vs-rest: class-`c` accuracy signals
//! are estimated on the binarized matrix (vote == c vs. vote != c), then
//! averaged into one per-LF accuracy.

use crate::matrix::{LabelMatrix, ABSTAIN};
use crate::probs::ProbLabels;
use crate::LabelModel;

/// Closed-form triplet label model.
#[derive(Debug, Clone, Default)]
pub struct TripletModel {
    n_classes: usize,
    alpha: Vec<f64>,
    prior: Vec<f64>,
}

impl TripletModel {
    /// A fresh model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Estimated per-LF accuracies (after fit).
    pub fn accuracies(&self) -> &[f64] {
        &self.alpha
    }

    /// Estimate signed accuracies `a_j = 2·acc − 1` on a ±1 vote matrix
    /// (0 = abstain).
    fn signed_accuracies(signed: &[Vec<i8>]) -> Vec<f64> {
        let m = signed.len();
        if m == 0 {
            return Vec::new();
        }
        // Pairwise products over co-active rows.
        let mut e = vec![vec![0.0f64; m]; m];
        for i in 0..m {
            let Some((si, tail)) = signed.get(i..).and_then(<[_]>::split_first) else {
                continue;
            };
            for (dj, sj) in tail.iter().enumerate() {
                let j = i + 1 + dj;
                let mut acc = 0.0;
                let mut cnt = 0usize;
                for (vi, vj) in si.iter().zip(sj) {
                    if *vi != 0 && *vj != 0 {
                        acc += (*vi as f64) * (*vj as f64);
                        cnt += 1;
                    }
                }
                let v = if cnt > 0 { acc / cnt as f64 } else { 0.0 };
                if let Some(slot) = e.get_mut(i).and_then(|row| row.get_mut(j)) {
                    *slot = v;
                }
                if let Some(slot) = e.get_mut(j).and_then(|row| row.get_mut(i)) {
                    *slot = v;
                }
            }
        }
        let mut a = vec![0.0f64; m];
        for (i, ai) in a.iter_mut().enumerate() {
            let ei = e.get(i).map(Vec::as_slice).unwrap_or(&[]);
            let mut est = 0.0;
            let mut n_est = 0usize;
            for j in 0..m {
                if j == i {
                    continue;
                }
                let eij = ei.get(j).copied().unwrap_or(0.0);
                let ej = e.get(j).map(Vec::as_slice).unwrap_or(&[]);
                for k in (j + 1)..m {
                    if k == i {
                        continue;
                    }
                    let denom = ej.get(k).copied().unwrap_or(0.0);
                    if denom.abs() < 1e-3 {
                        continue;
                    }
                    let val = (eij * ei.get(k).copied().unwrap_or(0.0) / denom).abs();
                    if val.is_finite() {
                        est += val.sqrt().min(1.0);
                        n_est += 1;
                    }
                }
            }
            *ai = if n_est > 0 { est / n_est as f64 } else { 0.3 };
            // Sign: LFs are assumed better than chance on their own class;
            // a negative average agreement with the pool flips the sign.
            let agree: f64 = ei
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, v)| v)
                .sum();
            if agree < 0.0 {
                *ai = -*ai;
            }
        }
        a
    }
}

impl LabelModel for TripletModel {
    fn fit(&mut self, matrix: &LabelMatrix, n_classes: usize) {
        assert!(n_classes >= 2, "need at least two classes");
        self.n_classes = n_classes;
        let m = matrix.cols();
        let n = matrix.rows();
        self.prior = vec![1.0 / n_classes as f64; n_classes];
        if m == 0 || n == 0 {
            self.alpha = vec![0.7; m];
            return;
        }

        // One-vs-rest signed matrices, averaged into per-LF accuracy.
        let mut acc_sum = vec![0.0f64; m];
        let mut acc_cnt = vec![0usize; m];
        for c in 0..n_classes {
            // Binarize straight off the contiguous LF columns.
            let signed: Vec<Vec<i8>> = (0..m)
                .map(|j| {
                    matrix
                        .column(j)
                        .iter()
                        .map(|&v| {
                            if v == ABSTAIN {
                                0
                            } else if v as usize == c {
                                1
                            } else {
                                -1
                            }
                        })
                        .collect()
                })
                .collect();
            let a = Self::signed_accuracies(&signed);
            for (&aj, (s, cnt)) in a.iter().zip(acc_sum.iter_mut().zip(acc_cnt.iter_mut())) {
                // Convert signed accuracy on the OvR problem back to a
                // multiclass accuracy estimate.
                let acc = ((aj + 1.0) / 2.0).clamp(0.05, 0.99);
                *s += acc;
                *cnt += 1;
            }
            if n_classes == 2 {
                break; // both OvR problems are identical in binary
            }
        }
        self.alpha = acc_sum
            .iter()
            .zip(&acc_cnt)
            .map(|(&s, &cnt)| {
                (s / cnt.max(1) as f64).clamp(1.0 / n_classes as f64 * 0.5 + 0.01, 0.99)
            })
            .collect();
    }

    fn predict_proba(&self, matrix: &LabelMatrix) -> ProbLabels {
        assert!(self.n_classes >= 2, "fit before predict");
        assert_eq!(matrix.cols(), self.alpha.len(), "LF count mismatch");
        let c = self.n_classes;
        let n = matrix.rows();
        // Per-LF log-likelihood terms, hoisted out of the instance sweep
        // (same expressions the old per-row loop evaluated per vote, so
        // the posteriors are bit-identical).
        let ln_own: Vec<f64> = self.alpha.iter().map(|a| a.max(1e-12).ln()).collect();
        let ln_wrong: Vec<f64> = self
            .alpha
            .iter()
            .map(|a| ((1.0 - a) / (c as f64 - 1.0)).max(1e-12).ln())
            .collect();
        // Columnar accumulation: each logp cell receives its vote terms in
        // ascending-LF order, matching the old row loop.
        let init: Vec<f64> = self.prior.iter().map(|p| p.max(1e-12).ln()).collect();
        let mut logp = Vec::with_capacity(n * c);
        for _ in 0..n {
            logp.extend_from_slice(&init);
        }
        let mut any = vec![false; n];
        for j in 0..matrix.cols() {
            let own = ln_own.get(j).copied().unwrap_or(0.0);
            let wrong = ln_wrong.get(j).copied().unwrap_or(0.0);
            for ((row, a), &v) in logp
                .chunks_exact_mut(c)
                .zip(any.iter_mut())
                .zip(matrix.column(j))
            {
                if v == ABSTAIN {
                    continue;
                }
                *a = true;
                for (y, lp) in row.iter_mut().enumerate() {
                    *lp += if v as usize == y { own } else { wrong };
                }
            }
        }
        let mut probs = Vec::with_capacity(n * c);
        let mut covered = Vec::with_capacity(n);
        for (lp, &active) in logp.chunks_exact(c).zip(&any) {
            if active {
                let mx = lp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut post: Vec<f64> = lp.iter().map(|l| (l - mx).exp()).collect();
                let z: f64 = post.iter().sum();
                for p in &mut post {
                    *p /= z;
                }
                probs.extend(post);
                covered.push(true);
            } else {
                probs.extend(std::iter::repeat_n(1.0 / c as f64, c));
                covered.push(false);
            }
        }
        ProbLabels::new(probs, n, c, covered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasculpt_text::rng::derive_seed;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn synth(
        n: usize,
        accs: &[f64],
        coverage: f64,
        n_classes: usize,
        seed: u64,
    ) -> (LabelMatrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, 123));
        let mut truth = Vec::with_capacity(n);
        let mut cols: Vec<Vec<i32>> = vec![Vec::with_capacity(n); accs.len()];
        for _ in 0..n {
            let y = rng.gen_range(0..n_classes);
            truth.push(y);
            for (j, &a) in accs.iter().enumerate() {
                if rng.gen::<f64>() > coverage {
                    cols[j].push(ABSTAIN);
                } else if rng.gen::<f64>() < a {
                    cols[j].push(y as i32);
                } else {
                    let mut w = rng.gen_range(0..n_classes - 1);
                    if w >= y {
                        w += 1;
                    }
                    cols[j].push(w as i32);
                }
            }
        }
        (LabelMatrix::from_columns(&cols, n), truth)
    }

    #[test]
    fn binary_accuracy_recovery() {
        let accs = [0.9, 0.75, 0.6];
        let (m, _) = synth(8000, &accs, 0.7, 2, 2);
        let mut t = TripletModel::new();
        t.fit(&m, 2);
        let est = t.accuracies();
        assert!((est[0] - 0.9).abs() < 0.07, "{est:?}");
        assert!((est[1] - 0.75).abs() < 0.07, "{est:?}");
        assert!((est[2] - 0.6).abs() < 0.08, "{est:?}");
    }

    #[test]
    fn aggregation_beats_best_single_lf() {
        let accs = [0.75, 0.75, 0.75, 0.75, 0.75];
        let (m, truth) = synth(4000, &accs, 1.0, 2, 4);
        let mut t = TripletModel::new();
        t.fit(&m, 2);
        let pred = t.predict_proba(&m).hard_labels();
        let acc =
            pred.iter().zip(&truth).filter(|(p, t)| p == t).count() as f64 / truth.len() as f64;
        assert!(acc > 0.82, "aggregate accuracy {acc}");
    }

    #[test]
    fn multiclass_runs_and_is_calibrated() {
        let accs = [0.8, 0.7, 0.75];
        let (m, truth) = synth(3000, &accs, 0.6, 4, 6);
        let mut t = TripletModel::new();
        t.fit(&m, 4);
        let p = t.predict_proba(&m);
        let pred = p.hard_labels();
        let covered = p.covered_indices();
        let acc =
            covered.iter().filter(|&&i| pred[i] == truth[i]).count() as f64 / covered.len() as f64;
        assert!(acc > 0.65, "multiclass accuracy {acc}");
    }

    #[test]
    fn two_lf_matrix_falls_back_gracefully() {
        // Not enough LFs for any triplet: estimates fall back to the prior
        // guess but prediction still works.
        let (m, _) = synth(200, &[0.8, 0.8], 1.0, 2, 8);
        let mut t = TripletModel::new();
        t.fit(&m, 2);
        let p = t.predict_proba(&m);
        assert_eq!(p.rows(), 200);
    }
}
