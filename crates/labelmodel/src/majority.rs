//! Majority-vote label model.

use crate::matrix::{LabelMatrix, ABSTAIN};
use crate::probs::ProbLabels;
use crate::LabelModel;

/// Unweighted majority vote: the posterior is the normalized vote histogram
/// of active LFs; uncovered rows get a uniform distribution and are marked
/// uncovered.
#[derive(Debug, Clone, Default)]
pub struct MajorityVote {
    n_classes: usize,
}

impl MajorityVote {
    /// A fresh model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LabelModel for MajorityVote {
    fn fit(&mut self, _matrix: &LabelMatrix, n_classes: usize) {
        assert!(n_classes >= 2, "need at least two classes");
        self.n_classes = n_classes;
    }

    fn predict_proba(&self, matrix: &LabelMatrix) -> ProbLabels {
        assert!(self.n_classes >= 2, "fit before predict");
        let c = self.n_classes;
        let n = matrix.rows();
        // One branch-light sweep per LF column fills integer vote
        // histograms; the exact counts make the result independent of the
        // sweep order (and identical to the old per-row histogram loop).
        let mut hist = vec![0u32; n * c];
        let mut active = vec![0u32; n];
        for j in 0..matrix.cols() {
            for ((row, a), &v) in hist
                .chunks_exact_mut(c)
                .zip(active.iter_mut())
                .zip(matrix.column(j))
            {
                if v == ABSTAIN {
                    continue;
                }
                // Out-of-range votes contribute nothing (the matrix
                // validates votes at construction).
                if let Some(slot) = row.get_mut(v as usize) {
                    *slot += 1;
                    *a += 1;
                }
            }
        }
        let mut probs = Vec::with_capacity(n * c);
        let mut covered = Vec::with_capacity(n);
        for (row, &a) in hist.chunks_exact(c).zip(&active) {
            if a == 0 {
                probs.extend(std::iter::repeat_n(1.0 / c as f64, c));
                covered.push(false);
            } else {
                for &h in row {
                    probs.push(f64::from(h) / f64::from(a));
                }
                covered.push(true);
            }
        }
        ProbLabels::new(probs, n, c, covered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn votes_are_normalized_histograms() {
        let m = LabelMatrix::from_columns(
            &[
                vec![0, 1, ABSTAIN],
                vec![0, 1, ABSTAIN],
                vec![1, 1, ABSTAIN],
            ],
            3,
        );
        let mut mv = MajorityVote::new();
        mv.fit(&m, 2);
        let p = mv.predict_proba(&m);
        assert_eq!(p.row(0), &[2.0 / 3.0, 1.0 / 3.0]);
        assert_eq!(p.row(1), &[0.0, 1.0]);
        assert!(!p.is_covered(2));
        assert_eq!(p.row(2), &[0.5, 0.5]);
    }

    #[test]
    fn hard_labels_follow_majority() {
        let m = LabelMatrix::from_columns(&[vec![0, 1], vec![0, 1], vec![1, 1]], 2);
        let mut mv = MajorityVote::new();
        mv.fit(&m, 2);
        assert_eq!(mv.predict_proba(&m).hard_labels(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "fit before predict")]
    fn predict_requires_fit() {
        let m = LabelMatrix::empty(1, 1);
        let mv = MajorityVote::new();
        let _ = mv.predict_proba(&m);
    }
}
