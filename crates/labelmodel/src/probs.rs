//! Probabilistic labels with a coverage mask.

/// Per-instance class posteriors plus a coverage mask.
#[derive(Debug, Clone)]
pub struct ProbLabels {
    probs: Vec<f64>,
    rows: usize,
    n_classes: usize,
    covered: Vec<bool>,
}

impl ProbLabels {
    /// Build from a flat `rows × n_classes` buffer and coverage mask.
    ///
    /// # Panics
    /// Panics on shape mismatch or rows that do not form a probability
    /// distribution (within tolerance).
    pub fn new(probs: Vec<f64>, rows: usize, n_classes: usize, covered: Vec<bool>) -> Self {
        assert_eq!(probs.len(), rows * n_classes, "shape mismatch");
        assert_eq!(covered.len(), rows, "mask length mismatch");
        for (i, row) in probs.chunks_exact(n_classes.max(1)).enumerate() {
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6 && row.iter().all(|p| *p >= -1e-12),
                "row {i} is not a distribution: {row:?}"
            );
        }
        Self {
            probs,
            rows,
            n_classes,
            covered,
        }
    }

    /// Number of instances.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Posterior of instance `i` (empty slice when `i` is out of range).
    pub fn row(&self, i: usize) -> &[f64] {
        self.probs
            .get(i * self.n_classes..(i + 1) * self.n_classes)
            .unwrap_or(&[])
    }

    /// Whether instance `i` had at least one active LF (`false` when `i`
    /// is out of range).
    pub fn is_covered(&self, i: usize) -> bool {
        self.covered.get(i).copied().unwrap_or(false)
    }

    /// Indices of covered instances.
    pub fn covered_indices(&self) -> Vec<usize> {
        self.covered
            .iter()
            .enumerate()
            .filter(|(_, &cov)| cov)
            .map(|(i, _)| i)
            .collect()
    }

    /// Hard labels (argmax per row; ties to the lowest class index).
    pub fn hard_labels(&self) -> Vec<usize> {
        self.probs
            .chunks_exact(self.n_classes.max(1))
            .map(|row| {
                let mut best = 0;
                let mut best_p = f64::NEG_INFINITY;
                for (c, &p) in row.iter().enumerate() {
                    if p > best_p {
                        best = c;
                        best_p = p;
                    }
                }
                best
            })
            .collect()
    }

    /// Apply the default-class rule (§3.6): uncovered instances become a
    /// one-hot distribution on `default_class` and are marked covered.
    pub fn apply_default_class(&mut self, default_class: usize) {
        assert!(default_class < self.n_classes, "default class out of range");
        for (row, cov) in self
            .probs
            .chunks_exact_mut(self.n_classes.max(1))
            .zip(self.covered.iter_mut())
        {
            if !*cov {
                row.fill(0.0);
                if let Some(slot) = row.get_mut(default_class) {
                    *slot = 1.0;
                }
                *cov = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProbLabels {
        ProbLabels::new(
            vec![0.9, 0.1, 0.5, 0.5, 0.2, 0.8],
            3,
            2,
            vec![true, false, true],
        )
    }

    #[test]
    fn accessors() {
        let p = sample();
        assert_eq!(p.rows(), 3);
        assert_eq!(p.n_classes(), 2);
        assert_eq!(p.row(0), &[0.9, 0.1]);
        assert!(p.is_covered(0));
        assert!(!p.is_covered(1));
        assert_eq!(p.covered_indices(), vec![0, 2]);
    }

    #[test]
    fn hard_labels_argmax_with_tie_to_low() {
        let p = sample();
        assert_eq!(p.hard_labels(), vec![0, 0, 1]);
    }

    #[test]
    fn default_class_fills_uncovered() {
        let mut p = sample();
        p.apply_default_class(0);
        assert!(p.is_covered(1));
        assert_eq!(p.row(1), &[1.0, 0.0]);
        // Covered rows untouched.
        assert_eq!(p.row(0), &[0.9, 0.1]);
    }

    #[test]
    #[should_panic(expected = "not a distribution")]
    fn rejects_non_distribution() {
        let _ = ProbLabels::new(vec![0.9, 0.3], 1, 2, vec![true]);
    }

    #[test]
    #[should_panic(expected = "default class out of range")]
    fn default_class_bounds_checked() {
        let mut p = sample();
        p.apply_default_class(5);
    }
}
