//! Row-major reference vote matrix.
//!
//! The pre-columnar `LabelMatrix` layout (`data[i * cols + j]`), kept as an
//! independently-implemented oracle: the property tests check that the
//! LF-major [`LabelMatrix`](crate::LabelMatrix) agrees with it on every
//! accessor and statistic, and the `hotpath` bench uses it as the row-major
//! baseline the columnar kernels are measured against. Not used on any
//! library path.

use crate::matrix::{LabelMatrix, ABSTAIN};

/// Row-major weak-label matrix: entry `(i, j)` at `data[i * cols + j]`.
#[derive(Debug, Clone)]
pub struct RowMajorMatrix {
    data: Vec<i32>,
    rows: usize,
    cols: usize,
}

impl RowMajorMatrix {
    /// Build from per-LF columns (each of length `rows`), scattering into
    /// the row-major buffer — the layout conversion the columnar
    /// `from_columns` no longer pays.
    pub fn from_columns(columns: &[Vec<i32>], rows: usize) -> Self {
        let cols = columns.len();
        let mut data = vec![ABSTAIN; rows * cols];
        for (j, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), rows, "column length mismatch");
            for (i, &v) in col.iter().enumerate() {
                assert!(v >= ABSTAIN, "invalid vote {v}");
                if let Some(slot) = data.get_mut(i * cols + j) {
                    *slot = v;
                }
            }
        }
        Self { data, rows, cols }
    }

    /// An all-abstain matrix.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![ABSTAIN; rows * cols],
            rows,
            cols,
        }
    }

    /// Number of instances.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of LFs.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Vote of LF `j` on instance `i` ([`ABSTAIN`] when out of range, like
    /// the columnar matrix).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> i32 {
        self.data.get(i * self.cols + j).copied().unwrap_or(ABSTAIN)
    }

    /// Set a vote (no-op when out of range, like the columnar matrix).
    pub fn set(&mut self, i: usize, j: usize, v: i32) {
        assert!(v >= ABSTAIN, "invalid vote {v}");
        if let Some(slot) = self.data.get_mut(i * self.cols + j) {
            *slot = v;
        }
    }

    /// The contiguous vote row of instance `i` (contiguous in *this*
    /// layout; the columnar matrix has to gather it). Empty when out of
    /// range.
    pub fn row(&self, i: usize) -> &[i32] {
        self.data
            .get(i * self.cols..(i + 1) * self.cols)
            .unwrap_or(&[])
    }

    /// Fraction of instances with at least one non-abstain vote.
    pub fn total_coverage(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let covered = (0..self.rows)
            .filter(|&i| self.row(i).iter().any(|&v| v != ABSTAIN))
            .count();
        covered as f64 / self.rows as f64
    }

    /// Fraction of instances where LF `j` fires (strided scan).
    pub fn lf_coverage(&self, j: usize) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let active = (0..self.rows)
            .filter(|&i| self.get(i, j) != ABSTAIN)
            .count();
        active as f64 / self.rows as f64
    }

    /// Mean per-LF coverage.
    pub fn mean_lf_coverage(&self) -> f64 {
        if self.cols == 0 {
            return 0.0;
        }
        (0..self.cols).map(|j| self.lf_coverage(j)).sum::<f64>() / self.cols as f64
    }

    /// Fraction of instances with at least two distinct non-abstain votes.
    pub fn conflict_rate(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let conflicted = (0..self.rows)
            .filter(|&i| {
                let row = self.row(i);
                let first = row.iter().find(|&&v| v != ABSTAIN);
                match first {
                    None => false,
                    Some(&f) => row.iter().any(|&v| v != ABSTAIN && v != f),
                }
            })
            .count();
        conflicted as f64 / self.rows as f64
    }

    /// Accuracy of LF `j` against ground truth where it fires.
    pub fn lf_accuracy(&self, j: usize, labels: &[Option<usize>]) -> Option<f64> {
        assert_eq!(labels.len(), self.rows, "label length mismatch");
        let mut active = 0usize;
        let mut correct = 0usize;
        for (i, y) in labels.iter().enumerate() {
            let v = self.get(i, j);
            if v == ABSTAIN {
                continue;
            }
            if let Some(y) = y {
                active += 1;
                if v as usize == *y {
                    correct += 1;
                }
            }
        }
        if active == 0 {
            None
        } else {
            Some(correct as f64 / active as f64)
        }
    }

    /// Convert into the columnar layout.
    pub fn to_columnar(&self) -> LabelMatrix {
        let cols: Vec<Vec<i32>> = (0..self.cols)
            .map(|j| (0..self.rows).map(|i| self.get(i, j)).collect())
            .collect();
        LabelMatrix::from_columns(&cols, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_columnar_on_a_fixed_case() {
        let cols = vec![
            vec![0, ABSTAIN, 1, 1],
            vec![ABSTAIN, ABSTAIN, 0, 1],
            vec![0, 0, ABSTAIN, ABSTAIN],
        ];
        let r = RowMajorMatrix::from_columns(&cols, 4);
        let c = LabelMatrix::from_columns(&cols, 4);
        for i in 0..4 {
            assert_eq!(r.row(i).to_vec(), c.row_vec(i), "row {i}");
        }
        assert_eq!(r.total_coverage(), c.total_coverage());
        assert_eq!(r.mean_lf_coverage(), c.mean_lf_coverage());
        assert_eq!(r.conflict_rate(), c.conflict_rate());
        for j in 0..3 {
            assert_eq!(r.lf_coverage(j), c.lf_coverage(j), "lf {j}");
        }
        let labels = vec![Some(0), Some(0), Some(1), None];
        for j in 0..3 {
            assert_eq!(r.lf_accuracy(j, &labels), c.lf_accuracy(j, &labels));
        }
    }

    #[test]
    fn round_trip_through_columnar() {
        let cols = vec![vec![1, ABSTAIN, 0], vec![ABSTAIN, 2, 2]];
        let r = RowMajorMatrix::from_columns(&cols, 3);
        let c = r.to_columnar();
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(r.get(i, j), c.get(i, j));
            }
        }
    }
}
