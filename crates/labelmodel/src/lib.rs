//! Label-model substrate: aggregating weak labels into probabilistic labels.
//!
//! In the PWS pipeline (Figure 1), label functions vote on each training
//! instance, producing a sparse label matrix with abstains; the label model
//! estimates each LF's accuracy and aggregates the votes into probabilistic
//! labels for end-model training. The paper uses MeTaL; this crate provides:
//!
//! * [`MajorityVote`] — the classic baseline,
//! * [`MetalModel`] — a MeTaL-style generative model (per-LF accuracy under
//!   conditional independence, fit by EM), the default label model used by
//!   every experiment in this repository,
//! * [`TripletModel`] — a FlyingSquid-style closed-form accuracy estimator
//!   (binary, extended one-vs-rest for multiclass), useful as a fast
//!   alternative and as a cross-check on the EM fit.
//!
//! All models implement [`LabelModel`] and produce [`ProbLabels`], which
//! keeps a coverage mask so downstream code can apply the paper's
//! default-class rule (§3.6) or drop uncovered instances.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod majority;
pub mod matrix;
pub mod metal;
pub mod probs;
pub mod reference;
pub mod triplet;

pub use majority::MajorityVote;
pub use matrix::{LabelMatrix, MatrixError, ABSTAIN};
pub use metal::{MetalConfig, MetalModel};
pub use probs::ProbLabels;
pub use reference::RowMajorMatrix;
pub use triplet::TripletModel;

/// A label model: fit on a weak-label matrix, emit probabilistic labels.
pub trait LabelModel {
    /// Estimate parameters from the matrix (`n_classes` classes).
    fn fit(&mut self, matrix: &LabelMatrix, n_classes: usize);

    /// Posterior class distribution per instance.
    fn predict_proba(&self, matrix: &LabelMatrix) -> ProbLabels;
}
