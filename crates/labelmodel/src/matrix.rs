//! The weak-label matrix.

/// The abstain vote: the LF did not fire on this instance.
pub const ABSTAIN: i32 = -1;

/// An `n × m` matrix of weak labels: entry `(i, j)` is LF `j`'s vote on
/// instance `i` — a class index, or [`ABSTAIN`].
#[derive(Debug, Clone)]
pub struct LabelMatrix {
    data: Vec<i32>,
    rows: usize,
    cols: usize,
}

impl LabelMatrix {
    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics on shape mismatch or votes below [`ABSTAIN`].
    pub fn new(data: Vec<i32>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        assert!(data.iter().all(|&v| v >= ABSTAIN), "invalid vote");
        Self { data, rows, cols }
    }

    /// Build from per-LF columns (each of length `rows`).
    pub fn from_columns(columns: &[Vec<i32>], rows: usize) -> Self {
        let cols = columns.len();
        let mut data = vec![ABSTAIN; rows * cols];
        for (j, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), rows, "column {j} length mismatch");
            for (i, &v) in col.iter().enumerate() {
                data[i * cols + j] = v;
            }
        }
        Self::new(data, rows, cols)
    }

    /// An all-abstain matrix.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self::new(vec![ABSTAIN; rows * cols], rows, cols)
    }

    /// Number of instances.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of LFs.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Vote of LF `j` on instance `i`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> i32 {
        self.data[i * self.cols + j]
    }

    /// Set a vote.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: i32) {
        assert!(v >= ABSTAIN, "invalid vote {v}");
        self.data[i * self.cols + j] = v;
    }

    /// The votes on instance `i`.
    pub fn row(&self, i: usize) -> &[i32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Fraction of instances with at least one non-abstain vote
    /// ("Total Cov." in Table 2).
    pub fn total_coverage(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let covered = (0..self.rows)
            .filter(|&i| self.row(i).iter().any(|&v| v != ABSTAIN))
            .count();
        covered as f64 / self.rows as f64
    }

    /// Per-LF coverage: fraction of instances where LF `j` fires
    /// ("LF Cov." in Table 2 averages this over LFs).
    pub fn lf_coverage(&self, j: usize) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let active = (0..self.rows)
            .filter(|&i| self.get(i, j) != ABSTAIN)
            .count();
        active as f64 / self.rows as f64
    }

    /// Mean per-LF coverage.
    pub fn mean_lf_coverage(&self) -> f64 {
        if self.cols == 0 {
            return 0.0;
        }
        (0..self.cols).map(|j| self.lf_coverage(j)).sum::<f64>() / self.cols as f64
    }

    /// Accuracy of LF `j` against ground truth, over the instances where it
    /// fires and a label is known. `None` if it never fires on labeled data.
    pub fn lf_accuracy(&self, j: usize, labels: &[Option<usize>]) -> Option<f64> {
        assert_eq!(labels.len(), self.rows, "label length mismatch");
        let mut active = 0usize;
        let mut correct = 0usize;
        for (i, y) in labels.iter().enumerate() {
            let v = self.get(i, j);
            if v == ABSTAIN {
                continue;
            }
            if let Some(y) = y {
                active += 1;
                if v as usize == *y {
                    correct += 1;
                }
            }
        }
        if active == 0 {
            None
        } else {
            Some(correct as f64 / active as f64)
        }
    }

    /// Keep only the given columns (LF pruning).
    pub fn select_columns(&self, keep: &[usize]) -> LabelMatrix {
        let mut data = Vec::with_capacity(self.rows * keep.len());
        for i in 0..self.rows {
            for &j in keep {
                data.push(self.get(i, j));
            }
        }
        LabelMatrix::new(data, self.rows, keep.len())
    }

    /// Append one LF column.
    pub fn push_column(&mut self, col: &[i32]) {
        assert_eq!(col.len(), self.rows, "column length mismatch");
        let mut data = Vec::with_capacity(self.rows * (self.cols + 1));
        for (i, &v) in col.iter().enumerate() {
            data.extend_from_slice(self.row(i));
            data.push(v);
        }
        self.cols += 1;
        self.data = data;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LabelMatrix {
        // 4 instances, 3 LFs.
        LabelMatrix::from_columns(
            &[
                vec![0, ABSTAIN, 1, ABSTAIN],
                vec![0, 0, ABSTAIN, ABSTAIN],
                vec![1, ABSTAIN, 1, ABSTAIN],
            ],
            4,
        )
    }

    #[test]
    fn shape_and_access() {
        let m = sample();
        assert_eq!((m.rows(), m.cols()), (4, 3));
        assert_eq!(m.get(0, 0), 0);
        assert_eq!(m.get(3, 2), ABSTAIN);
        assert_eq!(m.row(2), &[1, ABSTAIN, 1]);
    }

    #[test]
    fn coverage_stats() {
        let m = sample();
        assert!((m.total_coverage() - 0.75).abs() < 1e-12);
        assert!((m.lf_coverage(0) - 0.5).abs() < 1e-12);
        assert!((m.mean_lf_coverage() - (0.5 + 0.5 + 0.5) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_against_truth() {
        let m = sample();
        let labels = vec![Some(0), Some(0), Some(1), Some(1)];
        // LF0 fires on rows 0 (votes 0, truth 0: correct) and 2 (votes 1,
        // truth 1: correct).
        assert_eq!(m.lf_accuracy(0, &labels), Some(1.0));
        // LF2 fires on rows 0 (votes 1, truth 0: wrong) and 2 (correct).
        assert_eq!(m.lf_accuracy(2, &labels), Some(0.5));
    }

    #[test]
    fn accuracy_with_missing_labels() {
        let m = sample();
        let labels = vec![None, None, None, None];
        assert_eq!(m.lf_accuracy(0, &labels), None);
    }

    #[test]
    fn select_columns_keeps_order() {
        let m = sample();
        let s = m.select_columns(&[2, 0]);
        assert_eq!((s.rows(), s.cols()), (4, 2));
        assert_eq!(s.get(0, 0), 1); // old column 2
        assert_eq!(s.get(0, 1), 0); // old column 0
    }

    #[test]
    fn push_column_grows() {
        let mut m = sample();
        m.push_column(&[ABSTAIN, 1, 1, 0]);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.get(3, 3), 0);
        assert!((m.total_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_stats() {
        let m = LabelMatrix::empty(5, 0);
        assert_eq!(m.total_coverage(), 0.0);
        assert_eq!(m.mean_lf_coverage(), 0.0);
        let z = LabelMatrix::empty(0, 3);
        assert_eq!(z.total_coverage(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid vote")]
    fn negative_votes_rejected() {
        let _ = LabelMatrix::new(vec![-2], 1, 1);
    }
}
