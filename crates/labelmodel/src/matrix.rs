//! The weak-label matrix, stored LF-major (columnar).
//!
//! Every consumer of the matrix sweeps it one LF at a time: the MeTaL
//! E-step, majority vote, the coverage/accuracy statistics, and the
//! redundancy filter all ask "what did LF `j` vote across the split" —
//! never "what is the full vote row of instance `i`" (rows are only ever
//! *reduced*, into per-row accumulators). The storage matches that access
//! pattern: one contiguous `rows`-long column per LF, so a column sweep is
//! a linear scan, appending an LF is a memcpy, and the old row-major
//! scatter in `from_columns` does not exist.

/// The abstain vote: the LF did not fire on this instance.
pub const ABSTAIN: i32 = -1;

/// Why a matrix could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixError {
    /// Buffer or column length does not match the declared shape.
    ShapeMismatch {
        /// Expected number of entries.
        expected: usize,
        /// Actual number of entries.
        got: usize,
    },
    /// A vote below [`ABSTAIN`].
    InvalidVote {
        /// The offending vote value.
        value: i32,
    },
}

impl std::fmt::Display for MatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected} entries, got {got}")
            }
            MatrixError::InvalidVote { value } => write!(f, "invalid vote {value}"),
        }
    }
}

impl std::error::Error for MatrixError {}

/// An `n × m` matrix of weak labels: entry `(i, j)` is LF `j`'s vote on
/// instance `i` — a class index, or [`ABSTAIN`].
///
/// Storage is LF-major: `data[j * rows + i]`, one contiguous column per LF.
#[derive(Debug, Clone)]
pub struct LabelMatrix {
    /// Column-major (LF-major) vote buffer.
    data: Vec<i32>,
    rows: usize,
    cols: usize,
}

impl LabelMatrix {
    /// Build from a flat **row-major** buffer (entry `(i, j)` at
    /// `i * cols + j`), validating shape and vote range. The buffer is
    /// transposed once into the columnar layout.
    pub fn try_new(data: Vec<i32>, rows: usize, cols: usize) -> Result<Self, MatrixError> {
        if data.len() != rows * cols {
            return Err(MatrixError::ShapeMismatch {
                expected: rows * cols,
                got: data.len(),
            });
        }
        if let Some(&value) = data.iter().find(|&&v| v < ABSTAIN) {
            return Err(MatrixError::InvalidVote { value });
        }
        // Transpose by gathering column `j` from every row-major row;
        // `chunks_exact` is only reached with `cols > 0`, and `row` always
        // has `cols` entries, so the fallback never fires.
        let mut columnar = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            columnar.extend(
                data.chunks_exact(cols)
                    .map(|row| row.get(j).copied().unwrap_or(ABSTAIN)),
            );
        }
        Ok(Self {
            data: columnar,
            rows,
            cols,
        })
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics on shape mismatch or votes below [`ABSTAIN`]; test/bench
    /// convenience — library paths use [`try_new`](Self::try_new).
    pub fn new(data: Vec<i32>, rows: usize, cols: usize) -> Self {
        match Self::try_new(data, rows, cols) {
            Ok(m) => m,
            // ds-lint: allow(panic): documented test/bench constructor
            Err(e @ MatrixError::ShapeMismatch { .. }) => panic!("shape mismatch: {e}"),
            // ds-lint: allow(panic): documented test/bench constructor
            Err(e @ MatrixError::InvalidVote { .. }) => panic!("invalid vote: {e}"),
        }
    }

    /// Build from per-LF columns (each of length `rows`). With the
    /// columnar layout this is a straight concatenation — no scatter.
    pub fn try_from_columns(columns: &[Vec<i32>], rows: usize) -> Result<Self, MatrixError> {
        let mut m = Self::empty(rows, 0);
        for col in columns {
            m.try_push_column(col)?;
        }
        Ok(m)
    }

    /// Build from per-LF columns (each of length `rows`).
    ///
    /// # Panics
    /// Panics on column length mismatch or invalid votes; test/bench
    /// convenience — library paths use
    /// [`try_from_columns`](Self::try_from_columns).
    pub fn from_columns(columns: &[Vec<i32>], rows: usize) -> Self {
        match Self::try_from_columns(columns, rows) {
            Ok(m) => m,
            // ds-lint: allow(panic): documented test/bench constructor
            Err(e) => panic!("column mismatch: {e}"),
        }
    }

    /// An all-abstain matrix.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![ABSTAIN; rows * cols],
            rows,
            cols,
        }
    }

    /// Number of instances.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of LFs.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Vote of LF `j` on instance `i`; [`ABSTAIN`] out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> i32 {
        self.data.get(j * self.rows + i).copied().unwrap_or(ABSTAIN)
    }

    /// Set a vote. Out-of-bounds coordinates are a no-op.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: i32) {
        assert!(v >= ABSTAIN, "invalid vote {v}");
        if let Some(slot) = self.data.get_mut(j * self.rows + i) {
            *slot = v;
        }
    }

    /// The contiguous vote column of LF `j` (the hot-path accessor);
    /// empty out of bounds.
    #[inline]
    pub fn column(&self, j: usize) -> &[i32] {
        self.data
            .get(j * self.rows..(j + 1) * self.rows)
            .unwrap_or(&[])
    }

    /// Iterate the LF columns in order.
    pub fn columns(&self) -> impl Iterator<Item = &[i32]> + '_ {
        (0..self.cols).map(move |j| self.column(j))
    }

    /// The votes on instance `i`, gathered across columns (allocates; for
    /// tests and diagnostics — hot paths sweep columns instead).
    pub fn row_vec(&self, i: usize) -> Vec<i32> {
        (0..self.cols).map(|j| self.get(i, j)).collect()
    }

    /// Per-instance count of non-abstain votes, as one column sweep.
    pub fn active_counts(&self) -> Vec<u32> {
        let mut active = vec![0u32; self.rows];
        for j in 0..self.cols {
            for (a, &v) in active.iter_mut().zip(self.column(j)) {
                *a += u32::from(v != ABSTAIN);
            }
        }
        active
    }

    /// Fraction of instances with at least one non-abstain vote
    /// ("Total Cov." in Table 2).
    pub fn total_coverage(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let covered = self.active_counts().iter().filter(|&&a| a > 0).count();
        covered as f64 / self.rows as f64
    }

    /// Per-LF coverage: fraction of instances where LF `j` fires
    /// ("LF Cov." in Table 2 averages this over LFs). A single
    /// branch-free column scan.
    pub fn lf_coverage(&self, j: usize) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let active: u32 = self
            .column(j)
            .iter()
            .map(|&v| u32::from(v != ABSTAIN))
            .sum();
        active as f64 / self.rows as f64
    }

    /// Mean per-LF coverage.
    pub fn mean_lf_coverage(&self) -> f64 {
        if self.cols == 0 {
            return 0.0;
        }
        (0..self.cols).map(|j| self.lf_coverage(j)).sum::<f64>() / self.cols as f64
    }

    /// Fraction of instances carrying at least two *distinct* non-abstain
    /// votes (the standard weak-supervision conflict statistic), as one
    /// column sweep with per-row first-vote accumulators.
    pub fn conflict_rate(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let mut first = vec![ABSTAIN; self.rows];
        let mut conflicted = vec![false; self.rows];
        for j in 0..self.cols {
            for ((f, c), &v) in first
                .iter_mut()
                .zip(conflicted.iter_mut())
                .zip(self.column(j))
            {
                if v == ABSTAIN {
                    continue;
                }
                if *f == ABSTAIN {
                    *f = v;
                } else if *f != v {
                    *c = true;
                }
            }
        }
        conflicted.iter().filter(|&&c| c).count() as f64 / self.rows as f64
    }

    /// Accuracy of LF `j` against ground truth, over the instances where it
    /// fires and a label is known. `None` if it never fires on labeled data.
    pub fn lf_accuracy(&self, j: usize, labels: &[Option<usize>]) -> Option<f64> {
        assert_eq!(labels.len(), self.rows, "label length mismatch");
        let mut active = 0usize;
        let mut correct = 0usize;
        for (&v, y) in self.column(j).iter().zip(labels) {
            if v == ABSTAIN {
                continue;
            }
            if let Some(y) = y {
                active += 1;
                if v as usize == *y {
                    correct += 1;
                }
            }
        }
        if active == 0 {
            None
        } else {
            Some(correct as f64 / active as f64)
        }
    }

    /// Keep only the given columns (LF pruning). Each kept column is one
    /// contiguous copy.
    pub fn select_columns(&self, keep: &[usize]) -> LabelMatrix {
        let mut data = Vec::with_capacity(self.rows * keep.len());
        for &j in keep {
            data.extend_from_slice(self.column(j));
        }
        LabelMatrix {
            data,
            rows: self.rows,
            cols: keep.len(),
        }
    }

    /// Append one LF column (an `O(rows)` contiguous append), validating
    /// length and vote range.
    pub fn try_push_column(&mut self, col: &[i32]) -> Result<(), MatrixError> {
        if col.len() != self.rows {
            return Err(MatrixError::ShapeMismatch {
                expected: self.rows,
                got: col.len(),
            });
        }
        if let Some(&value) = col.iter().find(|&&v| v < ABSTAIN) {
            return Err(MatrixError::InvalidVote { value });
        }
        self.data.extend_from_slice(col);
        self.cols += 1;
        Ok(())
    }

    /// Append one LF column.
    ///
    /// # Panics
    /// Panics on length mismatch or invalid votes; test/bench convenience —
    /// library paths use [`try_push_column`](Self::try_push_column).
    pub fn push_column(&mut self, col: &[i32]) {
        match self.try_push_column(col) {
            Ok(()) => {}
            // ds-lint: allow(panic): documented test/bench constructor
            Err(e) => panic!("column mismatch: {e}"),
        }
    }

    /// Remove the last LF column (an `O(1)` truncate in this layout).
    /// Returns `false` on an empty matrix.
    pub fn pop_column(&mut self) -> bool {
        if self.cols == 0 {
            return false;
        }
        self.cols -= 1;
        self.data.truncate(self.cols * self.rows);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LabelMatrix {
        // 4 instances, 3 LFs.
        LabelMatrix::from_columns(
            &[
                vec![0, ABSTAIN, 1, ABSTAIN],
                vec![0, 0, ABSTAIN, ABSTAIN],
                vec![1, ABSTAIN, 1, ABSTAIN],
            ],
            4,
        )
    }

    #[test]
    fn shape_and_access() {
        let m = sample();
        assert_eq!((m.rows(), m.cols()), (4, 3));
        assert_eq!(m.get(0, 0), 0);
        assert_eq!(m.get(3, 2), ABSTAIN);
        assert_eq!(m.row_vec(2), vec![1, ABSTAIN, 1]);
        assert_eq!(m.column(1), &[0, 0, ABSTAIN, ABSTAIN]);
    }

    #[test]
    fn row_major_constructor_transposes() {
        // Same matrix as `sample`, given row-major.
        let m = LabelMatrix::new(
            vec![
                0, 0, 1, //
                ABSTAIN, 0, ABSTAIN, //
                1, ABSTAIN, 1, //
                ABSTAIN, ABSTAIN, ABSTAIN,
            ],
            4,
            3,
        );
        let s = sample();
        for i in 0..4 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), s.get(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn coverage_stats() {
        let m = sample();
        assert!((m.total_coverage() - 0.75).abs() < 1e-12);
        assert!((m.lf_coverage(0) - 0.5).abs() < 1e-12);
        assert!((m.mean_lf_coverage() - (0.5 + 0.5 + 0.5) / 3.0).abs() < 1e-12);
        assert_eq!(m.active_counts(), vec![3, 1, 2, 0]);
    }

    #[test]
    fn conflict_rate_counts_distinct_disagreement() {
        let m = sample();
        // Row 0 has votes {0, 0, 1}: conflicted. Rows 1, 2 are unanimous.
        assert!((m.conflict_rate() - 0.25).abs() < 1e-12);
        assert_eq!(LabelMatrix::empty(0, 2).conflict_rate(), 0.0);
        assert_eq!(LabelMatrix::empty(4, 2).conflict_rate(), 0.0);
    }

    #[test]
    fn accuracy_against_truth() {
        let m = sample();
        let labels = vec![Some(0), Some(0), Some(1), Some(1)];
        // LF0 fires on rows 0 (votes 0, truth 0: correct) and 2 (votes 1,
        // truth 1: correct).
        assert_eq!(m.lf_accuracy(0, &labels), Some(1.0));
        // LF2 fires on rows 0 (votes 1, truth 0: wrong) and 2 (correct).
        assert_eq!(m.lf_accuracy(2, &labels), Some(0.5));
    }

    #[test]
    fn accuracy_with_missing_labels() {
        let m = sample();
        let labels = vec![None, None, None, None];
        assert_eq!(m.lf_accuracy(0, &labels), None);
    }

    #[test]
    fn select_columns_keeps_order() {
        let m = sample();
        let s = m.select_columns(&[2, 0]);
        assert_eq!((s.rows(), s.cols()), (4, 2));
        assert_eq!(s.get(0, 0), 1); // old column 2
        assert_eq!(s.get(0, 1), 0); // old column 0
        assert_eq!(s.column(0), m.column(2));
    }

    #[test]
    fn push_column_grows() {
        let mut m = sample();
        m.push_column(&[ABSTAIN, 1, 1, 0]);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.get(3, 3), 0);
        assert!((m.total_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pop_column_undoes_push() {
        let mut m = sample();
        let before = m.clone();
        m.push_column(&[ABSTAIN, 1, 1, 0]);
        assert!(m.pop_column());
        assert_eq!(m.cols(), before.cols());
        for j in 0..m.cols() {
            assert_eq!(m.column(j), before.column(j));
        }
        let mut e = LabelMatrix::empty(3, 0);
        assert!(!e.pop_column());
    }

    #[test]
    fn try_push_column_validates() {
        let mut m = LabelMatrix::empty(2, 0);
        assert_eq!(
            m.try_push_column(&[0, 1, 0]),
            Err(MatrixError::ShapeMismatch {
                expected: 2,
                got: 3
            })
        );
        assert_eq!(
            m.try_push_column(&[0, -2]),
            Err(MatrixError::InvalidVote { value: -2 })
        );
        assert!(m.try_push_column(&[0, ABSTAIN]).is_ok());
        assert_eq!(m.cols(), 1);
    }

    #[test]
    fn empty_matrix_stats() {
        let m = LabelMatrix::empty(5, 0);
        assert_eq!(m.total_coverage(), 0.0);
        assert_eq!(m.mean_lf_coverage(), 0.0);
        let z = LabelMatrix::empty(0, 3);
        assert_eq!(z.total_coverage(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid vote")]
    fn negative_votes_rejected() {
        let _ = LabelMatrix::new(vec![-2], 1, 1);
    }

    #[test]
    fn try_new_reports_errors() {
        let shape = LabelMatrix::try_new(vec![0; 5], 2, 3);
        assert_eq!(
            shape.err(),
            Some(MatrixError::ShapeMismatch {
                expected: 6,
                got: 5
            })
        );
        let vote = LabelMatrix::try_new(vec![0, -3], 2, 1);
        assert_eq!(vote.err(), Some(MatrixError::InvalidVote { value: -3 }));
    }
}
