//! MeTaL-style generative label model fit by EM.
//!
//! The paper aggregates LFs with MeTaL (Ratner et al., AAAI 2019). The role
//! MeTaL plays in the pipeline — estimating LF reliabilities without ground
//! truth and producing reliability-weighted posteriors — is reproduced here
//! with the full data-programming generative model: per LF `j`, a
//! class-conditional vote distribution
//!
//! `θ_j[y][v] = P(λ_j = v | Y = y)`, with `v` ranging over the classes
//! *and abstain*.
//!
//! Modeling abstention class-conditionally is essential for keyword LFs:
//! they are **one-sided** (a keyword LF only ever votes its own class), so
//! their entire signal lies in firing *more often* on their class — a model
//! that treats abstention as class-independent throws that signal away and
//! collapses. EM alternates exact posteriors with damped, smoothed table
//! updates; the supplied class balance is used both as the fit-time prior
//! and at prediction (the smoothing/damping guards below keep the skewed
//! prior from being amplified into a collapsed solution).

use crate::matrix::{LabelMatrix, ABSTAIN};
use crate::probs::ProbLabels;
use crate::LabelModel;
use datasculpt_exec::{shard_ranges, Pool, DEFAULT_SHARDS};
use std::ops::Range;

/// Strength of the Dirichlet smoothing toward the marginal vote rates.
const SMOOTH_STRENGTH: f64 = 5.0;
/// Default for [`MetalModel::with_accuracy_tilt`]: the multiplier applied
/// to the `v == y` vote cell of the smoothing prior (LFs are assumed
/// substantially better than chance, as after the §3.5 accuracy filter).
const ACCURACY_TILT: f64 = 1.9;
/// Scale applied to the abstain evidence of *inactive* LFs. Each LF's own
/// fire-vs-abstain likelihood ratio is kept at full strength (that ratio
/// carries the one-sided-LF signal), but cross-LF abstain evidence is
/// damped: at full strength, once EM believes one LF of a class, the
/// abstention of that LF pushes every sibling LF's coverage negative —
/// a second winner-takes-all channel that flips same-class LFs with
/// disjoint coverage into anti-indicators.
const ABSTAIN_EVIDENCE_SCALE: f64 = 0.25;

/// Stability knobs of the EM fit (see the constants above for why each
/// exists). Exposed so the `lm_ablation` bench can quantify each guard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetalConfig {
    /// Dirichlet smoothing strength toward marginal vote rates.
    pub smooth_strength: f64,
    /// Prior tilt of own-class vote cells.
    pub accuracy_tilt: f64,
    /// Damping of cross-LF abstain evidence (κ).
    pub abstain_evidence_scale: f64,
    /// Damping of the θ update (0 = frozen, 1 = undamped EM).
    pub update_damping: f64,
}

impl Default for MetalConfig {
    fn default() -> Self {
        Self {
            smooth_strength: SMOOTH_STRENGTH,
            accuracy_tilt: ACCURACY_TILT,
            abstain_evidence_scale: ABSTAIN_EVIDENCE_SCALE,
            update_damping: 0.5,
        }
    }
}

/// EM-fit generative label model (MeTaL substitute).
#[derive(Debug, Clone)]
pub struct MetalModel {
    n_classes: usize,
    /// Flattened `θ_j[y][v]`: index `j·C·(C+1) + y·(C+1) + v`; `v == C`
    /// is abstain.
    theta: Vec<f64>,
    /// Diagnostic per-LF accuracy estimates `P(Y = v̂_j | λ_j = v̂_j)`.
    alpha: Vec<f64>,
    /// Prediction-time class prior.
    prior: Vec<f64>,
    max_iter: usize,
    tol: f64,
    fixed_balance: Option<Vec<f64>>,
    config: MetalConfig,
    pool: Pool,
}

impl Default for MetalModel {
    fn default() -> Self {
        Self::new()
    }
}

impl MetalModel {
    /// A model with default hyper-parameters (100 EM iterations, 1e-5 tol).
    pub fn new() -> Self {
        Self {
            n_classes: 0,
            theta: Vec::new(),
            alpha: Vec::new(),
            prior: Vec::new(),
            max_iter: 100,
            tol: 1e-5,
            fixed_balance: None,
            config: MetalConfig::default(),
            pool: Pool::serial(),
        }
    }

    /// Run the E-step and prediction passes on `pool`. Accumulation is
    /// always per-shard with a fixed shard count and a left-to-right merge
    /// (see [`fit`](LabelModel::fit)), so the fitted model and posteriors
    /// are bit-identical at every thread count, including serial.
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Override the EM stability configuration.
    pub fn with_config(mut self, config: MetalConfig) -> Self {
        assert!(config.smooth_strength >= 0.0, "negative smoothing");
        assert!(config.accuracy_tilt > 0.0, "non-positive tilt");
        assert!(
            (0.0..=1.0).contains(&config.abstain_evidence_scale),
            "abstain scale out of range"
        );
        assert!(
            (0.0..=1.0).contains(&config.update_damping) && config.update_damping > 0.0,
            "damping out of range"
        );
        self.config = config;
        self
    }

    /// Fix the prediction-time class balance instead of estimating it.
    pub fn with_class_balance(mut self, balance: Vec<f64>) -> Self {
        let sum: f64 = balance.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "balance must sum to 1");
        self.fixed_balance = Some(balance);
        self
    }

    /// Set the EM iteration cap.
    pub fn with_max_iter(mut self, iters: usize) -> Self {
        self.max_iter = iters.max(1);
        self
    }

    /// Estimated per-LF accuracies (after [`fit`](LabelModel::fit)):
    /// `P(Y = v | λ_j = v)` for the LF's dominant vote `v`.
    pub fn accuracies(&self) -> &[f64] {
        &self.alpha
    }

    /// Prediction-time class prior (after [`fit`](LabelModel::fit)).
    pub fn prior(&self) -> &[f64] {
        &self.prior
    }

    #[inline]
    fn th(&self, j: usize, y: usize, v: usize) -> f64 {
        let c = self.n_classes;
        self.theta
            .get(j * c * (c + 1) + y * (c + 1) + v)
            .copied()
            .unwrap_or(0.0)
    }

    /// Precomputed active-vote contribution tables:
    /// `w[j·C² + v·C + y] = ln θ_j[y][v] − κ · ln θ_j[y][abstain]`, the
    /// exact term a non-abstain vote `v` of LF `j` adds to class `y`'s
    /// log-posterior. Hoisting it out of the instance sweep makes the
    /// per-vote work a `C`-long table add.
    fn vote_weights(&self, ltheta: &[f64]) -> Vec<f64> {
        let c = self.n_classes;
        let m = ltheta.len() / (c * (c + 1));
        let mut w = vec![0.0f64; m * c * c];
        // Per LF, `ltheta` rows are `[ln θ(v=0) … ln θ(v=c-1), ln θ(abst)]`
        // per class `y`; the table transposes to `[v][y]`. Each cell is the
        // same expression as the historical indexed loop, in the same
        // `(j, y, v)` write order.
        for (wj, ltj) in w
            .chunks_exact_mut(c * c)
            .zip(ltheta.chunks_exact(c * (c + 1)))
        {
            for (y, row) in ltj.chunks_exact(c + 1).enumerate() {
                let Some((&labst, votes)) = row.split_last() else {
                    continue;
                };
                for (v, &lv) in votes.iter().enumerate() {
                    if let Some(slot) = wj.get_mut(v * c + y) {
                        *slot = lv - self.config.abstain_evidence_scale * labst;
                    }
                }
            }
        }
        w
    }

    /// Columnar posterior kernel over the instance range `range`: one
    /// LF-major sweep filling a row-major `len × C` log-posterior block,
    /// then a row-wise softmax. Returns the posteriors and per-row
    /// any-vote flags.
    ///
    /// Bit-exactness: each logp cell receives its active-LF contributions
    /// in ascending-`j` order with operands identical to the historical
    /// per-row loop (the `w` table entries are computed from the same
    /// expressions), and the softmax matches it term for term — so the
    /// posteriors, the fit, and the pinned run digests are unchanged.
    fn posterior_block(
        &self,
        matrix: &LabelMatrix,
        range: Range<usize>,
        prior: &[f64],
        base: &[f64],
        w: &[f64],
    ) -> (Vec<f64>, Vec<bool>) {
        let c = self.n_classes;
        let len = range.len();
        let init: Vec<f64> = prior
            .iter()
            .zip(base)
            .map(|(&p, &b)| p.max(1e-12).ln() + b)
            .collect();
        let mut logp = Vec::with_capacity(len * c);
        for _ in 0..len {
            logp.extend_from_slice(&init);
        }
        let mut any = vec![false; len];
        for j in 0..matrix.cols() {
            let col = matrix.column(j).get(range.clone()).unwrap_or(&[]);
            let wj = w.get(j * c * c..(j + 1) * c * c).unwrap_or(&[]);
            for ((row, a), &v) in logp.chunks_exact_mut(c).zip(any.iter_mut()).zip(col) {
                if v == ABSTAIN {
                    continue;
                }
                *a = true;
                let Some(wv) = wj.get(v as usize * c..(v as usize + 1) * c) else {
                    continue;
                };
                for (lp, &t) in row.iter_mut().zip(wv) {
                    *lp += t;
                }
            }
        }
        for lp in logp.chunks_exact_mut(c) {
            let mx = lp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut z = 0.0f64;
            for p in lp.iter_mut() {
                *p = (*p - mx).exp();
                z += *p;
            }
            for p in lp.iter_mut() {
                *p /= z;
            }
        }
        (logp, any)
    }

    /// Per-class damped abstain log-sums
    /// `base[y] = κ · Σ_j ln θ_j[y][abstain]` (see
    /// [`ABSTAIN_EVIDENCE_SCALE`]).
    fn abstain_base(&self, ltheta: &[f64]) -> Vec<f64> {
        let c = self.n_classes;
        let m = self.theta.len() / (c * (c + 1));
        (0..c)
            .map(|y| {
                self.config.abstain_evidence_scale
                    * (0..m)
                        .map(|j| {
                            ltheta
                                .get(j * c * (c + 1) + y * (c + 1) + c)
                                .copied()
                                .unwrap_or(0.0)
                        })
                        .sum::<f64>()
            })
            .collect()
    }

    /// Derive diagnostic accuracies from the tables under `prior`.
    fn derive_alpha(&mut self, matrix: &LabelMatrix) {
        let c = self.n_classes;
        let m = matrix.cols();
        self.alpha = (0..m)
            .map(|j| {
                // Dominant vote of this LF: one column scan.
                let mut counts = vec![0usize; c];
                for &v in matrix.column(j) {
                    if v == ABSTAIN {
                        continue;
                    }
                    if let Some(slot) = counts.get_mut(v as usize) {
                        *slot += 1;
                    }
                }
                let v = counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &n)| n)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                let num = self.prior.get(v).copied().unwrap_or(0.0) * self.th(j, v, v);
                let den: f64 = self
                    .prior
                    .iter()
                    .enumerate()
                    .map(|(y, &pr)| pr * self.th(j, y, v))
                    .sum();
                if den > 0.0 {
                    (num / den).clamp(0.0, 1.0)
                } else {
                    1.0 / c as f64
                }
            })
            .collect();
    }
}

impl LabelModel for MetalModel {
    fn fit(&mut self, matrix: &LabelMatrix, n_classes: usize) {
        assert!(n_classes >= 2, "need at least two classes");
        self.n_classes = n_classes;
        let c = n_classes;
        let m = matrix.cols();
        let n = matrix.rows();
        self.prior = self
            .fixed_balance
            .clone()
            .unwrap_or_else(|| vec![1.0 / c as f64; c]);
        self.theta = vec![0.0; m * c * (c + 1)];
        self.alpha = vec![0.7; m];
        if m == 0 || n == 0 {
            return;
        }

        // Empirical marginal vote rates per LF (abstain at index c),
        // counted in one pass over each contiguous column. The counts are
        // exact small integers in f64, so the sweep order is immaterial.
        let mut marginal = vec![0.0f64; m * (c + 1)];
        for j in 0..m {
            let mrow = marginal
                .get_mut(j * (c + 1)..(j + 1) * (c + 1))
                .unwrap_or_default();
            for &v in matrix.column(j) {
                let v = if v == ABSTAIN { c } else { v as usize };
                if let Some(slot) = mrow.get_mut(v) {
                    *slot += 1.0;
                }
            }
        }
        for e in marginal.iter_mut() {
            *e = (*e + 0.5) / (n as f64 + 0.5 * (c + 1) as f64);
        }

        // Smoothing pseudo-counts: marginal rates, tilted so each vote
        // class is a-priori likelier under its own class. This anchors θ
        // and prevents the winner-takes-all runaway of unsmoothed EM.
        let mut pseudo = vec![0.0f64; m * c * (c + 1)];
        for (pj, mrow) in pseudo
            .chunks_exact_mut(c * (c + 1))
            .zip(marginal.chunks_exact(c + 1))
        {
            for (y, prow) in pj.chunks_exact_mut(c + 1).enumerate() {
                for (v, (p, &mv)) in prow.iter_mut().zip(mrow).enumerate() {
                    // Own-class vote cells get ACCURACY_TILT; the other
                    // vote cells share the remaining mass; abstain is
                    // untilted.
                    let tilt = if v == y {
                        self.config.accuracy_tilt
                    } else if v < c {
                        ((c as f64 - self.config.accuracy_tilt) / (c as f64 - 1.0)).max(0.2)
                    } else {
                        1.0
                    };
                    *p = self.config.smooth_strength * mv * tilt;
                }
            }
        }

        // Initialize θ at the (normalized) pseudo-counts.
        for (trow, prow) in self
            .theta
            .chunks_exact_mut(c + 1)
            .zip(pseudo.chunks_exact(c + 1))
        {
            let z: f64 = prow.iter().sum();
            for (t, &ps) in trow.iter_mut().zip(prow) {
                *t = ps / z;
            }
        }

        // Fit-time prior: the supplied class balance (see module docs).
        let fit_prior = self.prior.clone();
        let mut prior_estimate = fit_prior.clone();

        for _ in 0..self.max_iter {
            let ltheta: Vec<f64> = self.theta.iter().map(|t| t.max(1e-12).ln()).collect();
            let base = self.abstain_base(&ltheta);
            let w = self.vote_weights(&ltheta);
            // E-step: per-shard partial accumulators merged in shard
            // order. The shard decomposition depends only on `n` (never on
            // the thread count) and the merge is a fixed left-to-right
            // sum, so the accumulated floats — and therefore the fit — are
            // identical at every thread count, including serial. Within a
            // shard, each `tm`/`vm` cell accumulates its posterior mass in
            // ascending-instance order, exactly as the historical per-row
            // loop did, so the fit is also bit-identical to it.
            let this = &*self;
            let estep_shard = |range: Range<usize>| {
                let (posts, _any) =
                    this.posterior_block(matrix, range.clone(), &fit_prior, &base, &w);
                let mut tm = vec![0.0f64; c];
                for row in posts.chunks_exact(c) {
                    for (t, &p) in tm.iter_mut().zip(row) {
                        *t += p;
                    }
                }
                let mut vm = vec![0.0f64; m * c * (c + 1)];
                for j in 0..m {
                    let col = matrix.column(j).get(range.clone()).unwrap_or(&[]);
                    let vmj = vm
                        .get_mut(j * c * (c + 1)..(j + 1) * c * (c + 1))
                        .unwrap_or_default();
                    for (row, &v) in posts.chunks_exact(c).zip(col) {
                        if v == ABSTAIN {
                            continue;
                        }
                        let v = v as usize;
                        for (y, &p) in row.iter().enumerate() {
                            if let Some(slot) = vmj.get_mut(y * (c + 1) + v) {
                                *slot += p;
                            }
                        }
                    }
                }
                (vm, tm)
            };
            let parts = match this.pool.map_shards(n, estep_shard) {
                Ok(parts) => parts,
                // A worker panicked (impossible for this pure arithmetic):
                // replay the identical shards serially rather than abort.
                Err(_) => shard_ranges(n, DEFAULT_SHARDS)
                    .into_iter()
                    .map(&estep_shard)
                    .collect(),
            };
            let mut vote_mass = vec![0.0f64; m * c * (c + 1)];
            let mut total_mass = vec![0.0f64; c];
            for (vm, tm) in parts {
                for (acc, p) in vote_mass.iter_mut().zip(&vm) {
                    *acc += p;
                }
                for (acc, p) in total_mass.iter_mut().zip(&tm) {
                    *acc += p;
                }
            }
            // M-step: damped, smoothed table update. Abstain mass is the
            // remainder of the class total.
            let mut delta = 0.0f64;
            let d = self.config.update_damping;
            for (tj, (vj, pj)) in self.theta.chunks_exact_mut(c * (c + 1)).zip(
                vote_mass
                    .chunks_exact(c * (c + 1))
                    .zip(pseudo.chunks_exact(c * (c + 1))),
            ) {
                for ((trow, (vrow, prow)), &tmass) in tj
                    .chunks_exact_mut(c + 1)
                    .zip(vj.chunks_exact(c + 1).zip(pj.chunks_exact(c + 1)))
                    .zip(total_mass.iter())
                {
                    let votes = vrow.get(..c).unwrap_or(&[]);
                    let active_mass: f64 = votes.iter().sum();
                    let abst = (tmass - active_mass).max(0.0);
                    let mut counts: Vec<f64> =
                        votes.iter().zip(prow).map(|(&vm_, &ps)| vm_ + ps).collect();
                    counts.push(abst + prow.get(c).copied().unwrap_or(0.0));
                    let z: f64 = counts.iter().sum();
                    for (cnt, t) in counts.iter().zip(trow.iter_mut()) {
                        let hat = cnt / z;
                        let new = (1.0 - d) * *t + d * hat;
                        delta += (new - *t).abs();
                        *t = new;
                    }
                }
            }
            let z: f64 = total_mass.iter().sum();
            prior_estimate = total_mass.iter().map(|t| t / z).collect();
            if delta / (m as f64 * c as f64) < self.tol {
                break;
            }
        }

        self.prior = self.fixed_balance.clone().unwrap_or(prior_estimate);
        self.derive_alpha(matrix);
    }

    fn predict_proba(&self, matrix: &LabelMatrix) -> ProbLabels {
        assert!(self.n_classes >= 2, "fit before predict");
        assert_eq!(
            matrix.cols() * self.n_classes * (self.n_classes + 1),
            self.theta.len(),
            "LF count mismatch"
        );
        let c = self.n_classes;
        let ltheta: Vec<f64> = self.theta.iter().map(|t| t.max(1e-12).ln()).collect();
        let base = self.abstain_base(&ltheta);
        let w = self.vote_weights(&ltheta);
        // Rows are independent, so sharding + in-order concatenation is
        // bit-identical to the serial loop at every thread count. Each
        // shard is one columnar posterior sweep; rows with no votes are
        // overwritten with the uniform fallback.
        let row_shard = |range: Range<usize>| {
            let (mut probs, any) = self.posterior_block(matrix, range, &self.prior, &base, &w);
            let mut covered = Vec::with_capacity(any.len());
            for (row, &active) in probs.chunks_exact_mut(c).zip(&any) {
                if active {
                    covered.push(true);
                } else {
                    row.fill(1.0 / c as f64);
                    covered.push(false);
                }
            }
            (probs, covered)
        };
        let parts = match self.pool.map_shards(matrix.rows(), row_shard) {
            Ok(parts) => parts,
            Err(_) => shard_ranges(matrix.rows(), DEFAULT_SHARDS)
                .into_iter()
                .map(&row_shard)
                .collect(),
        };
        let mut probs = Vec::with_capacity(matrix.rows() * c);
        let mut covered = Vec::with_capacity(matrix.rows());
        for (p, cov) in parts {
            probs.extend(p);
            covered.extend(cov);
        }
        ProbLabels::new(probs, matrix.rows(), c, covered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasculpt_text::rng::derive_seed;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthesize a matrix from known LF accuracies (two-sided LFs) and
    /// return it with the ground truth.
    fn synth(
        n: usize,
        accs: &[f64],
        coverage: f64,
        n_classes: usize,
        seed: u64,
    ) -> (LabelMatrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, 77));
        let mut truth = Vec::with_capacity(n);
        let mut cols: Vec<Vec<i32>> = vec![Vec::with_capacity(n); accs.len()];
        for _ in 0..n {
            let y = rng.gen_range(0..n_classes);
            truth.push(y);
            for (j, &a) in accs.iter().enumerate() {
                if rng.gen::<f64>() > coverage {
                    cols[j].push(ABSTAIN);
                } else if rng.gen::<f64>() < a {
                    cols[j].push(y as i32);
                } else {
                    let mut w = rng.gen_range(0..n_classes - 1);
                    if w >= y {
                        w += 1;
                    }
                    cols[j].push(w as i32);
                }
            }
        }
        (LabelMatrix::from_columns(&cols, n), truth)
    }

    /// Synthesize a matrix of *one-sided* keyword-style LFs: LF `j` votes
    /// only class `class[j]`, firing with rate `fire_own` on its class and
    /// `fire_other` elsewhere.
    fn synth_one_sided(
        n: usize,
        classes: &[usize],
        fire_own: f64,
        fire_other: f64,
        n_classes: usize,
        seed: u64,
    ) -> (LabelMatrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, 99));
        let mut truth = Vec::with_capacity(n);
        let mut cols: Vec<Vec<i32>> = vec![Vec::with_capacity(n); classes.len()];
        for _ in 0..n {
            let y = rng.gen_range(0..n_classes);
            truth.push(y);
            for (j, &cj) in classes.iter().enumerate() {
                let rate = if y == cj { fire_own } else { fire_other };
                if rng.gen::<f64>() < rate {
                    cols[j].push(cj as i32);
                } else {
                    cols[j].push(ABSTAIN);
                }
            }
        }
        (LabelMatrix::from_columns(&cols, n), truth)
    }

    fn hard_acc(p: &crate::ProbLabels, truth: &[usize]) -> f64 {
        let covered = p.covered_indices();
        let hard = p.hard_labels();
        covered.iter().filter(|&&i| hard[i] == truth[i]).count() as f64 / covered.len() as f64
    }

    #[test]
    fn recovers_lf_accuracy_ordering() {
        let accs = [0.95, 0.85, 0.70, 0.55];
        let (m, _) = synth(4000, &accs, 0.4, 2, 1);
        let mut model = MetalModel::new();
        model.fit(&m, 2);
        let est = model.accuracies();
        assert!(
            est[0] > est[1] && est[1] > est[2] && est[2] > est[3],
            "{est:?}"
        );
    }

    #[test]
    fn one_sided_keyword_lfs_are_aggregated_correctly() {
        // Five positive-only and five negative-only keyword LFs. All the
        // signal is in the class-conditional firing rate.
        let classes = [1, 1, 1, 1, 1, 0, 0, 0, 0, 0];
        let (m, truth) = synth_one_sided(4000, &classes, 0.15, 0.02, 2, 3);
        let mut model = MetalModel::new();
        model.fit(&m, 2);
        let acc = hard_acc(&model.predict_proba(&m), &truth);
        assert!(acc > 0.85, "one-sided aggregation accuracy {acc}");
        // Accuracy estimates should be clearly better than chance for all.
        for (j, a) in model.accuracies().iter().enumerate() {
            assert!(*a > 0.6, "lf {j} alpha {a}");
        }
    }

    #[test]
    fn one_sided_no_class_collapses() {
        // The failure mode this model exists to avoid: EM must not pin one
        // class's LF pool at the clamp while inflating the other.
        let classes = [1, 1, 1, 1, 0, 0, 0, 0];
        let (m, truth) = synth_one_sided(3000, &classes, 0.10, 0.015, 2, 7);
        let mut model = MetalModel::new();
        model.fit(&m, 2);
        let alphas = model.accuracies();
        let pos_mean: f64 = alphas[..4].iter().sum::<f64>() / 4.0;
        let neg_mean: f64 = alphas[4..].iter().sum::<f64>() / 4.0;
        assert!(
            (pos_mean - neg_mean).abs() < 0.2,
            "asymmetric collapse: pos {pos_mean} neg {neg_mean}"
        );
        let acc = hard_acc(&model.predict_proba(&m), &truth);
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn beats_majority_vote_with_unequal_lfs() {
        let accs = [0.95, 0.58, 0.58, 0.58];
        let (m, truth) = synth(4000, &accs, 0.9, 2, 3);
        let mut metal = MetalModel::new();
        metal.fit(&m, 2);
        let metal_acc = hard_acc(&metal.predict_proba(&m), &truth);
        let mut mv = crate::MajorityVote::new();
        crate::LabelModel::fit(&mut mv, &m, 2);
        let mv_acc = hard_acc(&mv.predict_proba(&m), &truth);
        assert!(
            metal_acc > mv_acc + 0.01,
            "metal {metal_acc} vs mv {mv_acc}"
        );
    }

    #[test]
    fn multiclass_posteriors_are_valid() {
        let accs = [0.8, 0.7, 0.6];
        let (m, truth) = synth(2000, &accs, 0.5, 4, 5);
        let mut model = MetalModel::new();
        model.fit(&m, 4);
        let p = model.predict_proba(&m);
        assert_eq!(p.n_classes(), 4);
        let acc = hard_acc(&p, &truth);
        assert!(acc > 0.7, "aggregated accuracy {acc}");
    }

    #[test]
    fn uncovered_rows_flagged() {
        let m = LabelMatrix::from_columns(&[vec![0, ABSTAIN], vec![1, ABSTAIN]], 2);
        let mut model = MetalModel::new();
        model.fit(&m, 2);
        let p = model.predict_proba(&m);
        assert!(p.is_covered(0));
        assert!(!p.is_covered(1));
    }

    #[test]
    fn fixed_class_balance_is_kept() {
        let accs = [0.8, 0.8];
        let (m, _) = synth(500, &accs, 0.5, 2, 9);
        let mut model = MetalModel::new().with_class_balance(vec![0.9, 0.1]);
        model.fit(&m, 2);
        assert_eq!(model.prior(), &[0.9, 0.1]);
    }

    #[test]
    fn parallel_fit_is_bit_identical_at_every_thread_count() {
        let accs = [0.9, 0.75, 0.6];
        let (m, _) = synth(1500, &accs, 0.5, 3, 13);
        let mut serial = MetalModel::new();
        serial.fit(&m, 3);
        let want = serial.predict_proba(&m);
        for threads in [1, 2, 8] {
            let mut model = MetalModel::new().with_pool(Pool::new(threads));
            model.fit(&m, 3);
            assert_eq!(model.theta, serial.theta, "theta, threads={threads}");
            assert_eq!(
                model.accuracies(),
                serial.accuracies(),
                "alpha, threads={threads}"
            );
            let got = model.predict_proba(&m);
            for i in 0..m.rows() {
                assert_eq!(got.row(i), want.row(i), "row {i}, threads={threads}");
                assert_eq!(got.is_covered(i), want.is_covered(i));
            }
        }
    }

    #[test]
    fn empty_matrix_is_harmless() {
        let m = LabelMatrix::empty(10, 0);
        let mut model = MetalModel::new();
        model.fit(&m, 2);
        let p = model.predict_proba(&m);
        assert_eq!(p.rows(), 10);
        assert!(p.covered_indices().is_empty());
    }
}
