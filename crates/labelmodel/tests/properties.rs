//! Property-based tests for the label-model substrate.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt_labelmodel::{
    LabelMatrix, LabelModel, MajorityVote, MetalModel, RowMajorMatrix, TripletModel, ABSTAIN,
};
use proptest::prelude::*;

/// Strategy: a small random label matrix with votes in {-1, 0, 1} for a
/// binary task.
fn matrix_strategy(
    max_rows: usize,
    max_cols: usize,
) -> impl Strategy<Value = (LabelMatrix, usize)> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(-1i32..2, rows * cols)
            .prop_map(move |data| (LabelMatrix::new(data, rows, cols), 2usize))
    })
}

proptest! {
    /// Coverage statistics stay in [0, 1] and total ≥ mean per-LF coverage.
    #[test]
    fn coverage_bounds((m, _) in matrix_strategy(20, 6)) {
        let total = m.total_coverage();
        let mean = m.mean_lf_coverage();
        prop_assert!((0.0..=1.0).contains(&total));
        prop_assert!((0.0..=1.0).contains(&mean));
        prop_assert!(total >= mean - 1e-12);
    }

    /// Majority vote produces valid distributions; covered rows match the
    /// abstain structure.
    #[test]
    fn majority_vote_simplex((m, c) in matrix_strategy(20, 6)) {
        let mut mv = MajorityVote::new();
        mv.fit(&m, c);
        let p = mv.predict_proba(&m);
        prop_assert_eq!(p.rows(), m.rows());
        for i in 0..p.rows() {
            let row = p.row(i);
            let sum: f64 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(row.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
            let any_active = m.row_vec(i).iter().any(|&v| v != ABSTAIN);
            prop_assert_eq!(p.is_covered(i), any_active);
        }
    }

    /// The MeTaL-style model never emits an invalid posterior, for any
    /// vote pattern.
    #[test]
    fn metal_simplex((m, c) in matrix_strategy(16, 5)) {
        let mut lm = MetalModel::new().with_max_iter(10);
        lm.fit(&m, c);
        let p = lm.predict_proba(&m);
        for i in 0..p.rows() {
            let sum: f64 = p.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6);
            prop_assert!(p.row(i).iter().all(|&x| x.is_finite() && x >= -1e-12));
        }
        // Accuracy estimates are probabilities.
        prop_assert!(lm.accuracies().iter().all(|a| (0.0..=1.0).contains(a)));
        let prior_sum: f64 = lm.prior().iter().sum();
        prop_assert!((prior_sum - 1.0).abs() < 1e-6);
    }

    /// Triplet model is total on arbitrary binary matrices.
    #[test]
    fn triplet_total((m, c) in matrix_strategy(16, 5)) {
        let mut t = TripletModel::new();
        t.fit(&m, c);
        let p = t.predict_proba(&m);
        for i in 0..p.rows() {
            let sum: f64 = p.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    /// Column selection preserves votes and shape.
    #[test]
    fn select_columns_preserves((m, _) in matrix_strategy(10, 6), keep_mask in proptest::collection::vec(any::<bool>(), 6)) {
        let keep: Vec<usize> = (0..m.cols()).filter(|&j| *keep_mask.get(j).unwrap_or(&false)).collect();
        let s = m.select_columns(&keep);
        prop_assert_eq!(s.cols(), keep.len());
        prop_assert_eq!(s.rows(), m.rows());
        for i in 0..m.rows() {
            for (new_j, &old_j) in keep.iter().enumerate() {
                prop_assert_eq!(s.get(i, new_j), m.get(i, old_j));
            }
        }
    }

    /// The columnar matrix agrees with the row-major reference oracle on
    /// every accessor and statistic, for arbitrary vote columns (including
    /// multiclass votes and all-abstain rows/columns).
    #[test]
    fn columnar_matches_row_major_reference(
        cols in proptest::collection::vec(
            proptest::collection::vec(-1i32..4, 1..=24),
            0..=6,
        ),
        label_seed in proptest::collection::vec(proptest::option::of(0usize..4), 24),
    ) {
        let rows = cols.first().map_or(5, Vec::len);
        let cols: Vec<Vec<i32>> = cols
            .into_iter()
            .map(|mut c| {
                c.resize(rows, ABSTAIN);
                c
            })
            .collect();
        let oracle = RowMajorMatrix::from_columns(&cols, rows);
        let m = LabelMatrix::from_columns(&cols, rows);
        prop_assert_eq!(m.rows(), oracle.rows());
        prop_assert_eq!(m.cols(), oracle.cols());
        let labels: Vec<Option<usize>> = label_seed.into_iter().take(rows).collect();
        let labels = {
            let mut l = labels;
            l.resize(rows, None);
            l
        };
        for i in 0..rows {
            prop_assert_eq!(m.row_vec(i), oracle.row(i).to_vec(), "row {}", i);
            for j in 0..m.cols() {
                prop_assert_eq!(m.get(i, j), oracle.get(i, j));
            }
        }
        for (j, col) in cols.iter().enumerate() {
            prop_assert_eq!(m.column(j), &col[..]);
            prop_assert_eq!(m.lf_coverage(j), oracle.lf_coverage(j));
            prop_assert_eq!(m.lf_accuracy(j, &labels), oracle.lf_accuracy(j, &labels));
        }
        prop_assert_eq!(m.total_coverage(), oracle.total_coverage());
        prop_assert_eq!(m.mean_lf_coverage(), oracle.mean_lf_coverage());
        prop_assert_eq!(m.conflict_rate(), oracle.conflict_rate());
        // Mutation round-trip: set the same cells in both layouts.
        let mut m2 = m.clone();
        let mut o2 = oracle.clone();
        if rows > 0 && m.cols() > 0 {
            m2.set(rows / 2, 0, 2);
            o2.set(rows / 2, 0, 2);
            prop_assert_eq!(m2.get(rows / 2, 0), o2.get(rows / 2, 0));
        }
        // And through the converter.
        let back = o2.to_columnar();
        for i in 0..rows {
            prop_assert_eq!(back.row_vec(i), m2.row_vec(i));
        }
    }

    /// Hard labels are always a valid class, and the argmax of the row.
    #[test]
    fn hard_labels_are_argmax((m, c) in matrix_strategy(12, 4)) {
        let mut mv = MajorityVote::new();
        mv.fit(&m, c);
        let p = mv.predict_proba(&m);
        let hard = p.hard_labels();
        for (i, &h) in hard.iter().enumerate() {
            prop_assert!(h < c);
            let row = p.row(i);
            prop_assert!(row.iter().all(|&v| v <= row[h] + 1e-12));
        }
    }
}
