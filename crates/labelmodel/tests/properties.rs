//! Property-based tests for the label-model substrate.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt_labelmodel::{
    LabelMatrix, LabelModel, MajorityVote, MetalModel, TripletModel, ABSTAIN,
};
use proptest::prelude::*;

/// Strategy: a small random label matrix with votes in {-1, 0, 1} for a
/// binary task.
fn matrix_strategy(
    max_rows: usize,
    max_cols: usize,
) -> impl Strategy<Value = (LabelMatrix, usize)> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(-1i32..2, rows * cols)
            .prop_map(move |data| (LabelMatrix::new(data, rows, cols), 2usize))
    })
}

proptest! {
    /// Coverage statistics stay in [0, 1] and total ≥ mean per-LF coverage.
    #[test]
    fn coverage_bounds((m, _) in matrix_strategy(20, 6)) {
        let total = m.total_coverage();
        let mean = m.mean_lf_coverage();
        prop_assert!((0.0..=1.0).contains(&total));
        prop_assert!((0.0..=1.0).contains(&mean));
        prop_assert!(total >= mean - 1e-12);
    }

    /// Majority vote produces valid distributions; covered rows match the
    /// abstain structure.
    #[test]
    fn majority_vote_simplex((m, c) in matrix_strategy(20, 6)) {
        let mut mv = MajorityVote::new();
        mv.fit(&m, c);
        let p = mv.predict_proba(&m);
        prop_assert_eq!(p.rows(), m.rows());
        for i in 0..p.rows() {
            let row = p.row(i);
            let sum: f64 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(row.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
            let any_active = m.row(i).iter().any(|&v| v != ABSTAIN);
            prop_assert_eq!(p.is_covered(i), any_active);
        }
    }

    /// The MeTaL-style model never emits an invalid posterior, for any
    /// vote pattern.
    #[test]
    fn metal_simplex((m, c) in matrix_strategy(16, 5)) {
        let mut lm = MetalModel::new().with_max_iter(10);
        lm.fit(&m, c);
        let p = lm.predict_proba(&m);
        for i in 0..p.rows() {
            let sum: f64 = p.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6);
            prop_assert!(p.row(i).iter().all(|&x| x.is_finite() && x >= -1e-12));
        }
        // Accuracy estimates are probabilities.
        prop_assert!(lm.accuracies().iter().all(|a| (0.0..=1.0).contains(a)));
        let prior_sum: f64 = lm.prior().iter().sum();
        prop_assert!((prior_sum - 1.0).abs() < 1e-6);
    }

    /// Triplet model is total on arbitrary binary matrices.
    #[test]
    fn triplet_total((m, c) in matrix_strategy(16, 5)) {
        let mut t = TripletModel::new();
        t.fit(&m, c);
        let p = t.predict_proba(&m);
        for i in 0..p.rows() {
            let sum: f64 = p.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    /// Column selection preserves votes and shape.
    #[test]
    fn select_columns_preserves((m, _) in matrix_strategy(10, 6), keep_mask in proptest::collection::vec(any::<bool>(), 6)) {
        let keep: Vec<usize> = (0..m.cols()).filter(|&j| *keep_mask.get(j).unwrap_or(&false)).collect();
        let s = m.select_columns(&keep);
        prop_assert_eq!(s.cols(), keep.len());
        prop_assert_eq!(s.rows(), m.rows());
        for i in 0..m.rows() {
            for (new_j, &old_j) in keep.iter().enumerate() {
                prop_assert_eq!(s.get(i, new_j), m.get(i, old_j));
            }
        }
    }

    /// Hard labels are always a valid class, and the argmax of the row.
    #[test]
    fn hard_labels_are_argmax((m, c) in matrix_strategy(12, 4)) {
        let mut mv = MajorityVote::new();
        mv.fit(&m, c);
        let p = mv.predict_proba(&m);
        let hard = p.hard_labels();
        for (i, &h) in hard.iter().enumerate() {
            prop_assert!(h < c);
            let row = p.row(i);
            prop_assert!(row.iter().all(|&v| v <= row[h] + 1e-12));
        }
    }
}
