//! Property-based tests for the text substrate.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt_text::features::l2_normalize;
use datasculpt_text::ngram::{contains_ngram, extract_ngrams, ngram_order};
use datasculpt_text::rng::{derive_seed, hash_str, Categorical, Gaussian, Zipf};
use datasculpt_text::{normalize, tokenize, tokenize_keep_markers, HashedTfIdf, Vocabulary};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Tokenize never panics and produces lowercase alphanumeric tokens.
    #[test]
    fn tokenize_total_and_lowercase(s in "\\PC{0,200}") {
        for t in tokenize(&s) {
            prop_assert!(!t.is_empty());
            prop_assert!(t.chars().all(|c| c.is_alphanumeric() || c == '\''));
            prop_assert_eq!(t.to_lowercase(), t.clone());
        }
        let _ = tokenize_keep_markers(&s);
        let _ = normalize(&s);
    }

    /// Tokenization is idempotent through a space join.
    #[test]
    fn tokenize_roundtrip(s in "[a-z][a-z ]{0,80}") {
        let once = tokenize(&s);
        let again = tokenize(&once.join(" "));
        prop_assert_eq!(once, again);
    }

    /// Every extracted n-gram is contained in its source and has a valid
    /// order; the count matches the closed form.
    #[test]
    fn ngram_extraction_invariants(tokens in proptest::collection::vec("[a-z]{1,6}", 0..30)) {
        let grams = extract_ngrams(&tokens, 3);
        let expected: usize = (1..=3).map(|k| tokens.len().saturating_sub(k - 1)).sum();
        prop_assert_eq!(grams.len(), expected);
        for g in &grams {
            prop_assert!((1..=3).contains(&ngram_order(g)));
            prop_assert!(contains_ngram(&tokens, g), "{} not contained", g);
        }
    }

    /// Containment is consistent with a brute-force window scan.
    #[test]
    fn containment_matches_bruteforce(
        tokens in proptest::collection::vec("[ab]{1,2}", 0..12),
        probe in proptest::collection::vec("[ab]{1,2}", 1..4),
    ) {
        let gram = probe.join(" ");
        let brute = (0..tokens.len().saturating_sub(probe.len() - 1))
            .any(|i| (0..probe.len()).all(|j| tokens[i + j] == probe[j]));
        prop_assert_eq!(contains_ngram(&tokens, &gram), brute);
    }

    /// Vocabulary ids are dense, stable, and df ≤ docs.
    #[test]
    fn vocab_invariants(docs in proptest::collection::vec(
        proptest::collection::vec("[a-f]{1,3}", 0..10), 0..10)) {
        let doc_refs: Vec<&[String]> = docs.iter().map(Vec::as_slice).collect();
        let v = Vocabulary::from_documents(doc_refs.iter().copied());
        prop_assert_eq!(v.num_docs(), docs.len());
        for (token, id, df) in v.iter() {
            prop_assert_eq!(v.id(token), Some(id));
            prop_assert_eq!(v.token(id), Some(token));
            prop_assert!(df >= 1 && df <= docs.len());
        }
    }

    /// TF-IDF sparse and dense transforms agree; vectors are unit norm or
    /// zero.
    #[test]
    fn tfidf_sparse_dense_agree(docs in proptest::collection::vec(
        proptest::collection::vec("[a-e]{1,3}", 1..12), 1..8)) {
        let mut f = HashedTfIdf::new(64, 2);
        f.fit(docs.iter().map(Vec::as_slice));
        for d in &docs {
            let dense = f.transform(d);
            let sparse = f.transform_sparse(d);
            let mut rebuilt = vec![0.0f32; 64];
            for (b, w) in &sparse {
                prop_assert!(*b < 64);
                rebuilt[*b] = *w;
            }
            prop_assert_eq!(dense.clone(), rebuilt);
            let norm: f32 = dense.iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-4);
        }
    }

    /// l2_normalize leaves a unit (or zero) vector.
    #[test]
    fn l2_normalize_unit(v in proptest::collection::vec(-100.0f32..100.0, 0..32)) {
        let mut v = v;
        l2_normalize(&mut v);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-3);
    }

    /// Distributions sample within range for any seed.
    #[test]
    fn distributions_in_range(seed in any::<u64>(), n in 1usize..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let z = Zipf::new(n, 1.1);
        prop_assert!(z.sample(&mut rng) < n);
        let weights: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
        let c = Categorical::new(&weights);
        prop_assert!(c.sample(&mut rng) < n);
        let g = Gaussian::new(0.0, 1.0);
        prop_assert!(g.sample(&mut rng).is_finite());
    }

    /// Seed derivation and hashing are deterministic.
    #[test]
    fn seeding_deterministic(seed in any::<u64>(), stream in any::<u64>(), s in "\\PC{0,40}") {
        prop_assert_eq!(derive_seed(seed, stream), derive_seed(seed, stream));
        prop_assert_eq!(hash_str(&s), hash_str(&s));
    }
}
