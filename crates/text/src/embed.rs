//! Dense embeddings via seeded random projection.
//!
//! KATE in-context example selection (§3.3 of the paper) needs a feature
//! space in which cosine similarity reflects topical similarity. Hashed
//! TF-IDF vectors already have that property; the random projection here
//! compresses them to a small dense dimension (the paper uses BERT CLS
//! embeddings) so nearest-neighbour search over large validation sets stays
//! cheap.

use crate::features::{l2_normalize, FeatureMatrix, HashedTfIdf};
use crate::rng::derive_seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cosine similarity between two equal-length vectors (0 for zero vectors).
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Indices of the `k` rows of `matrix` most cosine-similar to `query`,
/// in decreasing similarity order. Ties break toward lower row index.
pub fn top_k_similar(matrix: &FeatureMatrix, query: &[f32], k: usize) -> Vec<usize> {
    let mut scored: Vec<(usize, f32)> = (0..matrix.rows())
        .map(|i| (i, cosine_similarity(matrix.row(i), query)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.into_iter().take(k).map(|(i, _)| i).collect()
}

/// A text embedder: featurize then project.
pub trait Embedder {
    /// Embedding dimensionality.
    fn dim(&self) -> usize;
    /// Embed one tokenized document.
    fn embed(&self, tokens: &[String]) -> Vec<f32>;
    /// Embed a batch.
    fn embed_batch<'a, I>(&self, docs: I) -> FeatureMatrix
    where
        I: IntoIterator<Item = &'a [String]>,
    {
        let mut data = Vec::new();
        let mut rows = 0;
        for d in docs {
            data.extend_from_slice(&self.embed(d));
            rows += 1;
        }
        let dim = self.dim();
        FeatureMatrix::try_new(data, rows, dim).unwrap_or_else(|_| FeatureMatrix::zeros(rows, dim))
    }
}

/// Seeded Gaussian random projection from a hashed TF-IDF space to a dense
/// `out_dim`-dimensional space, followed by L2 normalization.
///
/// By the Johnson–Lindenstrauss lemma, pairwise similarities in the TF-IDF
/// space are approximately preserved, so KATE's nearest-neighbour choices
/// match what it would pick in the raw space.
#[derive(Debug, Clone)]
pub struct RandomProjection {
    tfidf: HashedTfIdf,
    /// `in_dim × out_dim` projection, row-major by *input bucket*, so a
    /// sparse input accumulates whole rows (cost ∝ document length).
    proj: Vec<f32>,
    out_dim: usize,
}

impl RandomProjection {
    /// Build a projection on top of a fit [`HashedTfIdf`] featurizer.
    pub fn new(tfidf: HashedTfIdf, out_dim: usize, seed: u64) -> Self {
        assert!(out_dim > 0, "zero output dim");
        let in_dim = tfidf.dim();
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0x70726f6a)); // "proj"
        let scale = 1.0 / (out_dim as f32).sqrt();
        let proj: Vec<f32> = (0..out_dim * in_dim)
            .map(|_| {
                // Sparse JL-style ±1/0 projection: 2/3 zeros, ±1 otherwise.
                match rng.gen_range(0..6u8) {
                    0 => scale * 1.732_050_8, // sqrt(3)
                    1 => -scale * 1.732_050_8,
                    _ => 0.0,
                }
            })
            .collect();
        Self {
            tfidf,
            proj,
            out_dim,
        }
    }
}

impl Embedder for RandomProjection {
    fn dim(&self) -> usize {
        self.out_dim
    }

    fn embed(&self, tokens: &[String]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.out_dim];
        for (bucket, w) in self.tfidf.transform_sparse(tokens) {
            let row = self
                .proj
                .get(bucket * self.out_dim..(bucket + 1) * self.out_dim)
                .unwrap_or(&[]);
            for (o, p) in out.iter_mut().zip(row) {
                *o += w * p;
            }
        }
        l2_normalize(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn make_embedder() -> RandomProjection {
        let docs = [
            toks("great funny heartwarming movie loved"),
            toks("horrible boring waste terrible awful"),
            toks("subscribe channel free click now"),
        ];
        let mut f = HashedTfIdf::new(512, 1);
        f.fit(docs.iter().map(Vec::as_slice));
        RandomProjection::new(f, 96, 42)
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn cosine_dim_mismatch_panics() {
        let _ = cosine_similarity(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn embedding_is_unit_norm_and_deterministic() {
        let e = make_embedder();
        let d = toks("funny heartwarming movie");
        let v1 = e.embed(&d);
        let v2 = e.embed(&d);
        assert_eq!(v1, v2);
        let norm: f32 = v1.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn similar_texts_closer_than_dissimilar() {
        let e = make_embedder();
        let pos1 = e.embed(&toks("great funny movie loved it"));
        let pos2 = e.embed(&toks("funny heartwarming great loved"));
        let neg = e.embed(&toks("horrible boring terrible waste"));
        let sim_pp = cosine_similarity(&pos1, &pos2);
        let sim_pn = cosine_similarity(&pos1, &neg);
        assert!(
            sim_pp > sim_pn,
            "expected topical neighbours closer: {sim_pp} vs {sim_pn}"
        );
    }

    #[test]
    fn top_k_orders_by_similarity() {
        let m = FeatureMatrix::new(
            vec![
                1.0, 0.0, //
                0.0, 1.0, //
                0.9, 0.1,
            ],
            3,
            2,
        );
        let got = top_k_similar(&m, &[1.0, 0.0], 2);
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn top_k_larger_than_rows() {
        let m = FeatureMatrix::new(vec![1.0, 0.0], 1, 2);
        assert_eq!(top_k_similar(&m, &[1.0, 0.0], 5), vec![0]);
    }

    #[test]
    fn batch_embed_matches_single() {
        let e = make_embedder();
        let docs = [toks("great movie"), toks("subscribe now")];
        let m = e.embed_batch(docs.iter().map(Vec::as_slice));
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), e.embed(&docs[0]).as_slice());
        assert_eq!(m.row(1), e.embed(&docs[1]).as_slice());
    }
}
