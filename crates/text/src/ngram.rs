//! N-gram extraction and containment checks.
//!
//! DataSculpt's label-function space is keyword n-grams (unigrams, bigrams,
//! trigrams — §3.1 of the paper). An [`Ngram`] is stored as its tokens joined
//! by single spaces, which is also the canonical form LF keywords are parsed
//! into.

/// A space-joined n-gram of lowercase tokens, e.g. `"wake me up"`.
pub type Ngram = String;

/// Maximum n-gram order accepted by the validity filter (§3.5).
pub const MAX_NGRAM_ORDER: usize = 3;

/// Extract all n-grams of orders `1..=max_order` from a token sequence.
///
/// N-grams are returned in document order, unigrams first at each position.
/// Duplicates are preserved (callers that want counts or sets can aggregate).
pub fn extract_ngrams(tokens: &[String], max_order: usize) -> Vec<Ngram> {
    let mut out = Vec::with_capacity(tokens.len() * max_order);
    for_each_ngram(tokens, max_order, |g| out.push(g.to_string()));
    out
}

/// Visit every n-gram of orders `1..=max_order` without allocating one
/// `String` per gram: each gram is built in a single scratch buffer and
/// handed to `f` as a borrowed `&str`.
///
/// Visit order is identical to [`extract_ngrams`] (document order,
/// unigrams first at each position) — this is the hot-path form the arena
/// interners and the hashed featurizer consume.
pub fn for_each_ngram<F: FnMut(&str)>(tokens: &[String], max_order: usize, mut f: F) {
    let mut gram = String::new();
    for i in 0..tokens.len() {
        gram.clear();
        for (n, tok) in tokens.iter().skip(i).take(max_order).enumerate() {
            if n > 0 {
                gram.push(' ');
            }
            gram.push_str(tok);
            f(&gram);
        }
    }
}

/// The order (word count) of an n-gram in canonical space-joined form.
pub fn ngram_order(ngram: &str) -> usize {
    if ngram.is_empty() {
        0
    } else {
        ngram.split(' ').count()
    }
}

/// Check whether `tokens` contains `ngram` as a contiguous subsequence.
///
/// This is the activation test of a keyword LF: token-level containment, not
/// substring matching, so the keyword `"art"` does not fire on `"artist"`.
pub fn contains_ngram(tokens: &[String], ngram: &str) -> bool {
    let parts: Vec<&str> = ngram.split(' ').collect();
    if parts.is_empty() || parts.len() > tokens.len() {
        return false;
    }
    tokens
        .windows(parts.len())
        .any(|w| w.iter().zip(&parts).all(|(t, p)| t == p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn extracts_all_orders() {
        let t = toks("a b c");
        let grams = extract_ngrams(&t, 3);
        assert_eq!(grams, vec!["a", "a b", "a b c", "b", "b c", "c"]);
    }

    #[test]
    fn extract_respects_max_order() {
        let t = toks("a b c d");
        let grams = extract_ngrams(&t, 1);
        assert_eq!(grams, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn extract_from_empty() {
        assert!(extract_ngrams(&[], 3).is_empty());
    }

    #[test]
    fn order_counts_words() {
        assert_eq!(ngram_order("wake"), 1);
        assert_eq!(ngram_order("wake me"), 2);
        assert_eq!(ngram_order("wake me up"), 3);
        assert_eq!(ngram_order(""), 0);
    }

    #[test]
    fn containment_is_token_level() {
        let t = toks("the artist painted art today");
        assert!(contains_ngram(&t, "art"));
        assert!(contains_ngram(&t, "artist painted"));
        assert!(contains_ngram(&t, "the artist painted"));
        assert!(!contains_ngram(&t, "painted today"));
        assert!(!contains_ngram(&t, "arti"));
    }

    #[test]
    fn containment_edge_cases() {
        let t = toks("a");
        assert!(contains_ngram(&t, "a"));
        assert!(!contains_ngram(&t, "a b"));
        assert!(!contains_ngram(&[], "a"));
    }

    #[test]
    fn for_each_matches_extract() {
        let t = toks("w x y z v");
        for order in 1..=3 {
            let mut seen = Vec::new();
            for_each_ngram(&t, order, |g| seen.push(g.to_string()));
            assert_eq!(seen, extract_ngrams(&t, order));
        }
        let mut none = 0;
        for_each_ngram(&[], 3, |_| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn ngram_count_formula() {
        // For a doc of length L and max order n: sum_{k=1..n} max(0, L-k+1) grams.
        let t = toks("w x y z v");
        let grams = extract_ngrams(&t, 3);
        assert_eq!(grams.len(), 5 + 4 + 3);
    }
}
