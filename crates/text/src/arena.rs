//! Interned token arena: string → dense `u32` symbol.
//!
//! Every hot structure downstream of tokenization (n-gram index, TF-IDF
//! featurizer, vocabulary, LF keyword memos) used to carry its own
//! `String`-keyed map or per-structure `u64` hash sets. The arena replaces
//! them with one shared representation: each distinct string is stored
//! once in a contiguous byte buffer and addressed by a `u32` symbol
//! assigned in **first-seen order**, so a corpus interned in the same
//! order yields the same symbols on every run — symbols are safe to store,
//! compare, and sort without touching string data again.
//!
//! The lookup table is a hand-rolled open-addressing index keyed by the
//! FNV-1a hash of [`hash_str`] (collisions fall back to a byte compare
//! into the buffer), so the arena holds no `String`-keyed map anywhere —
//! the layout ds-lint's `string-keyed-map` rule enforces in the migrated
//! modules. The per-symbol hash is cached: callers that need the hash of
//! an interned string (the TF-IDF bucketing trick) read it back in O(1)
//! instead of re-hashing.

use crate::rng::hash_str;

/// Slot marker for an empty probe slot.
const EMPTY: u32 = u32::MAX;

/// A global interned vocabulary arena (string → `u32` symbol).
///
/// Symbols are dense, start at 0, and are assigned in first-seen order.
/// The arena is append-only: interned strings are never removed.
#[derive(Debug, Clone, Default)]
pub struct TokenArena {
    /// All interned text, concatenated.
    bytes: String,
    /// Per-symbol `(start, end)` byte range into `bytes`.
    spans: Vec<(u32, u32)>,
    /// Cached FNV-1a hash per symbol.
    hashes: Vec<u64>,
    /// Open-addressing probe table of symbols (`EMPTY` = free slot).
    /// Capacity is always a power of two.
    table: Vec<u32>,
}

impl TokenArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena sized for roughly `n` distinct strings.
    pub fn with_capacity(n: usize) -> Self {
        let mut arena = Self::default();
        arena.grow_table(n.next_power_of_two().max(16) * 2);
        arena.spans.reserve(n);
        arena.hashes.reserve(n);
        arena
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Intern a string, returning its symbol (allocating one if unseen).
    pub fn intern(&mut self, s: &str) -> u32 {
        let hash = hash_str(s);
        if let Some(sym) = self.probe(s, hash) {
            return sym;
        }
        self.insert_new(s, hash)
    }

    /// Look up the symbol of a string without interning.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.probe(s, hash_str(s))
    }

    /// The string of a symbol (`None` if out of range).
    pub fn get(&self, sym: u32) -> Option<&str> {
        self.spans
            .get(sym as usize)
            .and_then(|&(start, end)| self.bytes.get(start as usize..end as usize))
    }

    /// The string of a symbol, or `""` for an out-of-range symbol.
    pub fn resolve(&self, sym: u32) -> &str {
        self.get(sym).unwrap_or("")
    }

    /// The cached FNV-1a hash of a symbol's string, identical to
    /// [`hash_str`] of the original text (`None` if out of range).
    pub fn hash(&self, sym: u32) -> Option<u64> {
        self.hashes.get(sym as usize).copied()
    }

    /// Iterate `(symbol, string)` pairs in symbol (= first-seen) order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> + '_ {
        self.spans.iter().enumerate().map(|(sym, &(start, end))| {
            (
                sym as u32,
                self.bytes.get(start as usize..end as usize).unwrap_or(""),
            )
        })
    }

    /// Probe the table for `s` (with its precomputed hash).
    fn probe(&self, s: &str, hash: u64) -> Option<u32> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let sym = self.table.get(slot).copied().unwrap_or(EMPTY);
            if sym == EMPTY {
                return None;
            }
            if self.hashes.get(sym as usize) == Some(&hash) && self.resolve(sym) == s {
                return Some(sym);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Append a new string and index it. Caller guarantees it is absent.
    fn insert_new(&mut self, s: &str, hash: u64) -> u32 {
        // Keep the load factor below ~0.7.
        if (self.spans.len() + 1) * 10 >= self.table.len() * 7 {
            self.grow_table((self.table.len() * 2).max(16));
        }
        let start = self.bytes.len() as u32;
        self.bytes.push_str(s);
        let end = self.bytes.len() as u32;
        let sym = self.spans.len() as u32;
        self.spans.push((start, end));
        self.hashes.push(hash);
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        while self.table.get(slot).is_some_and(|&t| t != EMPTY) {
            slot = (slot + 1) & mask;
        }
        if let Some(t) = self.table.get_mut(slot) {
            *t = sym;
        }
        sym
    }

    /// Rebuild the probe table at a larger power-of-two capacity.
    fn grow_table(&mut self, capacity: usize) {
        let capacity = capacity.next_power_of_two();
        self.table.clear();
        self.table.resize(capacity, EMPTY);
        let mask = capacity - 1;
        for (sym, &hash) in self.hashes.iter().enumerate() {
            let mut slot = (hash as usize) & mask;
            while self.table.get(slot).is_some_and(|&t| t != EMPTY) {
                slot = (slot + 1) & mask;
            }
            if let Some(t) = self.table.get_mut(slot) {
                *t = sym as u32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut a = TokenArena::new();
        assert_eq!(a.intern("great"), 0);
        assert_eq!(a.intern("movie"), 1);
        assert_eq!(a.intern("great"), 0);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn symbols_follow_first_seen_order() {
        let mut a = TokenArena::new();
        for (i, w) in ["c", "a", "b", "a", "c"].iter().enumerate() {
            let sym = a.intern(w);
            match i {
                0 | 4 => assert_eq!(sym, 0),
                1 | 3 => assert_eq!(sym, 1),
                _ => assert_eq!(sym, 2),
            }
        }
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut a = TokenArena::new();
        a.intern("x");
        assert_eq!(a.lookup("x"), Some(0));
        assert_eq!(a.lookup("y"), None);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn resolve_round_trips() {
        let mut a = TokenArena::new();
        let words = ["wake me up", "great", "", "a b c"];
        let syms: Vec<u32> = words.iter().map(|w| a.intern(w)).collect();
        for (w, &s) in words.iter().zip(&syms) {
            assert_eq!(a.resolve(s), *w);
            assert_eq!(a.get(s), Some(*w));
        }
        assert_eq!(a.get(99), None);
        assert_eq!(a.resolve(99), "");
    }

    #[test]
    fn cached_hash_matches_hash_str() {
        let mut a = TokenArena::new();
        let s = a.intern("spam offer");
        assert_eq!(a.hash(s), Some(hash_str("spam offer")));
        assert_eq!(a.hash(42), None);
    }

    #[test]
    fn survives_growth() {
        let mut a = TokenArena::new();
        let syms: Vec<u32> = (0..5000).map(|i| a.intern(&format!("tok{i}"))).collect();
        for (i, &s) in syms.iter().enumerate() {
            assert_eq!(s, i as u32);
            assert_eq!(a.lookup(&format!("tok{i}")), Some(s));
        }
        assert_eq!(a.len(), 5000);
    }

    #[test]
    fn with_capacity_preallocates() {
        let mut a = TokenArena::with_capacity(100);
        for i in 0..100 {
            a.intern(&format!("w{i}"));
        }
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn iter_yields_in_symbol_order() {
        let mut a = TokenArena::new();
        a.intern("x");
        a.intern("y");
        let all: Vec<(u32, &str)> = a.iter().collect();
        assert_eq!(all, vec![(0, "x"), (1, "y")]);
    }

    #[test]
    fn deterministic_across_builds() {
        let build = || {
            let mut a = TokenArena::new();
            for w in ["the", "quick", "brown", "fox", "the", "lazy", "dog"] {
                a.intern(w);
            }
            a.iter()
                .map(|(s, w)| (s, w.to_string()))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
