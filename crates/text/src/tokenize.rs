//! Deterministic, lossy tokenization.
//!
//! The tokenizer lowercases, strips punctuation, and splits on whitespace.
//! Entity markers of the form `[A]` / `[B]` (used by relation-classification
//! datasets such as Spouse) survive tokenization as the special tokens `[a]`
//! and `[b]` when using [`tokenize_keep_markers`], so keyword label functions
//! can anchor on them.

/// Normalize a raw string: lowercase and collapse whitespace.
///
/// This is the canonical form used for keyword matching — both instance text
/// and LF keywords are normalized before comparison, so matching is
/// case-insensitive and whitespace-insensitive.
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_space = true;
    for ch in text.chars() {
        if ch.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
            last_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Tokenize text into lowercase word tokens, discarding punctuation.
///
/// Apostrophes inside words are kept (`don't` stays one token); every other
/// non-alphanumeric character is a separator. Numbers are kept as tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    tokenize_impl(text, false)
}

/// Like [`tokenize`], but `[A]`-style bracketed entity markers are preserved
/// as single tokens (lowercased, e.g. `[a]`).
pub fn tokenize_keep_markers(text: &str) -> Vec<String> {
    tokenize_impl(text, true)
}

fn tokenize_impl(text: &str, keep_markers: bool) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut chars = text.chars().peekable();
    while let Some(ch) = chars.next() {
        if keep_markers && ch == '[' {
            // Try to read a short bracketed marker like [A] or [PER1].
            let mut marker = String::from("[");
            let mut ok = false;
            let mut lookahead = chars.clone();
            while let Some(&c2) = lookahead.peek() {
                if c2 == ']' {
                    marker.push(']');
                    ok = true;
                    lookahead.next();
                    break;
                }
                if c2.is_alphanumeric() && marker.len() <= 8 {
                    for lc in c2.to_lowercase() {
                        marker.push(lc);
                    }
                    lookahead.next();
                } else {
                    break;
                }
            }
            if ok && marker.len() > 2 {
                flush(&mut cur, &mut tokens);
                tokens.push(marker);
                chars = lookahead;
                continue;
            }
        }
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if ch == '\''
            && !cur.is_empty()
            && matches!(chars.peek(), Some(c) if c.is_alphanumeric())
        {
            cur.push('\'');
        } else {
            flush(&mut cur, &mut tokens);
        }
    }
    flush(&mut cur, &mut tokens);
    tokens
}

#[inline]
fn flush(cur: &mut String, tokens: &mut Vec<String>) {
    if !cur.is_empty() {
        tokens.push(std::mem::take(cur));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_lowercases_and_collapses() {
        assert_eq!(normalize("  Hello   WORLD \n"), "hello world");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("a"), "a");
    }

    #[test]
    fn tokenize_basic() {
        assert_eq!(tokenize("Hello, world!"), vec!["hello", "world"]);
        assert_eq!(
            tokenize("The CGI was horrible... truly."),
            vec!["the", "cgi", "was", "horrible", "truly"]
        );
    }

    #[test]
    fn tokenize_keeps_apostrophes_inside_words() {
        assert_eq!(tokenize("don't stop"), vec!["don't", "stop"]);
        // Trailing apostrophe is punctuation, not part of the word.
        assert_eq!(tokenize("dogs' toys"), vec!["dogs", "toys"]);
    }

    #[test]
    fn tokenize_numbers_and_urls() {
        assert_eq!(
            tokenize("visit www.example.com for 50% off"),
            vec!["visit", "www", "example", "com", "for", "50", "off"]
        );
    }

    #[test]
    fn tokenize_empty_and_punct_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ... ---").is_empty());
    }

    #[test]
    fn markers_preserved_when_requested() {
        assert_eq!(
            tokenize_keep_markers("[A] married [B] yesterday"),
            vec!["[a]", "married", "[b]", "yesterday"]
        );
        // Without the marker flag, brackets are separators.
        assert_eq!(tokenize("[A] married [B]"), vec!["a", "married", "b"]);
    }

    #[test]
    fn marker_with_long_content_is_not_a_marker() {
        // More than 8 chars inside the brackets -> treated as plain text.
        let toks = tokenize_keep_markers("[notamarkeratall] hi");
        assert!(toks.contains(&"hi".to_string()));
        assert!(!toks.iter().any(|t| t.starts_with('[')));
    }

    #[test]
    fn unclosed_bracket_is_plain_text() {
        assert_eq!(tokenize_keep_markers("[A married"), vec!["a", "married"]);
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("Älter Straße"), vec!["älter", "straße"]);
    }
}
