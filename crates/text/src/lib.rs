//! Text-processing substrate for the DataSculpt reproduction.
//!
//! This crate provides the low-level text machinery every other crate builds
//! on: deterministic tokenization, n-gram extraction, vocabularies, hashed
//! TF-IDF features, random-projection embeddings (the BERT substitute used by
//! the end model and by KATE exemplar selection), and seedable random
//! distributions (Zipf, Gaussian, categorical) used by the synthetic corpus
//! generators.
//!
//! Everything here is deterministic under a fixed seed: the same seed always
//! produces the same tokens, features, and samples, which is what makes the
//! experiment harness reproducible.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod arena;
pub mod embed;
pub mod features;
pub mod ngram;
pub mod rng;
pub mod tokenize;
pub mod vocab;

pub use arena::TokenArena;
pub use embed::{cosine_similarity, Embedder, RandomProjection};
pub use features::{FeatureMatrix, HashedTfIdf, ShapeError};
pub use ngram::{contains_ngram, extract_ngrams, for_each_ngram, Ngram};
pub use rng::{Categorical, Gaussian, Zipf};
pub use tokenize::{normalize, tokenize, tokenize_keep_markers};
pub use vocab::Vocabulary;
