//! Vocabulary: a bidirectional token ↔ id map with document frequencies.

use crate::arena::TokenArena;

/// A growable token vocabulary with document-frequency statistics.
///
/// Ids are dense and assigned in first-seen order, so a vocabulary built from
/// the same corpus in the same order is identical across runs. Token storage
/// and lookup ride on the shared [`TokenArena`] (one contiguous buffer, no
/// per-token `String` allocations, no `String`-keyed map).
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    arena: TokenArena,
    doc_freq: Vec<usize>,
    num_docs: usize,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a vocabulary from an iterator of tokenized documents, recording
    /// document frequencies.
    pub fn from_documents<'a, I>(docs: I) -> Self
    where
        I: IntoIterator<Item = &'a [String]>,
    {
        let mut v = Self::new();
        for doc in docs {
            v.observe_document(doc);
        }
        v
    }

    /// Record one document: interns unseen tokens and bumps document
    /// frequency once per distinct token in the document.
    pub fn observe_document(&mut self, tokens: &[String]) {
        self.num_docs += 1;
        // Dedup within the document without a hash set: collect this
        // document's symbols, sort, and bump each distinct one once.
        let mut syms: Vec<usize> = tokens.iter().map(|t| self.intern(t)).collect();
        syms.sort_unstable();
        syms.dedup();
        for sym in syms {
            if let Some(df) = self.doc_freq.get_mut(sym) {
                *df += 1;
            }
        }
    }

    /// Intern a token, returning its id (allocating a new one if unseen).
    pub fn intern(&mut self, token: &str) -> usize {
        let sym = self.arena.intern(token) as usize;
        if sym == self.doc_freq.len() {
            self.doc_freq.push(0);
        }
        sym
    }

    /// Look up the id of a token without interning.
    pub fn id(&self, token: &str) -> Option<usize> {
        self.arena.lookup(token).map(|s| s as usize)
    }

    /// Look up a token by id.
    pub fn token(&self, id: usize) -> Option<&str> {
        self.arena.get(id as u32)
    }

    /// Document frequency of a token (0 if unseen).
    pub fn doc_freq(&self, token: &str) -> usize {
        self.id(token)
            .and_then(|id| self.doc_freq.get(id).copied())
            .unwrap_or(0)
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// True if no tokens are interned.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Number of documents observed.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Smoothed inverse document frequency: `ln((1 + N) / (1 + df)) + 1`.
    ///
    /// Unseen tokens get the maximum idf (as if `df = 0`), matching the
    /// convention of scikit-learn's `TfidfVectorizer(smooth_idf=True)`.
    pub fn idf(&self, token: &str) -> f64 {
        let df = self.doc_freq(token);
        (((1 + self.num_docs) as f64) / ((1 + df) as f64)).ln() + 1.0
    }

    /// Iterate `(token, id, doc_freq)` triples in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize, usize)> + '_ {
        self.arena.iter().map(move |(sym, t)| {
            let df = self.doc_freq.get(sym as usize).copied().unwrap_or(0);
            (t, sym as usize, df)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("hello");
        let b = v.intern("hello");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let d1 = toks("spam spam spam");
        let d2 = toks("ham spam");
        let v = Vocabulary::from_documents([d1.as_slice(), d2.as_slice()]);
        assert_eq!(v.doc_freq("spam"), 2);
        assert_eq!(v.doc_freq("ham"), 1);
        assert_eq!(v.doc_freq("egg"), 0);
        assert_eq!(v.num_docs(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let d1 = toks("a b c");
        let v = Vocabulary::from_documents([d1.as_slice()]);
        assert_eq!(v.id("a"), Some(0));
        assert_eq!(v.id("b"), Some(1));
        assert_eq!(v.id("c"), Some(2));
        assert_eq!(v.token(1), Some("b"));
        assert_eq!(v.token(9), None);
    }

    #[test]
    fn idf_orders_by_rarity() {
        let d1 = toks("common rare1");
        let d2 = toks("common");
        let d3 = toks("common");
        let v = Vocabulary::from_documents([d1.as_slice(), d2.as_slice(), d3.as_slice()]);
        assert!(v.idf("rare1") > v.idf("common"));
        assert!(v.idf("never-seen") > v.idf("rare1"));
    }

    #[test]
    fn empty_vocab() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.num_docs(), 0);
        assert_eq!(v.doc_freq("x"), 0);
    }

    #[test]
    fn iter_yields_all() {
        let d1 = toks("x y");
        let v = Vocabulary::from_documents([d1.as_slice()]);
        let all: Vec<_> = v.iter().collect();
        assert_eq!(all, vec![("x", 0, 1), ("y", 1, 1)]);
    }
}
