//! Hashed TF-IDF features.
//!
//! The paper extracts text features with BERT; this repository substitutes a
//! hashed TF-IDF bag-of-n-grams (fit on the training split, applied to all
//! splits), optionally followed by a random projection ([`crate::embed`]).
//! See DESIGN.md for why this preserves the behaviour the experiments need.

use crate::ngram::extract_ngrams;
use crate::rng::hash_str;

/// A dense row-major feature matrix (`rows × dim`).
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    data: Vec<f32>,
    rows: usize,
    dim: usize,
}

impl FeatureMatrix {
    /// Build from a flat buffer. `data.len()` must equal `rows * dim`.
    pub fn new(data: Vec<f32>, rows: usize, dim: usize) -> Self {
        assert_eq!(data.len(), rows * dim, "shape mismatch");
        Self { data, rows, dim }
    }

    /// An all-zero matrix.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        Self::new(vec![0.0; rows * dim], rows, dim)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow row `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutably borrow row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterate over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Gather a sub-matrix of the given row indices.
    pub fn gather(&self, indices: &[usize]) -> FeatureMatrix {
        let mut data = Vec::with_capacity(indices.len() * self.dim);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        FeatureMatrix::new(data, indices.len(), self.dim)
    }
}

/// Hashed TF-IDF featurizer over word n-grams.
///
/// Tokens (and n-grams up to `ngram_order`) are hashed into `dim` buckets
/// with a signed hash (the "hashing trick"), weighted by `tf * idf`, and the
/// resulting vector is L2-normalized. IDF statistics come from the corpus
/// the featurizer was [`fit`](HashedTfIdf::fit) on.
#[derive(Debug, Clone)]
pub struct HashedTfIdf {
    dim: usize,
    ngram_order: usize,
    /// Smoothed idf per hash bucket (aggregated document frequency).
    bucket_df: Vec<u32>,
    num_docs: usize,
    /// Buckets with fit-time document frequency below this are dropped at
    /// transform time (the standard `min_df` cutoff). Without it, one-off
    /// n-grams become maximal-IDF noise dimensions that models overfit.
    min_df: u32,
}

impl HashedTfIdf {
    /// Create an unfit featurizer. `dim` must be positive.
    pub fn new(dim: usize, ngram_order: usize) -> Self {
        assert!(dim > 0, "zero feature dim");
        assert!((1..=3).contains(&ngram_order), "ngram order must be 1..=3");
        Self {
            dim,
            ngram_order,
            bucket_df: vec![0; dim],
            num_docs: 0,
            min_df: 1,
        }
    }

    /// Set the minimum document frequency (default 1 = keep everything).
    pub fn with_min_df(mut self, min_df: u32) -> Self {
        assert!(min_df >= 1, "min_df must be at least 1");
        self.min_df = min_df;
        self
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Fit document frequencies on a corpus of tokenized documents.
    pub fn fit<'a, I>(&mut self, docs: I)
    where
        I: IntoIterator<Item = &'a [String]>,
    {
        for doc in docs {
            self.num_docs += 1;
            let grams = extract_ngrams(doc, self.ngram_order);
            // ds-lint: allow(hash-order): dedup membership test; never iterated
            let mut seen = std::collections::HashSet::with_capacity(grams.len());
            for g in &grams {
                let b = self.bucket(g);
                if seen.insert(b) {
                    self.bucket_df[b] += 1;
                }
            }
        }
    }

    /// Transform one tokenized document into an L2-normalized TF-IDF vector.
    pub fn transform(&self, tokens: &[String]) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        for (b, w) in self.transform_sparse(tokens) {
            v[b] = w;
        }
        v
    }

    /// Sparse transform: `(bucket, weight)` pairs of the L2-normalized
    /// TF-IDF vector, sorted by bucket. This is the fast path used by
    /// [`crate::embed::RandomProjection`] — cost is proportional to the
    /// document length, not the feature dimension.
    pub fn transform_sparse(&self, tokens: &[String]) -> Vec<(usize, f32)> {
        let grams = extract_ngrams(tokens, self.ngram_order);
        let mut entries: Vec<(usize, f32)> = Vec::with_capacity(grams.len());
        for g in &grams {
            let b = self.bucket(g);
            if self.bucket_df[b] < self.min_df {
                continue;
            }
            let sign = if hash_str(g) & 1 == 0 { 1.0 } else { -1.0 };
            let idf = (((1 + self.num_docs) as f64) / ((1 + self.bucket_df[b] as usize) as f64))
                .ln()
                + 1.0;
            entries.push((b, (sign * idf) as f32));
        }
        entries.sort_unstable_by_key(|e| e.0);
        // Merge duplicate buckets.
        let mut merged: Vec<(usize, f32)> = Vec::with_capacity(entries.len());
        for (b, w) in entries {
            match merged.last_mut() {
                Some((lb, lw)) if *lb == b => *lw += w,
                _ => merged.push((b, w)),
            }
        }
        let norm: f32 = merged.iter().map(|(_, w)| w * w).sum::<f32>().sqrt();
        if norm > 0.0 {
            for (_, w) in &mut merged {
                *w /= norm;
            }
        }
        merged
    }

    /// Transform a batch of documents into a [`FeatureMatrix`].
    pub fn transform_batch<'a, I>(&self, docs: I) -> FeatureMatrix
    where
        I: IntoIterator<Item = &'a [String]>,
    {
        let mut data = Vec::new();
        let mut rows = 0;
        for doc in docs {
            data.extend_from_slice(&self.transform(doc));
            rows += 1;
        }
        FeatureMatrix::new(data, rows, self.dim)
    }

    #[inline]
    fn bucket(&self, gram: &str) -> usize {
        (hash_str(gram) >> 1) as usize % self.dim
    }
}

/// L2-normalize a vector in place (no-op on the zero vector).
pub fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn transform_is_normalized() {
        let mut f = HashedTfIdf::new(64, 2);
        let d = toks("the quick brown fox");
        f.fit([d.as_slice()]);
        let v = f.transform(&d);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_doc_is_zero_vector() {
        let f = HashedTfIdf::new(16, 1);
        let v = f.transform(&[]);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identical_docs_identical_features() {
        let mut f = HashedTfIdf::new(32, 3);
        let d1 = toks("spam offer click now");
        let d2 = toks("spam offer click now");
        f.fit([d1.as_slice()]);
        assert_eq!(f.transform(&d1), f.transform(&d2));
    }

    #[test]
    fn different_docs_differ() {
        let mut f = HashedTfIdf::new(256, 1);
        let d1 = toks("great movie loved it");
        let d2 = toks("terrible boring waste");
        f.fit([d1.as_slice(), d2.as_slice()]);
        assert_ne!(f.transform(&d1), f.transform(&d2));
    }

    #[test]
    fn matrix_shape_and_rows() {
        let mut f = HashedTfIdf::new(8, 1);
        let docs = [toks("a b"), toks("c d"), toks("e")];
        f.fit(docs.iter().map(Vec::as_slice));
        let m = f.transform_batch(docs.iter().map(Vec::as_slice));
        assert_eq!(m.rows(), 3);
        assert_eq!(m.dim(), 8);
        assert_eq!(m.row(0).len(), 8);
    }

    #[test]
    fn gather_selects_rows() {
        let m = FeatureMatrix::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2);
        let g = m.gather(&[2, 0]);
        assert_eq!(g.rows(), 2);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_shape_panics() {
        let _ = FeatureMatrix::new(vec![0.0; 5], 2, 3);
    }

    #[test]
    fn l2_normalize_zero_vector_noop() {
        let mut v = vec![0.0f32; 4];
        l2_normalize(&mut v);
        assert!(v.iter().all(|&x| x == 0.0));
    }
}
