//! Hashed TF-IDF features.
//!
//! The paper extracts text features with BERT; this repository substitutes a
//! hashed TF-IDF bag-of-n-grams (fit on the training split, applied to all
//! splits), optionally followed by a random projection ([`crate::embed`]).
//! See DESIGN.md for why this preserves the behaviour the experiments need.

use crate::arena::TokenArena;
use crate::ngram::for_each_ngram;
use crate::rng::hash_str;

/// Shape or content error constructing a matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeError {
    /// Expected buffer length (`rows * dim`).
    pub expected: usize,
    /// Actual buffer length.
    pub got: usize,
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shape mismatch: expected {} entries, got {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for ShapeError {}

/// A dense row-major feature matrix (`rows × dim`).
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    data: Vec<f32>,
    rows: usize,
    dim: usize,
}

impl FeatureMatrix {
    /// Build from a flat buffer, validating `data.len() == rows * dim`.
    pub fn try_new(data: Vec<f32>, rows: usize, dim: usize) -> Result<Self, ShapeError> {
        if data.len() != rows * dim {
            return Err(ShapeError {
                expected: rows * dim,
                got: data.len(),
            });
        }
        Ok(Self { data, rows, dim })
    }

    /// Build from a flat buffer. `data.len()` must equal `rows * dim`.
    ///
    /// # Panics
    /// Panics on shape mismatch; test/bench convenience — library paths use
    /// [`try_new`](Self::try_new).
    pub fn new(data: Vec<f32>, rows: usize, dim: usize) -> Self {
        match Self::try_new(data, rows, dim) {
            Ok(m) => m,
            // ds-lint: allow(panic): documented test/bench constructor
            Err(e) => panic!("shape mismatch: {e}"),
        }
    }

    /// An all-zero matrix.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        Self {
            data: vec![0.0; rows * dim],
            rows,
            dim,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow row `i` (empty slice when out of range).
    pub fn row(&self, i: usize) -> &[f32] {
        self.data
            .get(i * self.dim..(i + 1) * self.dim)
            .unwrap_or(&[])
    }

    /// Mutably borrow row `i` (empty slice when out of range).
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        self.data
            .get_mut(i * self.dim..(i + 1) * self.dim)
            .unwrap_or_default()
    }

    /// Iterate over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Gather a sub-matrix of the given row indices.
    pub fn gather(&self, indices: &[usize]) -> FeatureMatrix {
        let mut data = Vec::with_capacity(indices.len() * self.dim);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        FeatureMatrix {
            data,
            rows: indices.len(),
            dim: self.dim,
        }
    }
}

/// Hashed TF-IDF featurizer over word n-grams.
///
/// Tokens (and n-grams up to `ngram_order`) are hashed into `dim` buckets
/// with a signed hash (the "hashing trick"), weighted by `tf * idf`, and the
/// resulting vector is L2-normalized. IDF statistics come from the corpus
/// the featurizer was [`fit`](HashedTfIdf::fit) on.
///
/// Fit-time grams are interned into a [`TokenArena`]; the bucket and sign
/// each gram hashes to are computed once per distinct gram and cached per
/// symbol, so transform-time work per gram is one arena lookup plus two
/// table reads. Grams unseen at fit time fall back to hashing on the fly —
/// the produced features are bit-identical either way.
#[derive(Debug, Clone)]
pub struct HashedTfIdf {
    dim: usize,
    ngram_order: usize,
    /// Interned fit-time grams.
    arena: TokenArena,
    /// Cached hash bucket per arena symbol.
    sym_bucket: Vec<u32>,
    /// Cached hash sign per arena symbol (+1.0 / −1.0).
    sym_sign: Vec<f32>,
    /// Aggregated document frequency per hash bucket.
    bucket_df: Vec<u32>,
    num_docs: usize,
    /// Buckets with fit-time document frequency below this are dropped at
    /// transform time (the standard `min_df` cutoff). Without it, one-off
    /// n-grams become maximal-IDF noise dimensions that models overfit.
    min_df: u32,
}

impl HashedTfIdf {
    /// Create an unfit featurizer. `dim` must be positive.
    pub fn new(dim: usize, ngram_order: usize) -> Self {
        assert!(dim > 0, "zero feature dim");
        assert!((1..=3).contains(&ngram_order), "ngram order must be 1..=3");
        Self {
            dim,
            ngram_order,
            arena: TokenArena::new(),
            sym_bucket: Vec::new(),
            sym_sign: Vec::new(),
            bucket_df: vec![0; dim],
            num_docs: 0,
            min_df: 1,
        }
    }

    /// Set the minimum document frequency (default 1 = keep everything).
    pub fn with_min_df(mut self, min_df: u32) -> Self {
        assert!(min_df >= 1, "min_df must be at least 1");
        self.min_df = min_df;
        self
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of distinct n-grams interned at fit time.
    pub fn vocab_size(&self) -> usize {
        self.arena.len()
    }

    /// Fit document frequencies on a corpus of tokenized documents.
    pub fn fit<'a, I>(&mut self, docs: I)
    where
        I: IntoIterator<Item = &'a [String]>,
    {
        let mut doc_buckets: Vec<u32> = Vec::new();
        for doc in docs {
            self.num_docs += 1;
            doc_buckets.clear();
            for_each_ngram(doc, self.ngram_order, |g| {
                let sym = self.arena.intern(g) as usize;
                if sym == self.sym_bucket.len() {
                    // First sighting of this gram: cache its bucket/sign.
                    let h = self.arena.hash(sym as u32).unwrap_or_else(|| hash_str(g));
                    self.sym_bucket.push(((h >> 1) as usize % self.dim) as u32);
                    self.sym_sign.push(if h & 1 == 0 { 1.0 } else { -1.0 });
                }
                if let Some(&b) = self.sym_bucket.get(sym) {
                    doc_buckets.push(b);
                }
            });
            // Bump each bucket once per document.
            doc_buckets.sort_unstable();
            doc_buckets.dedup();
            for &b in doc_buckets.iter() {
                if let Some(df) = self.bucket_df.get_mut(b as usize) {
                    *df += 1;
                }
            }
        }
    }

    /// Transform one tokenized document into an L2-normalized TF-IDF vector.
    pub fn transform(&self, tokens: &[String]) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        for (b, w) in self.transform_sparse(tokens) {
            if let Some(slot) = v.get_mut(b) {
                *slot = w;
            }
        }
        v
    }

    /// Sparse transform: `(bucket, weight)` pairs of the L2-normalized
    /// TF-IDF vector, sorted by bucket. This is the fast path used by
    /// [`crate::embed::RandomProjection`] — cost is proportional to the
    /// document length, not the feature dimension.
    pub fn transform_sparse(&self, tokens: &[String]) -> Vec<(usize, f32)> {
        let mut entries: Vec<(usize, f32)> = Vec::with_capacity(tokens.len() * self.ngram_order);
        for_each_ngram(tokens, self.ngram_order, |g| {
            // Fit-time grams hit the per-symbol cache; unseen grams hash on
            // the fly to the identical (bucket, sign).
            let (b, sign) = match self.arena.lookup(g) {
                Some(sym) => (
                    self.sym_bucket.get(sym as usize).copied().unwrap_or(0) as usize,
                    self.sym_sign.get(sym as usize).copied().unwrap_or(1.0),
                ),
                None => {
                    let h = hash_str(g);
                    (
                        (h >> 1) as usize % self.dim,
                        if h & 1 == 0 { 1.0 } else { -1.0 },
                    )
                }
            };
            let df = self.bucket_df.get(b).copied().unwrap_or(0);
            if df < self.min_df {
                return;
            }
            let idf = (((1 + self.num_docs) as f64) / ((1 + df as usize) as f64)).ln() + 1.0;
            entries.push((b, sign * idf as f32));
        });
        entries.sort_unstable_by_key(|e| e.0);
        // Merge duplicate buckets.
        let mut merged: Vec<(usize, f32)> = Vec::with_capacity(entries.len());
        for (b, w) in entries {
            match merged.last_mut() {
                Some((lb, lw)) if *lb == b => *lw += w,
                _ => merged.push((b, w)),
            }
        }
        let norm: f32 = merged.iter().map(|(_, w)| w * w).sum::<f32>().sqrt();
        if norm > 0.0 {
            for (_, w) in &mut merged {
                *w /= norm;
            }
        }
        merged
    }

    /// Transform a batch of documents into a [`FeatureMatrix`].
    pub fn transform_batch<'a, I>(&self, docs: I) -> FeatureMatrix
    where
        I: IntoIterator<Item = &'a [String]>,
    {
        let mut data = Vec::new();
        let mut rows = 0;
        for doc in docs {
            data.extend_from_slice(&self.transform(doc));
            rows += 1;
        }
        FeatureMatrix {
            data,
            rows,
            dim: self.dim,
        }
    }
}

/// L2-normalize a vector in place (no-op on the zero vector).
pub fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn transform_is_normalized() {
        let mut f = HashedTfIdf::new(64, 2);
        let d = toks("the quick brown fox");
        f.fit([d.as_slice()]);
        let v = f.transform(&d);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_doc_is_zero_vector() {
        let f = HashedTfIdf::new(16, 1);
        let v = f.transform(&[]);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identical_docs_identical_features() {
        let mut f = HashedTfIdf::new(32, 3);
        let d1 = toks("spam offer click now");
        let d2 = toks("spam offer click now");
        f.fit([d1.as_slice()]);
        assert_eq!(f.transform(&d1), f.transform(&d2));
    }

    #[test]
    fn unseen_grams_match_cached_path_bitwise() {
        // A featurizer fit on d1 sees d2's grams as out-of-arena; a
        // featurizer fit on both caches them. Same bucket_df is required
        // for identical weights, so compare bucket/sign routing only: the
        // uncached fallback must bucket each gram exactly like the cache.
        let d1 = toks("alpha beta gamma");
        let d2 = toks("delta epsilon");
        let mut f = HashedTfIdf::new(128, 2);
        f.fit([d1.as_slice()]);
        let mut g = HashedTfIdf::new(128, 2);
        g.fit([d1.as_slice()]);
        g.arena.intern("unrelated"); // arena contents don't affect routing
        assert_eq!(f.transform_sparse(&d2), g.transform_sparse(&d2));
    }

    #[test]
    fn vocab_size_counts_distinct_grams() {
        let mut f = HashedTfIdf::new(64, 1);
        let d = toks("a b a");
        f.fit([d.as_slice()]);
        assert_eq!(f.vocab_size(), 2);
    }

    #[test]
    fn different_docs_differ() {
        let mut f = HashedTfIdf::new(256, 1);
        let d1 = toks("great movie loved it");
        let d2 = toks("terrible boring waste");
        f.fit([d1.as_slice(), d2.as_slice()]);
        assert_ne!(f.transform(&d1), f.transform(&d2));
    }

    #[test]
    fn matrix_shape_and_rows() {
        let mut f = HashedTfIdf::new(8, 1);
        let docs = [toks("a b"), toks("c d"), toks("e")];
        f.fit(docs.iter().map(Vec::as_slice));
        let m = f.transform_batch(docs.iter().map(Vec::as_slice));
        assert_eq!(m.rows(), 3);
        assert_eq!(m.dim(), 8);
        assert_eq!(m.row(0).len(), 8);
    }

    #[test]
    fn gather_selects_rows() {
        let m = FeatureMatrix::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2);
        let g = m.gather(&[2, 0]);
        assert_eq!(g.rows(), 2);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_shape_panics() {
        let _ = FeatureMatrix::new(vec![0.0; 5], 2, 3);
    }

    #[test]
    fn try_new_reports_shape() {
        let err = FeatureMatrix::try_new(vec![0.0; 5], 2, 3).unwrap_err();
        assert_eq!((err.expected, err.got), (6, 5));
        assert!(FeatureMatrix::try_new(vec![0.0; 6], 2, 3).is_ok());
    }

    #[test]
    fn l2_normalize_zero_vector_noop() {
        let mut v = vec![0.0f32; 4];
        l2_normalize(&mut v);
        assert!(v.iter().all(|&x| x == 0.0));
    }
}
