//! Seedable random distributions used by the synthetic-corpus generators and
//! the simulated LLM.
//!
//! Only `rand` (no `rand_distr`) is a dependency, so Zipf and Gaussian
//! sampling are implemented here: Zipf by inverse-CDF over a precomputed
//! table, Gaussian by the Box–Muller transform.

use rand::Rng;

/// Zipf-distributed sampler over ranks `0..n` (rank 0 is most frequent).
///
/// `P(rank = k) ∝ 1 / (k + 1)^s`. Natural-language word frequencies are
/// approximately Zipfian with `s ≈ 1`, which is what the background
/// vocabulary of each synthetic corpus uses.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        assert!(s.is_finite(), "non-finite Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point drift at the tail.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the distribution has exactly one rank.
    pub fn is_empty(&self) -> bool {
        false // constructor forbids n == 0
    }

    /// Sample a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Gaussian sampler via the Box–Muller transform.
#[derive(Debug, Clone, Copy)]
pub struct Gaussian {
    mean: f64,
    std: f64,
}

impl Gaussian {
    /// A normal distribution with the given mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `std` is negative or not finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std >= 0.0 && std.is_finite(), "invalid std {std}");
        Self { mean, std }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.std == 0.0 {
            return self.mean;
        }
        // Box–Muller: u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std * z
    }
}

/// Categorical distribution over arbitrary (unnormalized) non-negative weights.
#[derive(Debug, Clone)]
pub struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    /// Build from unnormalized weights.
    ///
    /// # Panics
    /// Panics if weights are empty, contain a negative/NaN entry, or all sum
    /// to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty categorical");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "invalid weight {w}");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "all-zero categorical weights");
        for v in &mut cdf {
            *v /= acc;
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there are no categories (never true; constructor forbids it).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sample a category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Derive a child seed from a base seed and a stream identifier.
///
/// Uses the SplitMix64 finalizer so nearby `(seed, stream)` pairs produce
/// uncorrelated child seeds. All per-instance / per-request randomness in the
/// simulators is keyed this way, making runs independent of iteration order.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stable 64-bit FNV-1a hash of a string, used to key per-text randomness.
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_rank_zero_most_frequent() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[50]);
        // Rough Zipf check: rank 0 should be ~2x rank 1.
        let ratio = counts[0] as f64 / counts[1].max(1) as f64;
        assert!(ratio > 1.4 && ratio < 2.8, "ratio {ratio}");
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "Zipf over zero ranks")]
    fn zipf_zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn gaussian_moments() {
        let g = Gaussian::new(3.0, 2.0);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn gaussian_zero_std_is_constant() {
        let g = Gaussian::new(5.0, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(g.sample(&mut rng), 5.0);
    }

    #[test]
    fn categorical_respects_weights() {
        let c = Categorical::new(&[1.0, 0.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[c.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!(ratio > 2.5 && ratio < 3.6, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn categorical_all_zero_panics() {
        let _ = Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn derive_seed_differs_by_stream() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(a, derive_seed(42, 0));
    }

    #[test]
    fn hash_str_stable_and_distinct() {
        assert_eq!(hash_str("abc"), hash_str("abc"));
        assert_ne!(hash_str("abc"), hash_str("abd"));
        assert_ne!(hash_str(""), hash_str(" "));
    }
}
