//! Multi-tenant labeling service for DataSculpt runs.
//!
//! A long-lived daemon accepts concurrent labeling jobs over a
//! line-delimited JSON protocol (Unix socket or localhost TCP), schedules
//! them fairly across tenants — round-robin weighted by remaining budget
//! — onto the `datasculpt-exec` pool, and enforces per-tenant nano-USD
//! budgets with *exact* admission control: before every iteration the
//! projected cost (the job's running mean, ceiling-rounded, on the same
//! integer ledger the pipeline bills with) is checked against the
//! tenant's remaining budget, pausing the job durably the moment it
//! would overdraw.
//!
//! Every job runs through `datasculpt-store`'s durable runner in its own
//! directory, and submits/transitions land in a synced registry log, so
//! a daemon crash at any instant resumes all in-flight jobs
//! bit-identically on restart — the same contract the single-run CLI
//! has, lifted to a fleet of tenants.
//!
//! Layering:
//!
//! * [`job`] — job specs, lifecycle states, status reporting.
//! * [`registry`] — the durable submit/transition log.
//! * [`budget`] — tenant accounts and the per-iteration budget gate.
//! * [`service`] — the scheduler (plan → execute → commit rounds).
//! * [`protocol`] — the wire format.
//! * [`daemon`] — the socket listener and connection handling.
//!
//! See `docs/serving.md` for the protocol reference, the scheduling
//! policy, the admission-control math (including the one-iteration
//! overdraft bound), and crash-resume semantics.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod budget;
pub mod daemon;
pub mod job;
pub mod protocol;
pub mod registry;
pub mod service;

pub use budget::{BudgetGate, TenantAccount, TenantBook, CANCEL_PREFIX, PAUSE_PREFIX};
pub use daemon::{run_daemon, Endpoint};
pub use job::{JobSpec, JobState, JobStatus};
pub use registry::{JobRegistry, RegistryRecord, REGISTRY_FILE};
pub use service::{
    BackendFactory, JobRequest, RoundReport, ServeConfig, ServeError, Service, JOBS_DIR,
};
