//! The line-delimited JSON wire protocol.
//!
//! Every request is one flat JSON object on one line; the daemon answers
//! with one line per request — except `status` without a `job` field,
//! which answers a header line (`"jobs":N`) followed by exactly `N` job
//! lines. The dialect is the trace-schema subset parsed by
//! [`datasculpt_obs::schema::parse_object`]: strings, unsigned integers,
//! and booleans. There are no floats on the wire — the dataset scale
//! factor travels as a *string* (`"scale":"0.25"`) and is converted to
//! `f64` bits at the boundary.
//!
//! Requests:
//!
//! ```text
//! {"op":"submit","tenant":"acme","dataset":"youtube","budget_nanousd":5000000}
//! {"op":"status"}            {"op":"status","job":3}
//! {"op":"cancel","job":3}    {"op":"drain"}          {"op":"ping"}
//! ```
//!
//! Optional submit fields (with defaults): `config` (`base`), `model`
//! (`gpt-3.5`), `seed` (`1`), `queries` (`8`), `scale` (`"1"`),
//! `budget_nanousd` (`0` — ride the tenant's existing budget).

use crate::job::JobStatus;
use crate::service::{JobRequest, RoundReport};
use datasculpt_obs::jsonl::escape_json;
use datasculpt_obs::schema::{parse_object, JsonValue};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job (and top up the tenant budget).
    Submit(JobRequest),
    /// Report one job (`Some`) or all jobs (`None`).
    Status {
        /// Job id to report, or `None` for the full table.
        job: Option<u64>,
    },
    /// Cancel a job.
    Cancel {
        /// Job id to cancel.
        job: u64,
    },
    /// Finish all runnable work, then shut the daemon down.
    Drain,
    /// Liveness probe.
    Ping,
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let fields = parse_object(line)?;
    let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let text = |key: &str| -> Result<String, String> {
        match get(key) {
            Some(JsonValue::Str(s)) => Ok(s.clone()),
            Some(_) => Err(format!("field '{key}' must be a string")),
            None => Err(format!("missing field '{key}'")),
        }
    };
    let uint_opt = |key: &str| -> Result<Option<u128>, String> {
        match get(key) {
            Some(JsonValue::UInt(n)) => Ok(Some(*n)),
            Some(_) => Err(format!("field '{key}' must be an unsigned integer")),
            None => Ok(None),
        }
    };
    let narrow_opt = |key: &str| -> Result<Option<u64>, String> {
        match uint_opt(key)? {
            Some(n) => u64::try_from(n)
                .map(Some)
                .map_err(|_| format!("field '{key}' out of u64 range")),
            None => Ok(None),
        }
    };
    match text("op")?.as_str() {
        "submit" => {
            let scale_text = match get("scale") {
                Some(JsonValue::Str(s)) => s.clone(),
                Some(_) => return Err("field 'scale' must be a string like \"0.25\"".into()),
                None => "1".into(),
            };
            let scale: f64 = scale_text
                .parse()
                .map_err(|_| format!("unparseable scale '{scale_text}'"))?;
            Ok(Request::Submit(JobRequest {
                tenant: text("tenant")?,
                dataset: text("dataset")?,
                config: text("config").unwrap_or_else(|_| "base".into()),
                model: text("model").unwrap_or_else(|_| "gpt-3.5".into()),
                seed: narrow_opt("seed")?.unwrap_or(1),
                scale_bits: scale.to_bits(),
                queries: narrow_opt("queries")?.unwrap_or(8),
                budget_nanousd: uint_opt("budget_nanousd")?.unwrap_or(0),
            }))
        }
        "status" => Ok(Request::Status {
            job: narrow_opt("job")?,
        }),
        "cancel" => Ok(Request::Cancel {
            job: narrow_opt("job")?.ok_or("cancel requires a 'job' field")?,
        }),
        "drain" => Ok(Request::Drain),
        "ping" => Ok(Request::Ping),
        other => Err(format!("unknown op '{other}'")),
    }
}

/// `{"ok":false,"error":…}` — any request that could not be served.
pub fn render_error(message: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", escape_json(message))
}

/// Ack for a submit: the assigned job id and its queued state.
pub fn render_submitted(status: &JobStatus) -> String {
    format!(
        "{{\"ok\":true,\"job\":{},\"state\":\"{}\"}}",
        status.spec.id, status.state
    )
}

/// Header line for a full status listing (`count` job lines follow).
pub fn render_status_header(count: usize) -> String {
    format!("{{\"ok\":true,\"jobs\":{count}}}")
}

/// One job's status line (also the single-job status response).
pub fn render_job(status: &JobStatus) -> String {
    format!(
        concat!(
            "{{\"ok\":true,\"job\":{},\"tenant\":\"{}\",\"dataset\":\"{}\",",
            "\"state\":\"{}\",\"cost_nanousd\":{},\"iterations\":{},",
            "\"digest\":\"{:016x}\",\"message\":\"{}\"}}"
        ),
        status.spec.id,
        escape_json(&status.spec.tenant),
        escape_json(&status.spec.dataset),
        status.state,
        status.cost_nanousd,
        status.iterations,
        status.digest,
        escape_json(&status.message),
    )
}

/// Ack for a drain: the merged round report.
pub fn render_drained(report: &RoundReport) -> String {
    format!(
        concat!(
            "{{\"ok\":true,\"drained\":true,\"admitted\":{},\"rejected\":{},",
            "\"completed\":{},\"paused\":{},\"cancelled\":{},\"failed\":{}}}"
        ),
        report.admitted,
        report.rejected,
        report.completed,
        report.paused,
        report.cancelled,
        report.failed,
    )
}

/// Ack for a ping.
pub fn render_pong() -> String {
    "{\"ok\":true,\"pong\":true}".into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, JobState};

    #[test]
    fn submit_parses_with_defaults_and_string_scale() {
        let req = parse_request(
            "{\"op\":\"submit\",\"tenant\":\"acme\",\"dataset\":\"youtube\",\
             \"scale\":\"0.25\",\"budget_nanousd\":5000000}",
        )
        .expect("parse");
        let Request::Submit(job) = req else {
            panic!("not a submit");
        };
        assert_eq!(job.tenant, "acme");
        assert_eq!(job.config, "base");
        assert_eq!(job.model, "gpt-3.5");
        assert_eq!(job.seed, 1);
        assert_eq!(job.queries, 8);
        assert_eq!(job.scale_bits, 0.25f64.to_bits());
        assert_eq!(job.budget_nanousd, 5_000_000);
    }

    #[test]
    fn the_other_ops_round_trip() {
        assert_eq!(
            parse_request("{\"op\":\"status\"}").expect("status"),
            Request::Status { job: None }
        );
        assert_eq!(
            parse_request("{\"op\":\"status\",\"job\":3}").expect("status"),
            Request::Status { job: Some(3) }
        );
        assert_eq!(
            parse_request("{\"op\":\"cancel\",\"job\":3}").expect("cancel"),
            Request::Cancel { job: 3 }
        );
        assert_eq!(
            parse_request("{\"op\":\"drain\"}").expect("drain"),
            Request::Drain
        );
        assert_eq!(
            parse_request("{\"op\":\"ping\"}").expect("ping"),
            Request::Ping
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        assert!(parse_request("{\"op\":\"warp\"}")
            .unwrap_err()
            .contains("unknown op"));
        assert!(parse_request("{\"op\":\"cancel\"}")
            .unwrap_err()
            .contains("job"));
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"submit\",\"dataset\":\"youtube\"}")
            .unwrap_err()
            .contains("tenant"));
        // Floats must travel as strings.
        assert!(parse_request(
            "{\"op\":\"submit\",\"tenant\":\"a\",\"dataset\":\"youtube\",\"scale\":0.5}"
        )
        .is_err());
    }

    #[test]
    fn responses_are_single_flat_json_lines() {
        let status = JobStatus {
            spec: JobSpec {
                id: 7,
                tenant: "a\"b".into(),
                dataset: "youtube".into(),
                config: "base".into(),
                model: "gpt-3.5".into(),
                seed: 1,
                scale_bits: 1.0f64.to_bits(),
                queries: 8,
            },
            state: JobState::Completed,
            cost_nanousd: 123,
            iterations: 8,
            digest: 0xabcd,
            message: String::new(),
        };
        let line = render_job(&status);
        assert!(line.contains("\"digest\":\"000000000000abcd\""), "{line}");
        assert!(line.contains("a\\\"b"), "tenant escaped: {line}");
        assert!(!line.contains('\n'));
        // Every response parses back in the same dialect.
        for rendered in [
            line,
            render_error("no"),
            render_submitted(&status),
            render_status_header(3),
            render_drained(&RoundReport::default()),
            render_pong(),
        ] {
            datasculpt_obs::schema::parse_object(&rendered).expect("self-parse");
        }
    }
}
