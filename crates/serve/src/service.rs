//! The multi-tenant labeling service: job table, fair scheduler, and the
//! durable execution loop the daemon (or a test) drives round by round.
//!
//! One **round** = plan → execute → commit:
//!
//! 1. **Plan** (single-threaded, deterministic): walk tenants in
//!    remaining-budget-descending order (ties broken by tenant name),
//!    round-robin one runnable job per tenant per pass (FIFO by job id
//!    within a tenant) until the round's slots are full. Fresh jobs from
//!    a tenant with zero remaining budget are *rejected* at admission;
//!    paused jobs whose tenant still cannot cover their recorded need
//!    stay paused without consuming a slot.
//! 2. **Execute**: admitted jobs run concurrently on the
//!    [`datasculpt_exec::Pool`], each as a durable run in its own
//!    directory (`<state>/jobs/<id>/`) behind a [`BudgetGate`]. The pool
//!    collects results in plan order, so commit order is deterministic.
//! 3. **Commit** (single-threaded, in plan order): classify each
//!    outcome (completed / paused / cancelled / failed), append the
//!    durable registry transition, and emit the job's trace events —
//!    a `job` stage span wrapping the job's exact per-model usage, plus
//!    the `job_admit` / `job_reject_budget` / `job_pause` /
//!    `job_complete` counters.
//!
//! A daemon crash at any point loses nothing: submits and transitions
//! are in the synced registry, every job's LLM responses and iteration
//! checkpoints are in its durable directory, and [`Service::open`]
//! re-queues in-flight jobs, whose resumed runs are bit-identical
//! (`docs/persistence.md`, proven again at the service level by
//! `tests/serve.rs`).

use crate::budget::{BudgetGate, TenantAccount, TenantBook, CANCEL_PREFIX, PAUSE_PREFIX};
use crate::job::{JobSpec, JobState, JobStatus};
use crate::registry::{JobRegistry, RegistryRecord};
use datasculpt_core::IterationCheckpoint;
use datasculpt_data::TextDataset;
use datasculpt_exec::Pool;
use datasculpt_llm::{ChatModel, ModelId, PricingTable, SimulatedLlm, UsageLedger};
use datasculpt_obs::{Counter, Event, RunObserver, SharedObserver, Stage};
use datasculpt_store::{
    run_durable_gated, DurableError, DurableOptions, DurableOutcome, IterationGate, KillSwitch,
    StoreError,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Subdirectory of the state dir holding one durable run dir per job.
pub const JOBS_DIR: &str = "jobs";

/// Scheduler knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum jobs executed concurrently per round (also the pool's
    /// worker-thread budget).
    pub slots: usize,
    /// Durable checkpoint cadence for job runs (1 = every iteration; the
    /// budget gate only sees checkpointed iterations, so 1 gives the
    /// tightest admission control).
    pub checkpoint_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            slots: 4,
            checkpoint_every: 1,
        }
    }
}

/// Why a service operation failed.
#[derive(Debug)]
pub enum ServeError {
    /// Durable state (registry or job directory) could not be written.
    Store(StoreError),
    /// The request was malformed or referenced a missing/terminal job.
    Invalid(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Store(e) => write!(f, "{e}"),
            ServeError::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// A job submission: a [`JobSpec`] without the daemon-assigned id, plus
/// the tenant budget top-up riding along.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequest {
    /// Owning tenant.
    pub tenant: String,
    /// Dataset name.
    pub dataset: String,
    /// Config preset (`base`, `cot`, `sc`, `kate`).
    pub config: String,
    /// Model short name (`gpt-3.5`, …).
    pub model: String,
    /// Seed (dataset subsample + config + backend).
    pub seed: u64,
    /// Dataset scale factor as `f64` bits.
    pub scale_bits: u64,
    /// Query-iteration budget.
    pub queries: u64,
    /// Exact nano-USD added to the tenant's budget by this submit.
    pub budget_nanousd: u128,
}

/// What one scheduler round (or a whole drain) did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundReport {
    /// Jobs admitted onto the pool.
    pub admitted: u64,
    /// Fresh jobs rejected at admission (zero remaining tenant budget).
    pub rejected: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs paused by the budget gate.
    pub paused: u64,
    /// Jobs cancelled mid-run.
    pub cancelled: u64,
    /// Jobs aborted by a backend/pipeline failure.
    pub failed: u64,
}

impl RoundReport {
    fn absorb(&mut self, other: RoundReport) {
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.completed += other.completed;
        self.paused += other.paused;
        self.cancelled += other.cancelled;
        self.failed += other.failed;
    }
}

/// Builds one backend per job execution. The factory runs *inside* the
/// pool worker, so a crash-injection wrapper (sharing a [`KillSwitch`])
/// can be threaded in by tests without the service knowing.
pub type BackendFactory =
    Arc<dyn Fn(&JobSpec, &TextDataset) -> Box<dyn ChatModel + Send> + Send + Sync>;

/// Everything a pool worker needs to run one admitted job.
struct ExecEntry {
    spec: JobSpec,
    dataset: Arc<TextDataset>,
    dir: PathBuf,
    cancel: Arc<AtomicBool>,
    progress: Arc<Mutex<JobProgress>>,
}

/// Live per-job figures the gate records for the commit phase.
#[derive(Debug, Clone, Copy, Default)]
struct JobProgress {
    iterations: u64,
    cost_nanousd: u128,
    needed_nanousd: u128,
}

/// Delegates budget decisions to [`BudgetGate`] while mirroring the
/// latest snapshot into the entry's [`JobProgress`] for the commit phase.
struct TrackedGate {
    inner: BudgetGate,
    progress: Arc<Mutex<JobProgress>>,
}

impl IterationGate for TrackedGate {
    fn after_checkpoint(&mut self, snapshot: &IterationCheckpoint) -> Result<(), String> {
        let decision = self.inner.after_checkpoint(snapshot);
        let mut p = match self.progress.lock() {
            Ok(p) => p,
            Err(poisoned) => poisoned.into_inner(),
        };
        let done = snapshot.iter.saturating_add(1);
        p.iterations = p.iterations.max(done);
        p.cost_nanousd = p.cost_nanousd.max(snapshot.cost_nanousd);
        p.needed_nanousd = BudgetGate::projected_next_iteration(snapshot.cost_nanousd, done);
        decision
    }
}

/// A durable-run error classified by gate-message prefix.
enum JobError {
    Pause(String),
    Cancel(String),
    Other(String),
}

fn classify(error: &DurableError) -> JobError {
    if let DurableError::Pipeline(datasculpt_core::PipelineError::Checkpoint { message, .. }) =
        error
    {
        if message.starts_with(PAUSE_PREFIX) {
            return JobError::Pause(message.clone());
        }
        if message.starts_with(CANCEL_PREFIX) {
            return JobError::Cancel(message.clone());
        }
    }
    JobError::Other(error.to_string())
}

/// The service: job table + tenant book + scheduler, all behind one
/// value the daemon wraps in a mutex.
pub struct Service {
    state_dir: PathBuf,
    config: ServeConfig,
    registry: JobRegistry,
    jobs: BTreeMap<u64, JobStatus>,
    ledgers: BTreeMap<u64, UsageLedger>,
    /// Minimum tenant remaining budget a paused job needs to be
    /// re-admitted (its projected next-iteration cost at pause time).
    needed: BTreeMap<u64, u128>,
    cancels: BTreeMap<u64, Arc<AtomicBool>>,
    book: Arc<Mutex<TenantBook>>,
    datasets: BTreeMap<(String, u64, u64), Arc<TextDataset>>,
    factory: BackendFactory,
    observer: Option<SharedObserver>,
    kill: Option<KillSwitch>,
    pool: Pool,
    next_id: u64,
    recovered: u64,
}

impl Service {
    /// Open (or create) a service over `state_dir`, replaying the job
    /// registry: terminal jobs are restored as-is, paused jobs stay
    /// paused, and jobs that were queued or in flight when the previous
    /// daemon died are re-queued (their durable run directories resume
    /// bit-identically).
    pub fn open(state_dir: &Path, config: ServeConfig) -> Result<Service, ServeError> {
        std::fs::create_dir_all(state_dir)
            .map_err(|e| ServeError::Store(StoreError::io(state_dir, "create-dir", &e)))?;
        let (registry, records, _torn) = JobRegistry::open(state_dir)?;
        let mut jobs: BTreeMap<u64, JobStatus> = BTreeMap::new();
        let mut needed: BTreeMap<u64, u128> = BTreeMap::new();
        let mut book = TenantBook::new();
        let mut next_id = 1u64;
        for record in records {
            match record {
                RegistryRecord::Submit {
                    spec,
                    budget_nanousd,
                } => {
                    book.top_up(&spec.tenant, budget_nanousd);
                    next_id = next_id.max(spec.id.saturating_add(1));
                    jobs.insert(
                        spec.id,
                        JobStatus {
                            spec,
                            state: JobState::Queued,
                            cost_nanousd: 0,
                            iterations: 0,
                            digest: 0,
                            message: String::new(),
                        },
                    );
                }
                RegistryRecord::State {
                    id,
                    state,
                    cost_nanousd,
                    iterations,
                    digest,
                    message,
                } => {
                    if let Some(status) = jobs.get_mut(&id) {
                        book.commit(&status.spec.tenant, id, cost_nanousd);
                        status.state = state;
                        status.cost_nanousd = cost_nanousd;
                        status.iterations = iterations;
                        status.digest = digest;
                        status.message = message;
                        if state == JobState::Paused {
                            // Re-derive the pause's projection from its
                            // durable figures.
                            needed.insert(
                                id,
                                BudgetGate::projected_next_iteration(cost_nanousd, iterations),
                            );
                        } else {
                            needed.remove(&id);
                        }
                    }
                }
            }
        }
        let mut recovered = 0u64;
        for status in jobs.values_mut() {
            if status.state == JobState::Running {
                status.state = JobState::Queued;
                status.message = "re-queued after daemon restart".into();
                recovered += 1;
            }
        }
        let pool = Pool::new(config.slots.max(1));
        Ok(Service {
            state_dir: state_dir.to_path_buf(),
            config,
            registry,
            jobs,
            ledgers: BTreeMap::new(),
            needed,
            cancels: BTreeMap::new(),
            book: Arc::new(Mutex::new(book)),
            datasets: BTreeMap::new(),
            factory: Arc::new(|spec, dataset| {
                // Specs are validated at submit, so the model parse
                // cannot fail here; fall back defensively anyway.
                let model = spec.model_id().unwrap_or(ModelId::Gpt35Turbo);
                Box::new(SimulatedLlm::new(
                    model,
                    dataset.generative.clone(),
                    spec.seed,
                ))
            }),
            observer: None,
            kill: None,
            pool,
            next_id,
            recovered,
        })
    }

    /// Replace the backend factory (tests inject scripted or
    /// crash-wrapped backends).
    pub fn with_backend_factory(mut self, factory: BackendFactory) -> Self {
        self.factory = factory;
        self
    }

    /// Attach an observer: job lifecycle counters, per-job `job` spans
    /// with exact usage, and progress messages are emitted through it
    /// (from the single-threaded commit phase, so span nesting stays
    /// strict).
    pub fn with_observer(mut self, observer: SharedObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attach a crash-injection switch: once tripped, the registry and
    /// every job checkpointer silently drop writes, leaving disk exactly
    /// as a SIGKILL of the daemon would.
    pub fn with_kill_switch(mut self, kill: KillSwitch) -> Self {
        self.registry.set_kill_switch(kill.clone());
        self.kill = Some(kill);
        self
    }

    /// Jobs re-queued by crash recovery on open.
    pub fn recovered_jobs(&self) -> u64 {
        self.recovered
    }

    /// The state directory this service persists under.
    pub fn state_dir(&self) -> &Path {
        &self.state_dir
    }

    /// Submit a job: validate, durably record, top up the tenant budget,
    /// and queue. Budget admission happens at scheduling time.
    pub fn submit(&mut self, request: JobRequest) -> Result<JobStatus, ServeError> {
        let spec = JobSpec {
            id: self.next_id,
            tenant: request.tenant,
            dataset: request.dataset,
            config: request.config,
            model: request.model,
            seed: request.seed,
            scale_bits: request.scale_bits,
            queries: request.queries,
        };
        spec.validate().map_err(ServeError::Invalid)?;
        self.registry.append_submit(&spec, request.budget_nanousd)?;
        self.next_id = self.next_id.saturating_add(1);
        self.lock_book()
            .top_up(&spec.tenant, request.budget_nanousd);
        let status = JobStatus {
            spec,
            state: JobState::Queued,
            cost_nanousd: 0,
            iterations: 0,
            digest: 0,
            message: String::new(),
        };
        self.jobs.insert(status.spec.id, status.clone());
        Ok(status)
    }

    /// Cancel a job. Queued/paused jobs cancel immediately; a running
    /// job is flagged and stops (durably) at its next iteration gate.
    pub fn cancel(&mut self, id: u64) -> Result<JobStatus, ServeError> {
        let state = self
            .jobs
            .get(&id)
            .map(|s| s.state)
            .ok_or_else(|| ServeError::Invalid(format!("no such job {id}")))?;
        if state.is_terminal() {
            return Err(ServeError::Invalid(format!("job {id} is already {state}")));
        }
        if state == JobState::Running {
            if let Some(flag) = self.cancels.get(&id) {
                flag.store(true, Ordering::SeqCst);
            }
            if let Some(s) = self.jobs.get_mut(&id) {
                s.message = "cancel requested".into();
            }
        } else {
            self.transition(id, JobState::Cancelled, "cancelled before running")?;
        }
        self.jobs
            .get(&id)
            .cloned()
            .ok_or_else(|| ServeError::Invalid(format!("no such job {id}")))
    }

    /// One job's status.
    pub fn status(&self, id: u64) -> Option<&JobStatus> {
        self.jobs.get(&id)
    }

    /// Every job, in id order.
    pub fn jobs(&self) -> impl Iterator<Item = &JobStatus> {
        self.jobs.values()
    }

    /// A completed job's exact per-model ledger.
    pub fn job_ledger(&self, id: u64) -> Option<&UsageLedger> {
        self.ledgers.get(&id)
    }

    /// Per-tenant merged ledgers over completed jobs, in tenant order.
    pub fn tenant_ledgers(&self) -> BTreeMap<String, UsageLedger> {
        let mut out: BTreeMap<String, UsageLedger> = BTreeMap::new();
        for (id, ledger) in &self.ledgers {
            if let Some(status) = self.jobs.get(id) {
                out.entry(status.spec.tenant.clone())
                    .or_default()
                    .merge(ledger);
            }
        }
        out
    }

    /// The global ledger: every completed job's ledger merged.
    pub fn global_ledger(&self) -> UsageLedger {
        let mut out = UsageLedger::new();
        for ledger in self.ledgers.values() {
            out.merge(ledger);
        }
        out
    }

    /// A tenant's account (budget/spent/remaining, exact nano-USD).
    pub fn tenant_account(&self, tenant: &str) -> TenantAccount {
        self.lock_book().account(tenant)
    }

    /// Tenant names with accounts, in deterministic order.
    pub fn tenants(&self) -> Vec<String> {
        self.lock_book()
            .accounts()
            .map(|(name, _)| name.to_string())
            .collect()
    }

    /// Whether any job could make progress in a round right now.
    pub fn has_runnable(&self) -> bool {
        let book = self.lock_book();
        self.jobs.values().any(|s| match s.state {
            JobState::Queued => true,
            JobState::Paused => {
                let needed = self.needed.get(&s.spec.id).copied().unwrap_or(0);
                book.account(&s.spec.tenant).remaining_nanousd() > needed
            }
            _ => false,
        })
    }

    /// Run rounds until nothing is runnable (queued work is done or
    /// rejected; paused jobs whose tenants stay underfunded remain
    /// paused). Returns the merged report.
    ///
    /// Termination: every round moves each selected job to a terminal
    /// state, a pause with a refreshed `needed` figure that
    /// [`has_runnable`](Self::has_runnable) checks against, or (fresh
    /// zero-budget jobs) an admission rejection — so the runnable set
    /// strictly shrinks unless real iterations were paid for.
    pub fn drain(&mut self) -> Result<RoundReport, ServeError> {
        let mut total = RoundReport::default();
        while self.has_runnable() {
            total.absorb(self.run_round()?);
        }
        Ok(total)
    }

    /// One scheduler round: plan → execute → commit. See the module docs
    /// for the exact policy.
    pub fn run_round(&mut self) -> Result<RoundReport, ServeError> {
        let mut report = RoundReport::default();
        let planned = self.plan_round(&mut report)?;
        if planned.is_empty() {
            return Ok(report);
        }
        let entries = self.prepare_entries(&planned)?;

        let factory = self.factory.clone();
        let book = self.book.clone();
        let opts = DurableOptions {
            checkpoint_every: self.config.checkpoint_every,
            kill: self.kill.clone(),
            require_existing: false,
        };
        let outcomes = self
            .pool
            .try_run(entries.len(), |i| {
                // ds-lint: allow(unchecked-index): try_run passes i < entries.len()
                let entry = &entries[i];
                let fingerprint = match entry.spec.fingerprint() {
                    Ok(fp) => fp,
                    Err(e) => return Err(JobError::Other(e)),
                };
                let mut gate = TrackedGate {
                    inner: BudgetGate::new(
                        &entry.spec.tenant,
                        entry.spec.id,
                        book.clone(),
                        entry.cancel.clone(),
                    ),
                    progress: entry.progress.clone(),
                };
                let backend = factory(&entry.spec, &entry.dataset);
                run_durable_gated(
                    &entry.dataset,
                    &fingerprint,
                    backend,
                    &entry.dir,
                    &opts,
                    None,
                    Some(&mut gate),
                )
                .map_err(|e| classify(&e))
            })
            .map_err(|p| ServeError::Invalid(format!("job worker panicked: {p}")))?;

        for (entry, outcome) in entries.iter().zip(outcomes) {
            self.commit_outcome(entry, outcome, &mut report)?;
        }
        Ok(report)
    }

    /// Plan phase: admission control + fair selection. Returns admitted
    /// job ids in execution order.
    fn plan_round(&mut self, report: &mut RoundReport) -> Result<Vec<u64>, ServeError> {
        let slots = self.config.slots.max(1);
        // Tenants in remaining-budget-descending order, name-ascending on
        // ties: the "weighted by remaining budget" round-robin axis.
        let mut tenants: Vec<(u128, String)> = self
            .lock_book()
            .accounts()
            .map(|(name, acct)| (acct.remaining_nanousd(), name.to_string()))
            .collect();
        tenants.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));

        // FIFO queues per tenant of candidate jobs (id order = submit
        // order, because ids are assigned monotonically).
        let mut queues: BTreeMap<String, std::collections::VecDeque<u64>> = BTreeMap::new();
        for status in self.jobs.values() {
            if matches!(status.state, JobState::Queued | JobState::Paused) {
                queues
                    .entry(status.spec.tenant.clone())
                    .or_default()
                    .push_back(status.spec.id);
            }
        }

        let mut admitted: Vec<u64> = Vec::new();
        let mut progressed = true;
        while progressed && admitted.len() < slots {
            progressed = false;
            for (_, tenant) in &tenants {
                if admitted.len() >= slots {
                    break;
                }
                let Some(mut queue) = queues.remove(tenant) else {
                    continue;
                };
                while let Some(id) = queue.pop_front() {
                    let Some(state) = self.jobs.get(&id).map(|s| s.state) else {
                        continue;
                    };
                    let remaining = self.lock_book().account(tenant).remaining_nanousd();
                    match state {
                        JobState::Queued if remaining == 0 => {
                            // Admission rejection: terminal, no slot used.
                            report.rejected += 1;
                            self.emit(&Event::Counter {
                                counter: Counter::JobRejectBudget,
                                delta: 1,
                            });
                            self.transition(
                                id,
                                JobState::Rejected,
                                "rejected at admission: tenant has zero remaining budget",
                            )?;
                            continue;
                        }
                        JobState::Paused => {
                            let needed = self.needed.get(&id).copied().unwrap_or(0);
                            if remaining <= needed {
                                // Still underfunded: stays paused, no
                                // slot, no event.
                                continue;
                            }
                        }
                        _ => {}
                    }
                    report.admitted += 1;
                    self.emit(&Event::Counter {
                        counter: Counter::JobAdmit,
                        delta: 1,
                    });
                    self.transition(id, JobState::Running, "")?;
                    admitted.push(id);
                    progressed = true;
                    break; // one job per tenant per pass
                }
                if !queue.is_empty() {
                    queues.insert(tenant.clone(), queue);
                }
            }
        }
        Ok(admitted)
    }

    /// Build the execution entries (datasets loaded and cached on the
    /// scheduler thread; cancel flags and progress cells shared with the
    /// gates).
    fn prepare_entries(&mut self, planned: &[u64]) -> Result<Vec<ExecEntry>, ServeError> {
        let mut entries = Vec::with_capacity(planned.len());
        for &id in planned {
            let Some(status) = self.jobs.get(&id) else {
                continue;
            };
            let spec = status.spec.clone();
            let key = (spec.dataset.clone(), spec.seed, spec.scale_bits);
            let dataset = match self.datasets.get(&key) {
                Some(d) => d.clone(),
                None => {
                    let loaded = Arc::new(spec.load_dataset().map_err(ServeError::Invalid)?);
                    self.datasets.insert(key, loaded.clone());
                    loaded
                }
            };
            let cancel = self
                .cancels
                .entry(id)
                .or_insert_with(|| Arc::new(AtomicBool::new(false)))
                .clone();
            entries.push(ExecEntry {
                dir: self
                    .state_dir
                    .join(JOBS_DIR)
                    .join(format!("{:08}", spec.id)),
                spec,
                dataset,
                cancel,
                progress: Arc::new(Mutex::new(JobProgress::default())),
            });
        }
        Ok(entries)
    }

    /// Commit phase for one executed job (runs on the scheduler thread,
    /// in plan order).
    fn commit_outcome(
        &mut self,
        entry: &ExecEntry,
        outcome: Result<DurableOutcome, JobError>,
        report: &mut RoundReport,
    ) -> Result<(), ServeError> {
        let id = entry.spec.id;
        let progress = match entry.progress.lock() {
            Ok(p) => *p,
            Err(poisoned) => *poisoned.into_inner(),
        };
        match outcome {
            Ok(outcome) => {
                report.completed += 1;
                let digest = outcome.result.digest();
                let ledger = outcome.result.ledger.clone();
                let cost = ledger.total_cost_nanousd();
                let iterations = outcome.result.iterations.len() as u64;
                self.lock_book().commit(&entry.spec.tenant, id, cost);
                self.emit(&Event::StageBegin {
                    iter: id,
                    stage: Stage::Job,
                });
                for (model, usage) in ledger.per_model() {
                    self.emit(&Event::Usage {
                        model: model.api_name().to_string(),
                        prompt_tokens: usage.prompt_tokens,
                        completion_tokens: usage.completion_tokens,
                        cost_nanousd: PricingTable::cost_nanousd(
                            model,
                            usage.prompt_tokens,
                            usage.completion_tokens,
                        ),
                    });
                }
                self.emit(&Event::Counter {
                    counter: Counter::JobComplete,
                    delta: 1,
                });
                self.emit(&Event::Message {
                    text: format!(
                        "job {id} tenant {} completed: digest {digest:016x}, {cost} nanoUSD",
                        entry.spec.tenant
                    ),
                });
                self.emit(&Event::StageEnd {
                    iter: id,
                    stage: Stage::Job,
                });
                self.ledgers.insert(id, ledger);
                self.needed.remove(&id);
                self.record_state(id, JobState::Completed, cost, iterations, digest, "")?;
            }
            Err(JobError::Pause(message)) => {
                report.paused += 1;
                self.needed.insert(id, progress.needed_nanousd);
                self.emit(&Event::Counter {
                    counter: Counter::JobPause,
                    delta: 1,
                });
                self.emit(&Event::Message {
                    text: format!("job {id} tenant {} paused: {message}", entry.spec.tenant),
                });
                self.record_state(
                    id,
                    JobState::Paused,
                    progress.cost_nanousd,
                    progress.iterations,
                    0,
                    &message,
                )?;
            }
            Err(JobError::Cancel(message)) => {
                report.cancelled += 1;
                self.record_state(
                    id,
                    JobState::Cancelled,
                    progress.cost_nanousd,
                    progress.iterations,
                    0,
                    &message,
                )?;
            }
            Err(JobError::Other(message)) => {
                report.failed += 1;
                self.emit(&Event::Message {
                    text: format!("job {id} tenant {} failed: {message}", entry.spec.tenant),
                });
                self.record_state(
                    id,
                    JobState::Failed,
                    progress.cost_nanousd,
                    progress.iterations,
                    0,
                    &message,
                )?;
            }
        }
        Ok(())
    }

    /// Record a state transition in memory and the durable registry.
    fn record_state(
        &mut self,
        id: u64,
        state: JobState,
        cost_nanousd: u128,
        iterations: u64,
        digest: u64,
        message: &str,
    ) -> Result<(), ServeError> {
        if let Some(status) = self.jobs.get_mut(&id) {
            status.state = state;
            status.cost_nanousd = cost_nanousd;
            status.iterations = iterations;
            status.digest = digest;
            status.message = message.to_string();
        }
        self.registry
            .append_state(id, state, cost_nanousd, iterations, digest, message)?;
        Ok(())
    }

    /// In-memory transition + registry append, preserving recorded cost.
    fn transition(&mut self, id: u64, state: JobState, message: &str) -> Result<(), ServeError> {
        let (cost, iterations, digest) = self
            .jobs
            .get(&id)
            .map(|s| (s.cost_nanousd, s.iterations, s.digest))
            .unwrap_or_default();
        self.record_state(id, state, cost, iterations, digest, message)
    }

    fn emit(&mut self, event: &Event) {
        if let Some(obs) = &mut self.observer {
            obs.on_event(event);
        }
    }

    fn lock_book(&self) -> MutexGuard<'_, TenantBook> {
        match self.book.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
