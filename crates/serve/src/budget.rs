//! Exact budget admission control.
//!
//! Every tenant has a nano-USD budget account (topped up by submits) and
//! a per-job committed-spend map. All arithmetic is exact integer
//! nano-USD on the same [`UsageLedger`](datasculpt_llm::UsageLedger)
//! figures the pipeline bills with — there is no float anywhere in an
//! admission decision.
//!
//! The control loop has two gates:
//!
//! * **Admission** (job start): a job is scheduled only while its tenant
//!   has remaining budget (`spent < budget`). A tenant at or over budget
//!   gets `job_reject_budget` for fresh submits and keeps paused jobs
//!   paused.
//! * **Continuation** ([`BudgetGate`], after every durably checkpointed
//!   iteration): the next iteration's projected cost — the job's exact
//!   running mean cost per iteration, rounded up — must fit in the
//!   tenant's remaining budget, or the job pauses. The pause happens
//!   *after* the iteration's checkpoint is on disk, so a paused job
//!   resumes bit-identically once the tenant is topped up.
//!
//! Overdraft bound: a tenant can exceed its budget by at most the cost
//! of one iteration per job beyond the last gate decision (the first
//! iteration of a fresh job has no history to project from). The bench
//! measures this bound empirically; `docs/serving.md` derives it.

use datasculpt_core::IterationCheckpoint;
use datasculpt_store::IterationGate;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Gate-message prefix for a budget pause (classified out of
/// `PipelineError::Checkpoint` by the scheduler).
pub const PAUSE_PREFIX: &str = "budget-pause";
/// Gate-message prefix for a cancellation.
pub const CANCEL_PREFIX: &str = "cancelled";

/// One tenant's account.
#[derive(Debug, Clone, Default)]
pub struct TenantAccount {
    /// Total budget granted, exact nano-USD.
    pub budget_nanousd: u128,
    /// Committed cumulative spend per job (each entry is the job's latest
    /// durable snapshot cost, so crash-replay never double-counts: a
    /// replayed iteration re-commits the same cumulative figure).
    committed: BTreeMap<u64, u128>,
}

impl TenantAccount {
    /// Exact nano-USD spent across this tenant's jobs.
    pub fn spent_nanousd(&self) -> u128 {
        self.committed.values().sum()
    }

    /// Remaining budget (0 when overdrawn).
    pub fn remaining_nanousd(&self) -> u128 {
        self.budget_nanousd.saturating_sub(self.spent_nanousd())
    }

    /// One job's committed spend.
    pub fn job_spent_nanousd(&self, job: u64) -> u128 {
        self.committed.get(&job).copied().unwrap_or(0)
    }
}

/// All tenant accounts, keyed by tenant name (deterministic order).
#[derive(Debug, Clone, Default)]
pub struct TenantBook {
    accounts: BTreeMap<String, TenantAccount>,
}

impl TenantBook {
    /// An empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add budget to a tenant (creating the account at 0 spend).
    pub fn top_up(&mut self, tenant: &str, nanousd: u128) {
        let account = self.accounts.entry(tenant.to_string()).or_default();
        account.budget_nanousd = account.budget_nanousd.saturating_add(nanousd);
    }

    /// Commit a job's cumulative spend (monotone per job: a replayed
    /// snapshot can only re-state or extend what was already committed).
    pub fn commit(&mut self, tenant: &str, job: u64, cumulative_nanousd: u128) {
        let account = self.accounts.entry(tenant.to_string()).or_default();
        let entry = account.committed.entry(job).or_insert(0);
        *entry = (*entry).max(cumulative_nanousd);
    }

    /// A tenant's account (default-zero if never seen).
    pub fn account(&self, tenant: &str) -> TenantAccount {
        self.accounts.get(tenant).cloned().unwrap_or_default()
    }

    /// Every account, in deterministic tenant-name order.
    pub fn accounts(&self) -> impl Iterator<Item = (&str, &TenantAccount)> {
        self.accounts.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// Integer ceiling division (exact, no float).
fn ceil_div(num: u128, den: u128) -> u128 {
    if den == 0 {
        return num;
    }
    num / den + u128::from(!num.is_multiple_of(den))
}

/// The per-job continuation gate, consulted by the durable runner after
/// every checkpointed iteration (see [`datasculpt_store::IterationGate`]).
#[derive(Debug, Clone)]
pub struct BudgetGate {
    tenant: String,
    job: u64,
    book: Arc<Mutex<TenantBook>>,
    cancel: Arc<AtomicBool>,
}

impl BudgetGate {
    /// Gate `job` (owned by `tenant`) against the shared book; `cancel`
    /// set from outside stops the job at its next durable iteration.
    pub fn new(
        tenant: &str,
        job: u64,
        book: Arc<Mutex<TenantBook>>,
        cancel: Arc<AtomicBool>,
    ) -> Self {
        BudgetGate {
            tenant: tenant.to_string(),
            job,
            book,
            cancel,
        }
    }

    /// Projected exact nano-USD for the next iteration, given the job's
    /// cumulative spend after `iterations` completed iterations: the
    /// running mean, rounded up. 0 iterations projects 0 (no history).
    pub fn projected_next_iteration(cumulative_nanousd: u128, iterations: u64) -> u128 {
        if iterations == 0 {
            return 0;
        }
        ceil_div(cumulative_nanousd, u128::from(iterations))
    }
}

impl IterationGate for BudgetGate {
    fn after_checkpoint(&mut self, snapshot: &IterationCheckpoint) -> Result<(), String> {
        let mut book = match self.book.lock() {
            Ok(b) => b,
            Err(poisoned) => poisoned.into_inner(),
        };
        book.commit(&self.tenant, self.job, snapshot.cost_nanousd);
        if self.cancel.load(Ordering::SeqCst) {
            return Err(format!("{CANCEL_PREFIX}: by request"));
        }
        let account = book.account(&self.tenant);
        let projected =
            Self::projected_next_iteration(snapshot.cost_nanousd, snapshot.iter.saturating_add(1));
        if projected > account.remaining_nanousd() {
            return Err(format!(
                "{PAUSE_PREFIX}: projected next-iteration cost {projected} nanoUSD exceeds \
                 tenant '{}' remaining budget {} (spent {} of {})",
                self.tenant,
                account.remaining_nanousd(),
                account.spent_nanousd(),
                account.budget_nanousd,
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(iter: u64, cost: u128) -> IterationCheckpoint {
        IterationCheckpoint {
            iter,
            state_digest: 0,
            lfs: 0,
            calls: 0,
            cost_nanousd: cost,
            failed: false,
        }
    }

    #[test]
    fn commit_is_monotone_and_replay_safe() {
        let mut book = TenantBook::new();
        book.top_up("a", 1000);
        book.commit("a", 1, 300);
        book.commit("a", 1, 100); // a crash-replay re-commits an earlier prefix
        assert_eq!(book.account("a").spent_nanousd(), 300, "never regresses");
        book.commit("a", 1, 450);
        book.commit("a", 2, 50);
        assert_eq!(book.account("a").spent_nanousd(), 500);
        assert_eq!(book.account("a").remaining_nanousd(), 500);
        assert_eq!(book.account("a").job_spent_nanousd(1), 450);
    }

    #[test]
    fn projection_is_exact_ceil_mean() {
        assert_eq!(BudgetGate::projected_next_iteration(0, 0), 0);
        assert_eq!(BudgetGate::projected_next_iteration(10, 3), 4); // ceil(10/3)
        assert_eq!(BudgetGate::projected_next_iteration(9, 3), 3);
        assert_eq!(
            BudgetGate::projected_next_iteration(u128::MAX, 1),
            u128::MAX
        );
    }

    #[test]
    fn gate_pauses_when_projection_overdraws() {
        let book = Arc::new(Mutex::new(TenantBook::new()));
        book.lock().unwrap().top_up("a", 250);
        let mut gate = BudgetGate::new("a", 1, book.clone(), Arc::new(AtomicBool::new(false)));

        // Iteration 0 cost 100: projection 100 <= remaining 150 → continue.
        gate.after_checkpoint(&snapshot(0, 100)).expect("continue");
        // Iteration 1 cumulative 200: projection 100 > remaining 50 → pause.
        let err = gate.after_checkpoint(&snapshot(1, 200)).unwrap_err();
        assert!(err.starts_with(PAUSE_PREFIX), "{err}");
        // Spend was committed before pausing: the book knows the 200.
        assert_eq!(book.lock().unwrap().account("a").spent_nanousd(), 200);

        // A top-up makes the same snapshot pass again (resume path).
        book.lock().unwrap().top_up("a", 1000);
        gate.after_checkpoint(&snapshot(1, 200)).expect("resumed");
    }

    #[test]
    fn gate_cancels_on_the_shared_flag() {
        let book = Arc::new(Mutex::new(TenantBook::new()));
        book.lock().unwrap().top_up("a", u128::MAX);
        let cancel = Arc::new(AtomicBool::new(false));
        let mut gate = BudgetGate::new("a", 1, book, cancel.clone());
        gate.after_checkpoint(&snapshot(0, 1)).expect("live");
        cancel.store(true, Ordering::SeqCst);
        let err = gate.after_checkpoint(&snapshot(1, 2)).unwrap_err();
        assert!(err.starts_with(CANCEL_PREFIX), "{err}");
    }
}
