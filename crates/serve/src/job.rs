//! Job identity and lifecycle: what a tenant submits, and the states the
//! scheduler moves it through.

use datasculpt_core::DataSculptConfig;
use datasculpt_data::{DatasetName, TextDataset};
use datasculpt_llm::ModelId;
use datasculpt_store::RunFingerprint;

/// Everything that identifies one labeling job: the run a tenant asked
/// for, pinned tightly enough that a daemon restart re-derives the *same*
/// [`RunFingerprint`] and resumes the job's durable directory
/// bit-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Daemon-assigned job id (1-based, monotonically increasing).
    pub id: u64,
    /// Owning tenant (budget account).
    pub tenant: String,
    /// Dataset name (`youtube`, `sms`, …).
    pub dataset: String,
    /// Config preset (`base`, `cot`, `sc`, `kate`).
    pub config: String,
    /// Model short name (`gpt-3.5`, `gpt-4`, `llama-7b`, …).
    pub model: String,
    /// Seed for the dataset subsample, the config preset, and the
    /// simulated backend (one knob, mirroring the CLI).
    pub seed: u64,
    /// Dataset scale factor as `f64` bits (1.0 = full size).
    pub scale_bits: u64,
    /// Query-iteration budget for the run.
    pub queries: u64,
}

impl JobSpec {
    /// Parse the dataset name, or explain which are valid.
    pub fn dataset_name(&self) -> Result<DatasetName, String> {
        DatasetName::parse(&self.dataset)
            .ok_or_else(|| format!("unknown dataset '{}'", self.dataset))
    }

    /// Parse the model short name (the CLI's `--model` vocabulary).
    pub fn model_id(&self) -> Result<ModelId, String> {
        match self.model.as_str() {
            "gpt-3.5" => Ok(ModelId::Gpt35Turbo),
            "gpt-4" => Ok(ModelId::Gpt4),
            "llama-7b" => Ok(ModelId::Llama2Chat7b),
            "llama-13b" => Ok(ModelId::Llama2Chat13b),
            "llama-70b" => Ok(ModelId::Llama2Chat70b),
            other => Err(format!(
                "unknown model '{other}' (gpt-3.5 gpt-4 llama-7b llama-13b llama-70b)"
            )),
        }
    }

    /// Build the pipeline configuration this job runs with.
    pub fn pipeline_config(&self) -> Result<DataSculptConfig, String> {
        let mut config = match self.config.as_str() {
            "base" => DataSculptConfig::base(self.seed),
            "cot" => DataSculptConfig::cot(self.seed),
            "sc" => DataSculptConfig::sc(self.seed),
            "kate" => DataSculptConfig::kate(self.seed),
            other => return Err(format!("unknown config '{other}' (base|cot|sc|kate)")),
        };
        config.num_queries = self.queries as usize;
        config.threads = 1; // parallelism lives in the scheduler pool
        Ok(config)
    }

    /// The durable-run fingerprint a resume is verified against.
    pub fn fingerprint(&self) -> Result<RunFingerprint, String> {
        Ok(RunFingerprint {
            dataset: self.dataset_name()?.to_string(),
            dataset_seed: self.seed,
            scale_bits: self.scale_bits,
            model: self.model_id()?.api_name().to_string(),
            llm_seed: self.seed,
            config: self.pipeline_config()?,
        })
    }

    /// Load this job's dataset split.
    pub fn load_dataset(&self) -> Result<TextDataset, String> {
        let name = self.dataset_name()?;
        let scale = f64::from_bits(self.scale_bits);
        Ok(if (scale - 1.0).abs() < 1e-12 {
            name.load(self.seed)
        } else {
            name.load_scaled(self.seed, scale)
        })
    }

    /// Validate every derivable field at admission time.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenant.is_empty() {
            return Err("tenant must be non-empty".into());
        }
        if self.queries == 0 {
            return Err("queries must be >= 1".into());
        }
        let scale = f64::from_bits(self.scale_bits);
        if !(scale > 0.0 && scale <= 1.0) {
            return Err(format!("scale {scale} out of range (0, 1]"));
        }
        self.fingerprint().map(|_| ())
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobState {
    /// Accepted and waiting for a scheduler slot.
    Queued,
    /// Currently executing on the pool (or in-flight when the daemon
    /// died — re-queued on restart).
    Running,
    /// Stopped by admission control: the next iteration's projected cost
    /// would overdraw the tenant's budget. State is durably checkpointed;
    /// a budget top-up makes it runnable again.
    Paused,
    /// Ran to completion (terminal).
    Completed,
    /// Aborted by a backend/pipeline failure (terminal).
    Failed,
    /// Cancelled by request (terminal).
    Cancelled,
    /// Refused at admission: zero remaining tenant budget (terminal).
    Rejected,
}

impl JobState {
    /// Every state, in reporting order.
    pub const ALL: [JobState; 7] = [
        JobState::Queued,
        JobState::Running,
        JobState::Paused,
        JobState::Completed,
        JobState::Failed,
        JobState::Cancelled,
        JobState::Rejected,
    ];

    /// Stable wire name (protocol + registry field).
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Paused => "paused",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Rejected => "rejected",
        }
    }

    /// Parse a wire name back into a state.
    pub fn parse(name: &str) -> Option<JobState> {
        JobState::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// Whether the job can never run again.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled | JobState::Rejected
        )
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One job's full current status, as the service reports it.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The submitted spec.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Cumulative exact nano-USD this job has billed (from its latest
    /// durable iteration snapshot; bit-identical across crash/resume).
    pub cost_nanousd: u128,
    /// Iterations durably completed so far.
    pub iterations: u64,
    /// `RunResult::digest()` once completed (0 until then).
    pub digest: u64,
    /// Human-readable detail for paused/failed/rejected states.
    pub message: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            id: 1,
            tenant: "acme".into(),
            dataset: "youtube".into(),
            config: "cot".into(),
            model: "gpt-3.5".into(),
            seed: 13,
            scale_bits: 0.1f64.to_bits(),
            queries: 4,
        }
    }

    #[test]
    fn job_state_names_round_trip() {
        for s in JobState::ALL {
            assert_eq!(JobState::parse(s.name()), Some(s));
        }
        assert_eq!(JobState::parse("nope"), None);
    }

    #[test]
    fn valid_spec_builds_a_fingerprint() {
        let s = spec();
        s.validate().expect("valid");
        let fp = s.fingerprint().expect("fingerprint");
        assert_eq!(fp.dataset, "youtube");
        assert_eq!(fp.config.num_queries, 4);
        assert_eq!(fp.config.threads, 1);
    }

    #[test]
    fn invalid_fields_are_rejected_with_reasons() {
        let mut s = spec();
        s.dataset = "nope".into();
        assert!(s.validate().unwrap_err().contains("unknown dataset"));
        let mut s = spec();
        s.model = "gpt-9".into();
        assert!(s.validate().unwrap_err().contains("unknown model"));
        let mut s = spec();
        s.config = "zen".into();
        assert!(s.validate().unwrap_err().contains("unknown config"));
        let mut s = spec();
        s.queries = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.scale_bits = 7.5f64.to_bits();
        assert!(s.validate().unwrap_err().contains("out of range"));
        let mut s = spec();
        s.tenant = String::new();
        assert!(s.validate().is_err());
    }

    #[test]
    fn same_spec_same_fingerprint_digest() {
        let a = spec().fingerprint().expect("fp").digest();
        let b = spec().fingerprint().expect("fp").digest();
        assert_eq!(a, b, "restart re-derives the identical fingerprint");
    }
}
