//! The long-lived daemon: a listener (Unix socket, or TCP pinned to
//! localhost) accepting line-delimited JSON requests, a per-connection
//! handler thread, and a background scheduler thread driving
//! [`Service::run_round`] whenever work is runnable.
//!
//! Every request handler serializes through the one service mutex, so
//! the protocol semantics are exactly those of the [`Service`] methods;
//! the daemon adds only transport and liveness. `drain` finishes all
//! runnable work, answers with the merged report, and shuts the daemon
//! down.

use crate::protocol::{
    parse_request, render_drained, render_error, render_job, render_pong, render_status_header,
    render_submitted, Request,
};
use crate::service::{ServeError, Service};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this path (created on bind, removed on
    /// clean shutdown).
    Unix(PathBuf),
    /// TCP on `127.0.0.1:port` — never a routable interface.
    Tcp(u16),
}

impl Endpoint {
    /// Parse a CLI endpoint: `tcp:PORT` for localhost TCP, anything else
    /// is a Unix socket path.
    pub fn parse(text: &str) -> Result<Endpoint, String> {
        if let Some(port) = text.strip_prefix("tcp:") {
            let port: u16 = port
                .parse()
                .map_err(|_| format!("unparseable TCP port '{port}'"))?;
            return Ok(Endpoint::Tcp(port));
        }
        if text.is_empty() {
            return Err("socket path must be non-empty".into());
        }
        Ok(Endpoint::Unix(PathBuf::from(text)))
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "{}", path.display()),
            Endpoint::Tcp(port) => write!(f, "tcp:{port}"),
        }
    }
}

/// A bidirectional client connection (Unix or TCP).
trait Conn: Read + Write + Send {}
impl Conn for UnixStream {}
impl Conn for TcpStream {}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn bind(endpoint: &Endpoint) -> std::io::Result<Listener> {
        match endpoint {
            Endpoint::Unix(path) => {
                // A stale socket file from a crashed daemon must not
                // block the restart; connections to it are long dead.
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Unix(listener))
            }
            Endpoint::Tcp(port) => {
                let listener = TcpListener::bind(("127.0.0.1", *port))?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Tcp(listener))
            }
        }
    }

    /// Accept one connection if ready (`None` on `WouldBlock`).
    fn accept(&self) -> std::io::Result<Option<Box<dyn Conn>>> {
        let result: std::io::Result<Box<dyn Conn>> = match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Box::new(s) as Box<dyn Conn>),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Box::new(s) as Box<dyn Conn>),
        };
        match result {
            Ok(conn) => Ok(Some(conn)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Serve until a client sends `drain`: accept connections, answer
/// requests, and keep the scheduler running in the background. Returns
/// once all runnable work is finished and the listener is closed.
pub fn run_daemon(service: Service, endpoint: &Endpoint) -> Result<(), ServeError> {
    let listener = Listener::bind(endpoint)
        .map_err(|e| ServeError::Invalid(format!("cannot bind {endpoint}: {e}")))?;
    let service = Arc::new(Mutex::new(service));
    let shutdown = Arc::new(AtomicBool::new(false));

    // The scheduler: runs rounds whenever jobs are runnable, idles
    // politely otherwise. Connection handlers interleave between rounds
    // because both sides go through the service mutex.
    let scheduler = {
        let service = service.clone();
        let shutdown = shutdown.clone();
        // ds-lint: allow(raw-thread): control-plane scheduler loop; job execution inside run_round still goes through the sanctioned exec::Pool
        std::thread::spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                let ran = {
                    let mut svc = lock_service(&service);
                    if svc.has_runnable() {
                        // A failed round is a durable-state write error;
                        // the daemon keeps serving status requests.
                        svc.run_round().is_ok()
                    } else {
                        false
                    }
                };
                if !ran {
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        })
    };

    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(Some(conn)) => {
                let service = service.clone();
                let shutdown = shutdown.clone();
                // ds-lint: allow(raw-thread): one accept-loop handler per client connection; blocking socket reads would starve job execution on the exec::Pool
                std::thread::spawn(move || handle_connection(conn, &service, &shutdown));
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(5)),
            Err(_) => break,
        }
    }

    scheduler.join().ok();
    if let Endpoint::Unix(path) = endpoint {
        std::fs::remove_file(path).ok();
    }
    Ok(())
}

fn lock_service<'a>(service: &'a Arc<Mutex<Service>>) -> std::sync::MutexGuard<'a, Service> {
    match service.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Serve one client: a loop of request lines, each answered per the
/// protocol. A `drain` request finishes the work, answers, and trips the
/// daemon-wide shutdown flag.
fn handle_connection(
    mut conn: Box<dyn Conn>,
    service: &Arc<Mutex<Service>>,
    shutdown: &Arc<AtomicBool>,
) {
    let mut reader = BufReader::new(ConnReader(&mut conn));
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut reply: Vec<String> = Vec::new();
        let mut drained = false;
        match parse_request(line.trim_end()) {
            Err(message) => reply.push(render_error(&message)),
            Ok(Request::Ping) => reply.push(render_pong()),
            Ok(Request::Submit(request)) => {
                let mut svc = lock_service(service);
                match svc.submit(request) {
                    Ok(status) => reply.push(render_submitted(&status)),
                    Err(e) => reply.push(render_error(&e.to_string())),
                }
            }
            Ok(Request::Status { job: Some(id) }) => {
                let svc = lock_service(service);
                match svc.status(id) {
                    Some(status) => reply.push(render_job(status)),
                    None => reply.push(render_error(&format!("no such job {id}"))),
                }
            }
            Ok(Request::Status { job: None }) => {
                let svc = lock_service(service);
                let all: Vec<String> = svc.jobs().map(render_job).collect();
                reply.push(render_status_header(all.len()));
                reply.extend(all);
            }
            Ok(Request::Cancel { job }) => {
                let mut svc = lock_service(service);
                match svc.cancel(job) {
                    Ok(status) => reply.push(render_job(&status)),
                    Err(e) => reply.push(render_error(&e.to_string())),
                }
            }
            Ok(Request::Drain) => {
                let mut svc = lock_service(service);
                match svc.drain() {
                    Ok(report) => reply.push(render_drained(&report)),
                    Err(e) => reply.push(render_error(&e.to_string())),
                }
                drained = true;
            }
        }
        let mut out = String::new();
        for line in reply {
            out.push_str(&line);
            out.push('\n');
        }
        if reader.get_mut().0.write_all(out.as_bytes()).is_err() {
            return;
        }
        reader.get_mut().0.flush().ok();
        if drained {
            shutdown.store(true, Ordering::SeqCst);
            return;
        }
    }
}

/// Lets the handler keep one `BufReader` over the connection while still
/// writing replies to the same stream.
struct ConnReader<'a>(&'a mut Box<dyn Conn>);

impl Read for ConnReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.0.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use std::sync::atomic::AtomicU64;

    static NEXT: AtomicU64 = AtomicU64::new(0);

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ds_serve_daemon_{}_{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("tempdir");
        dir
    }

    fn request(stream: &mut UnixStream, line: &str, lines: usize) -> Vec<String> {
        stream.write_all(line.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut out = Vec::new();
        for _ in 0..lines {
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("read");
            out.push(reply.trim_end().to_string());
        }
        out
    }

    #[test]
    fn daemon_serves_submit_status_drain_over_a_unix_socket() {
        let dir = tempdir();
        let endpoint = Endpoint::Unix(dir.join("serve.sock"));
        let service = Service::open(&dir.join("state"), ServeConfig::default()).expect("open");
        let daemon = {
            let endpoint = endpoint.clone();
            // ds-lint: allow(raw-thread): test drives the daemon from a
            // client thread; the daemon itself must block in its accept loop.
            std::thread::spawn(move || run_daemon(service, &endpoint))
        };

        // Wait for the socket to exist, then connect.
        let Endpoint::Unix(path) = &endpoint else {
            unreachable!()
        };
        for _ in 0..500 {
            if path.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut stream = UnixStream::connect(path).expect("connect");

        let pong = request(&mut stream, "{\"op\":\"ping\"}", 1);
        assert!(pong[0].contains("\"pong\":true"), "{pong:?}");

        let submitted = request(
            &mut stream,
            "{\"op\":\"submit\",\"tenant\":\"acme\",\"dataset\":\"youtube\",\
             \"scale\":\"0.05\",\"queries\":2,\"seed\":13,\
             \"budget_nanousd\":100000000000}",
            1,
        );
        assert!(submitted[0].contains("\"ok\":true"), "{submitted:?}");
        assert!(submitted[0].contains("\"job\":1"), "{submitted:?}");

        let bad = request(&mut stream, "{\"op\":\"warp\"}", 1);
        assert!(bad[0].contains("\"ok\":false"), "{bad:?}");

        let drained = request(&mut stream, "{\"op\":\"drain\"}", 1);
        assert!(drained[0].contains("\"drained\":true"), "{drained:?}");
        assert!(drained[0].contains("\"completed\":1"), "{drained:?}");

        daemon.join().expect("join").expect("daemon exit");
        assert!(!path.exists(), "socket removed on clean shutdown");

        // Status survives in durable state: reopen and check.
        let reopened = Service::open(&dir.join("state"), ServeConfig::default()).expect("reopen");
        let status = reopened.status(1).expect("job 1");
        assert_eq!(status.state, crate::job::JobState::Completed);
        std::fs::remove_dir_all(&dir).ok();
    }
}
