//! The durable job registry: an append-only JSONL log of submits and
//! state transitions, replayed on daemon start so a crash loses nothing.
//!
//! Each line is a flat JSON object in the same dialect as the trace
//! schema (strings, unsigned integers, booleans — parsed by
//! [`datasculpt_obs::schema::parse_object`]). Records are synced before
//! the daemon acknowledges the operation; a line torn by a crash inside
//! `write(2)` is detected on replay and dropped (the client never got an
//! ack for it), mirroring the response store's torn-tail recovery.

use crate::job::{JobSpec, JobState};
use datasculpt_obs::jsonl::escape_json;
use datasculpt_obs::schema::{parse_object, JsonValue};
use datasculpt_store::{KillSwitch, StoreError};
use std::io::Write;
use std::path::{Path, PathBuf};

/// File name of the job registry inside a service state directory.
pub const REGISTRY_FILE: &str = "jobs.log";

/// One replayed registry record.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryRecord {
    /// A job submission, with the tenant budget top-up that rode along.
    Submit {
        /// The submitted job.
        spec: JobSpec,
        /// Nano-USD added to the tenant's budget by this submit.
        budget_nanousd: u128,
    },
    /// A job state transition.
    State {
        /// The job id.
        id: u64,
        /// The state entered.
        state: JobState,
        /// Cumulative job cost at the transition.
        cost_nanousd: u128,
        /// Durably completed iterations at the transition.
        iterations: u64,
        /// Run digest (0 unless completed).
        digest: u64,
        /// Detail message.
        message: String,
    },
}

/// Append-only, replayable job log.
#[derive(Debug)]
pub struct JobRegistry {
    path: PathBuf,
    file: std::fs::File,
    kill: Option<KillSwitch>,
}

impl JobRegistry {
    /// Open (or create) the registry in `state_dir`, replaying every
    /// intact record. A torn final line is dropped; `true` in the return
    /// marks that a tear was found.
    pub fn open(state_dir: &Path) -> Result<(JobRegistry, Vec<RegistryRecord>, bool), StoreError> {
        let path = state_dir.join(REGISTRY_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(StoreError::io(&path, "read", &e)),
        };
        let mut records = Vec::new();
        let mut torn = false;
        let mut clean_len = 0u64;
        for raw in text.split_inclusive('\n') {
            let line = raw.trim_end_matches('\n');
            if line.trim().is_empty() {
                clean_len += raw.len() as u64;
                continue;
            }
            match parse_record(line) {
                // A record is only clean if its terminating newline made
                // it to disk; a complete-looking line without one is a
                // torn write caught mid-record.
                Ok(r) if raw.ends_with('\n') => {
                    records.push(r);
                    clean_len += raw.len() as u64;
                }
                // Only the tail can be torn in an append-only,
                // synced-per-record log: stop replaying here.
                _ => {
                    torn = true;
                    break;
                }
            }
        }
        if torn {
            // Drop the torn bytes so later appends start on a clean line.
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| StoreError::io(&path, "open", &e))?;
            f.set_len(clean_len)
                .map_err(|e| StoreError::io(&path, "truncate", &e))?;
            f.sync_data()
                .map_err(|e| StoreError::io(&path, "sync", &e))?;
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::io(&path, "open", &e))?;
        Ok((
            JobRegistry {
                path,
                file,
                kill: None,
            },
            records,
            torn,
        ))
    }

    /// Attach a crash-injection switch: once tripped, appends are
    /// silently dropped (the process is "dead"; nothing reaches disk),
    /// exactly like the durable checkpointer under the same switch.
    pub fn with_kill_switch(mut self, kill: KillSwitch) -> Self {
        self.set_kill_switch(kill);
        self
    }

    /// In-place form of [`with_kill_switch`](Self::with_kill_switch).
    pub fn set_kill_switch(&mut self, kill: KillSwitch) {
        self.kill = Some(kill);
    }

    /// Durably append a submit record.
    pub fn append_submit(
        &mut self,
        spec: &JobSpec,
        budget_nanousd: u128,
    ) -> Result<(), StoreError> {
        self.append_line(&render_submit(spec, budget_nanousd))
    }

    /// Durably append a state-transition record.
    pub fn append_state(
        &mut self,
        id: u64,
        state: JobState,
        cost_nanousd: u128,
        iterations: u64,
        digest: u64,
        message: &str,
    ) -> Result<(), StoreError> {
        self.append_line(&render_state(
            id,
            state,
            cost_nanousd,
            iterations,
            digest,
            message,
        ))
    }

    fn append_line(&mut self, line: &str) -> Result<(), StoreError> {
        if self.kill.as_ref().is_some_and(KillSwitch::is_dead) {
            return Ok(());
        }
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .map_err(|e| StoreError::io(&self.path, "append", &e))?;
        self.file
            .sync_data()
            .map_err(|e| StoreError::io(&self.path, "sync", &e))
    }
}

fn render_submit(spec: &JobSpec, budget_nanousd: u128) -> String {
    format!(
        concat!(
            "{{\"rec\":\"submit\",\"id\":{},\"tenant\":\"{}\",\"dataset\":\"{}\",",
            "\"config\":\"{}\",\"model\":\"{}\",\"seed\":{},\"scale_bits\":{},",
            "\"queries\":{},\"budget_nanousd\":{}}}"
        ),
        spec.id,
        escape_json(&spec.tenant),
        escape_json(&spec.dataset),
        escape_json(&spec.config),
        escape_json(&spec.model),
        spec.seed,
        spec.scale_bits,
        spec.queries,
        budget_nanousd,
    )
}

fn render_state(
    id: u64,
    state: JobState,
    cost_nanousd: u128,
    iterations: u64,
    digest: u64,
    message: &str,
) -> String {
    format!(
        concat!(
            "{{\"rec\":\"state\",\"id\":{},\"state\":\"{}\",\"cost_nanousd\":{},",
            "\"iterations\":{},\"digest\":{},\"message\":\"{}\"}}"
        ),
        id,
        state.name(),
        cost_nanousd,
        iterations,
        digest,
        escape_json(message),
    )
}

fn parse_record(line: &str) -> Result<RegistryRecord, String> {
    let fields = parse_object(line)?;
    let get =
        |key: &str| -> Option<&JsonValue> { fields.iter().find(|(k, _)| k == key).map(|(_, v)| v) };
    let uint = |key: &str| -> Result<u128, String> {
        match get(key) {
            Some(JsonValue::UInt(n)) => Ok(*n),
            _ => Err(format!("missing integer field '{key}'")),
        }
    };
    let text = |key: &str| -> Result<String, String> {
        match get(key) {
            Some(JsonValue::Str(s)) => Ok(s.clone()),
            _ => Err(format!("missing string field '{key}'")),
        }
    };
    let narrow = |key: &str| -> Result<u64, String> {
        u64::try_from(uint(key)?).map_err(|_| format!("field '{key}' out of u64 range"))
    };
    match text("rec")?.as_str() {
        "submit" => Ok(RegistryRecord::Submit {
            spec: JobSpec {
                id: narrow("id")?,
                tenant: text("tenant")?,
                dataset: text("dataset")?,
                config: text("config")?,
                model: text("model")?,
                seed: narrow("seed")?,
                scale_bits: narrow("scale_bits")?,
                queries: narrow("queries")?,
            },
            budget_nanousd: uint("budget_nanousd")?,
        }),
        "state" => Ok(RegistryRecord::State {
            id: narrow("id")?,
            state: JobState::parse(&text("state")?)
                .ok_or_else(|| "unknown job state".to_string())?,
            cost_nanousd: uint("cost_nanousd")?,
            iterations: narrow("iterations")?,
            digest: narrow("digest")?,
            message: text("message")?,
        }),
        other => Err(format!("unknown registry record kind '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ds_serve_registry_{}_{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("tempdir");
        dir
    }

    fn spec(id: u64) -> JobSpec {
        JobSpec {
            id,
            tenant: "acme \"quoted\"".into(),
            dataset: "youtube".into(),
            config: "cot".into(),
            model: "gpt-3.5".into(),
            seed: 13,
            scale_bits: 0.1f64.to_bits(),
            queries: 4,
        }
    }

    #[test]
    fn records_round_trip_through_reopen() {
        let dir = tempdir();
        let (mut reg, records, torn) = JobRegistry::open(&dir).expect("open");
        assert!(records.is_empty());
        assert!(!torn);
        reg.append_submit(&spec(1), 500).expect("submit");
        reg.append_state(1, JobState::Completed, 123, 4, 0xdead, "done")
            .expect("state");
        drop(reg);

        let (_reg, records, torn) = JobRegistry::open(&dir).expect("reopen");
        assert!(!torn);
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0],
            RegistryRecord::Submit {
                spec: spec(1),
                budget_nanousd: 500
            }
        );
        assert_eq!(
            records[1],
            RegistryRecord::State {
                id: 1,
                state: JobState::Completed,
                cost_nanousd: 123,
                iterations: 4,
                digest: 0xdead,
                message: "done".into(),
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_flagged() {
        let dir = tempdir();
        let (mut reg, _, _) = JobRegistry::open(&dir).expect("open");
        reg.append_submit(&spec(1), 10).expect("submit");
        reg.append_submit(&spec(2), 20).expect("submit");
        drop(reg);
        // Tear into the middle of the final record.
        datasculpt_store::tear_tail(&dir.join(REGISTRY_FILE), 7).expect("tear");

        let (_reg, records, torn) = JobRegistry::open(&dir).expect("reopen");
        assert!(torn);
        assert_eq!(records.len(), 1, "only the intact prefix replays");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tripped_kill_switch_drops_appends() {
        let dir = tempdir();
        let kill = KillSwitch::new();
        let (reg, _, _) = JobRegistry::open(&dir).expect("open");
        let mut reg = reg.with_kill_switch(kill.clone());
        reg.append_submit(&spec(1), 10).expect("live append");
        kill.kill();
        reg.append_submit(&spec(2), 20)
            .expect("dead append is a no-op");
        drop(reg);
        let (_reg, records, _) = JobRegistry::open(&dir).expect("reopen");
        assert_eq!(records.len(), 1, "nothing after the kill reached disk");
        std::fs::remove_dir_all(&dir).ok();
    }
}
