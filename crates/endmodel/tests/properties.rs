//! Property-based tests for the end-model substrate.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt_endmodel::logreg::{softmax, SparseRow};
use datasculpt_endmodel::{
    accuracy, entropy, f1_positive, log_loss, macro_f1, ConfusionMatrix, SoftmaxRegression,
    TrainConfig,
};
use proptest::prelude::*;

proptest! {
    /// Softmax always returns a distribution, for any finite logits.
    #[test]
    fn softmax_simplex(logits in proptest::collection::vec(-1e6f64..1e6, 1..8)) {
        let p = softmax(&logits);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    /// Model probabilities are distributions before and after training.
    #[test]
    fn predictions_are_distributions(
        rows in proptest::collection::vec(
            proptest::collection::vec((0u32..16, -2.0f32..2.0), 1..5), 1..20),
        labels in proptest::collection::vec(0usize..2, 20),
    ) {
        let n = rows.len();
        let rows: Vec<SparseRow> = rows;
        let targets: Vec<Vec<f64>> = labels[..n].iter().map(|&y| {
            let mut t = vec![0.0; 2];
            t[y] = 1.0;
            t
        }).collect();
        let mut m = SoftmaxRegression::new(16, 2);
        let p0 = m.predict_proba_sparse_one(&rows[0]);
        prop_assert_eq!(p0.clone(), vec![0.5, 0.5]);
        m.fit_sparse(&rows, &targets, None, &TrainConfig { epochs: 3, ..TrainConfig::default() });
        for r in &rows {
            let p = m.predict_proba_sparse_one(r);
            let sum: f64 = p.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|x| x.is_finite()));
        }
    }

    /// Accuracy and F1 are within [0, 1]; accuracy of identical slices is 1.
    #[test]
    fn metric_bounds(pred in proptest::collection::vec(0usize..3, 1..40),
                     truth in proptest::collection::vec(0usize..3, 1..40)) {
        let n = pred.len().min(truth.len());
        let (p, t) = (&pred[..n], &truth[..n]);
        let acc = accuracy(p, t);
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert!((0.0..=1.0).contains(&f1_positive(p, t)));
        prop_assert!((0.0..=1.0).contains(&macro_f1(p, t, 3)));
        prop_assert_eq!(accuracy(p, p), 1.0);
        let cm = ConfusionMatrix::new(p, t, 3);
        prop_assert_eq!(cm.total(), n);
        prop_assert!((cm.accuracy() - acc).abs() < 1e-12);
    }

    /// Entropy is non-negative and maximized by the uniform distribution.
    #[test]
    fn entropy_bounds(raw in proptest::collection::vec(0.01f64..1.0, 2..6)) {
        let z: f64 = raw.iter().sum();
        let p: Vec<f64> = raw.iter().map(|x| x / z).collect();
        let h = entropy(&p);
        let uniform = vec![1.0 / p.len() as f64; p.len()];
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= entropy(&uniform) + 1e-9);
    }

    /// Log loss decreases as the predicted mass on the truth increases.
    #[test]
    fn log_loss_monotone(conf in 0.5f64..0.99) {
        let better = log_loss(&[vec![conf, 1.0 - conf]], &[0]);
        let worse = log_loss(&[vec![conf - 0.3, 1.0 - conf + 0.3]], &[0]);
        prop_assert!(better < worse);
    }
}
