//! A one-hidden-layer MLP end model on sparse features.
//!
//! The paper's end model is logistic regression; WRENCH also evaluates MLP
//! end models, which capture simple feature interactions (e.g. negation
//! patterns) that a linear model cannot. This implementation mirrors
//! [`crate::SoftmaxRegression`]'s sparse interface: leaky-ReLU hidden layer,
//! softmax output, mini-batch SGD on (optionally soft) targets with
//! optional sample weights.

use crate::logreg::{softmax, SparseRow, TrainConfig};
use datasculpt_text::rng::derive_seed;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Leaky-ReLU slope (prevents dead hidden units under hot learning rates).
const LEAK: f64 = 0.01;

/// One-hidden-layer MLP: `sparse input → LeakyReLU(hidden) → softmax(classes)`.
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    /// `hidden × dim`, row-major by hidden unit.
    w1: Vec<f64>,
    b1: Vec<f64>,
    /// `classes × hidden`, row-major by class.
    w2: Vec<f64>,
    b2: Vec<f64>,
    dim: usize,
    hidden: usize,
    n_classes: usize,
}

impl MlpClassifier {
    /// A randomly initialized MLP (He-style scaling, seeded).
    pub fn new(dim: usize, hidden: usize, n_classes: usize, seed: u64) -> Self {
        assert!(dim > 0 && hidden > 0 && n_classes >= 2, "bad shape");
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0x4D4C50)); // "MLP"
        let scale1 = (2.0 / dim as f64).sqrt();
        let scale2 = (2.0 / hidden as f64).sqrt();
        Self {
            w1: (0..hidden * dim)
                .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * scale1)
                .collect(),
            b1: vec![0.0; hidden],
            w2: (0..n_classes * hidden)
                .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * scale2)
                .collect(),
            b2: vec![0.0; n_classes],
            dim,
            hidden,
            n_classes,
        }
    }

    /// Hidden-layer activations for a sparse row.
    fn hidden_forward(&self, row: &[(u32, f32)]) -> Vec<f64> {
        let mut h = self.b1.clone();
        for &(d, v) in row {
            debug_assert!((d as usize) < self.dim, "dimension out of range");
            let col = d as usize;
            for (hu, wrow) in h.iter_mut().zip(self.w1.chunks_exact(self.dim)) {
                *hu += wrow.get(col).copied().unwrap_or(0.0) * v as f64;
            }
        }
        for hu in h.iter_mut() {
            if *hu < 0.0 {
                *hu *= LEAK;
            }
        }
        h
    }

    /// Class probabilities for one sparse row.
    pub fn predict_proba_sparse_one(&self, row: &[(u32, f32)]) -> Vec<f64> {
        let h = self.hidden_forward(row);
        let mut z = self.b2.clone();
        for (zc, w) in z.iter_mut().zip(self.w2.chunks_exact(self.hidden)) {
            *zc += w.iter().zip(&h).map(|(a, b)| a * b).sum::<f64>();
        }
        softmax(&z)
    }

    /// Hard predictions.
    pub fn predict_sparse(&self, rows: &[SparseRow]) -> Vec<usize> {
        rows.iter()
            .map(|r| {
                let p = self.predict_proba_sparse_one(r);
                let mut best = 0;
                let mut best_p = f64::NEG_INFINITY;
                for (c, &pc) in p.iter().enumerate() {
                    if pc > best_p {
                        best = c;
                        best_p = pc;
                    }
                }
                best
            })
            .collect()
    }

    /// Fit with mini-batch SGD on soft targets (per-example updates within
    /// the batch; the batch size only controls the shuffle granularity).
    pub fn fit_sparse(
        &mut self,
        rows: &[SparseRow],
        targets: &[Vec<f64>],
        sample_weights: Option<&[f64]>,
        config: &TrainConfig,
    ) {
        assert_eq!(rows.len(), targets.len(), "target length mismatch");
        if let Some(w) = sample_weights {
            assert_eq!(w.len(), targets.len(), "weight length mismatch");
        }
        for t in targets {
            assert_eq!(t.len(), self.n_classes, "target width mismatch");
        }
        let n = rows.len();
        if n == 0 {
            return;
        }
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(derive_seed(config.seed, 0x4D4C51));
        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            let lr = config.learning_rate / (1.0 + 0.3 * (epoch as f64).sqrt());
            for &i in &order {
                let wi = sample_weights.map_or(1.0, |w| w.get(i).copied().unwrap_or(1.0));
                if wi == 0.0 {
                    continue;
                }
                let row = rows.get(i).map(Vec::as_slice).unwrap_or(&[]);
                let h = self.hidden_forward(row);
                let mut z = self.b2.clone();
                for (zc, w) in z.iter_mut().zip(self.w2.chunks_exact(self.hidden)) {
                    *zc += w.iter().zip(&h).map(|(a, b)| a * b).sum::<f64>();
                }
                let p = softmax(&z);
                // Output-layer gradient.
                let ti = targets.get(i).map(Vec::as_slice).unwrap_or(&[]);
                let err: Vec<f64> = p.iter().zip(ti).map(|(&pc, &tc)| wi * (pc - tc)).collect();
                // Hidden gradient (before ReLU mask).
                let mut gh = vec![0.0f64; self.hidden];
                for (&e, w) in err.iter().zip(self.w2.chunks_exact(self.hidden)) {
                    for (ghu, &wu) in gh.iter_mut().zip(w) {
                        *ghu += e * wu;
                    }
                }
                // Update output layer.
                for ((&e, w), b2c) in err
                    .iter()
                    .zip(self.w2.chunks_exact_mut(self.hidden))
                    .zip(self.b2.iter_mut())
                {
                    for (wu, &hu) in w.iter_mut().zip(&h) {
                        *wu -= lr * (e * hu + config.l2 * *wu);
                    }
                    *b2c -= lr * e;
                }
                // Update hidden layer (leaky-ReLU derivative).
                for (((&ghu, &hu), wrow), b1u) in gh
                    .iter()
                    .zip(&h)
                    .zip(self.w1.chunks_exact_mut(self.dim))
                    .zip(self.b1.iter_mut())
                {
                    if ghu == 0.0 {
                        continue;
                    }
                    let slope = if hu > 0.0 { 1.0 } else { LEAK };
                    let g = ghu * slope;
                    for &(d, v) in row {
                        if let Some(w) = wrow.get_mut(d as usize) {
                            *w -= lr * (g * v as f64 + config.l2 * *w);
                        }
                    }
                    *b1u -= lr * g;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<SparseRow>, Vec<Vec<f64>>, Vec<usize>) {
        // XOR over two binary features — not linearly separable.
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..50 {
            for (a, b) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                let mut row: SparseRow = vec![(2, 1.0)]; // bias-ish always-on
                if a == 1 {
                    row.push((0, 1.0));
                }
                if b == 1 {
                    row.push((1, 1.0));
                }
                let y = (a ^ b) as usize;
                rows.push(row);
                let mut t = vec![0.0; 2];
                t[y] = 1.0;
                targets.push(t);
                labels.push(y);
            }
        }
        (rows, targets, labels)
    }

    #[test]
    fn mlp_solves_xor_where_linear_cannot() {
        let (rows, targets, labels) = xor_data();
        let cfg = TrainConfig {
            epochs: 300,
            learning_rate: 0.3,
            l2: 0.0,
            batch_size: 8,
            seed: 1,
        };
        let mut mlp = MlpClassifier::new(3, 16, 2, 3);
        mlp.fit_sparse(&rows, &targets, None, &cfg);
        let pred = mlp.predict_sparse(&rows);
        let acc =
            pred.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / labels.len() as f64;
        assert!(acc > 0.95, "MLP XOR accuracy {acc}");

        // The linear model tops out near chance on XOR.
        let mut lin = crate::SoftmaxRegression::new(3, 2);
        lin.fit_sparse(&rows, &targets, None, &cfg);
        let lpred = lin.predict_sparse(&rows);
        let lacc =
            lpred.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / labels.len() as f64;
        assert!(lacc < 0.8, "linear model should fail XOR, got {lacc}");
    }

    #[test]
    fn probabilities_are_distributions() {
        let mlp = MlpClassifier::new(4, 8, 3, 0);
        let p = mlp.predict_proba_sparse_one(&[(0, 1.0), (3, -0.5)]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let (rows, targets, _) = xor_data();
        let cfg = TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        };
        let mut a = MlpClassifier::new(3, 8, 2, 7);
        a.fit_sparse(&rows, &targets, None, &cfg);
        let mut b = MlpClassifier::new(3, 8, 2, 7);
        b.fit_sparse(&rows, &targets, None, &cfg);
        assert_eq!(
            a.predict_proba_sparse_one(&rows[0]),
            b.predict_proba_sparse_one(&rows[0])
        );
    }

    #[test]
    fn zero_weight_examples_are_skipped() {
        let (rows, targets, _) = xor_data();
        let weights = vec![0.0; rows.len()];
        let mut mlp = MlpClassifier::new(3, 8, 2, 5);
        let before = mlp.predict_proba_sparse_one(&rows[0]);
        mlp.fit_sparse(
            &rows,
            &targets,
            Some(&weights),
            &TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
        );
        assert_eq!(before, mlp.predict_proba_sparse_one(&rows[0]));
    }

    #[test]
    fn empty_training_is_noop() {
        let mut mlp = MlpClassifier::new(4, 4, 2, 0);
        mlp.fit_sparse(&[], &[], None, &TrainConfig::default());
        let p = mlp.predict_proba_sparse_one(&[]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
