//! Classification metrics reported in the paper's tables.

/// Plain accuracy.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty predictions");
    pred.iter().zip(truth).filter(|(p, t)| p == t).count() as f64 / pred.len() as f64
}

/// F1 of the positive class (class 1) — the score used for the imbalanced
/// SMS and Spouse datasets.
pub fn f1_positive(pred: &[usize], truth: &[usize]) -> f64 {
    f1_of_class(pred, truth, 1)
}

/// F1 of one class.
pub fn f1_of_class(pred: &[usize], truth: &[usize], class: usize) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for (&p, &t) in pred.iter().zip(truth) {
        match (p == class, t == class) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            _ => {}
        }
    }
    if tp == 0 {
        return 0.0;
    }
    let precision = tp as f64 / (tp + fp) as f64;
    let recall = tp as f64 / (tp + fn_) as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Macro-averaged F1 over all classes.
pub fn macro_f1(pred: &[usize], truth: &[usize], n_classes: usize) -> f64 {
    (0..n_classes)
        .map(|c| f1_of_class(pred, truth, c))
        .sum::<f64>()
        / n_classes as f64
}

/// Shannon entropy of a distribution (nats) — the uncertainty-sampling
/// score of §3.4.
pub fn entropy(probs: &[f64]) -> f64 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// Mean cross-entropy of predicted distributions against hard labels.
pub fn log_loss(probs: &[Vec<f64>], truth: &[usize]) -> f64 {
    assert_eq!(probs.len(), truth.len(), "length mismatch");
    assert!(!probs.is_empty(), "empty predictions");
    probs
        .iter()
        .zip(truth)
        .map(|(p, &t)| -(p.get(t).copied().unwrap_or(0.0).max(1e-12)).ln())
        .sum::<f64>()
        / probs.len() as f64
}

/// A confusion matrix (`truth × predicted`).
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    counts: Vec<usize>,
    n_classes: usize,
}

impl ConfusionMatrix {
    /// Tabulate predictions against truth.
    pub fn new(pred: &[usize], truth: &[usize], n_classes: usize) -> Self {
        assert_eq!(pred.len(), truth.len(), "length mismatch");
        let mut counts = vec![0usize; n_classes * n_classes];
        for (&p, &t) in pred.iter().zip(truth) {
            assert!(p < n_classes && t < n_classes, "class out of range");
            if let Some(slot) = counts.get_mut(t * n_classes + p) {
                *slot += 1;
            }
        }
        Self { counts, n_classes }
    }

    /// Count of `(truth, predicted)` (zero when out of range).
    pub fn get(&self, truth: usize, pred: usize) -> usize {
        self.counts
            .get(truth * self.n_classes + pred)
            .copied()
            .unwrap_or(0)
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total examples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Accuracy from the diagonal.
    pub fn accuracy(&self) -> f64 {
        let diag: usize = (0..self.n_classes).map(|c| self.get(c, c)).sum();
        if self.total() == 0 {
            0.0
        } else {
            diag as f64 / self.total() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    fn f1_matches_hand_computation() {
        // tp=2, fp=1, fn=1 -> p=2/3, r=2/3, f1=2/3.
        let pred = [1, 1, 1, 0, 0];
        let truth = [1, 1, 0, 1, 0];
        assert!((f1_positive(&pred, &truth) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn f1_zero_when_no_true_positives() {
        assert_eq!(f1_positive(&[0, 0], &[1, 1]), 0.0);
        assert_eq!(f1_positive(&[1, 1], &[0, 0]), 0.0);
    }

    #[test]
    fn macro_f1_averages_classes() {
        let pred = [0, 1, 2, 0];
        let truth = [0, 1, 2, 0];
        assert!((macro_f1(&pred, &truth, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
        let max = entropy(&[0.5, 0.5]);
        assert!((max - std::f64::consts::LN_2).abs() < 1e-12);
        assert!(entropy(&[0.9, 0.1]) < max);
    }

    #[test]
    fn log_loss_prefers_confident_correct() {
        let good = log_loss(&[vec![0.9, 0.1]], &[0]);
        let bad = log_loss(&[vec![0.1, 0.9]], &[0]);
        assert!(good < bad);
    }

    #[test]
    fn confusion_matrix_tabulates() {
        let cm = ConfusionMatrix::new(&[0, 1, 1, 0], &[0, 1, 0, 1], 2);
        assert_eq!(cm.get(0, 0), 1);
        assert_eq!(cm.get(0, 1), 1);
        assert_eq!(cm.get(1, 0), 1);
        assert_eq!(cm.get(1, 1), 1);
        assert_eq!(cm.total(), 4);
        assert!((cm.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = accuracy(&[0], &[0, 1]);
    }
}
