//! End-model substrate: the downstream classifier of the PWS pipeline.
//!
//! The paper trains a logistic-regression end model on BERT features using
//! the probabilistic labels emitted by the label model (the WRENCH
//! configuration). This crate provides exactly that, minus the external
//! dependencies: [`SoftmaxRegression`] is a multiclass logistic regression
//! trained by mini-batch SGD with L2 regularization that accepts *soft*
//! target distributions (cross-entropy against the label-model posterior),
//! and [`metrics`] implements the reported scores (accuracy, positive-class
//! F1 for imbalanced datasets, macro-F1, predictive entropy for the
//! uncertainty sampler, log-loss).

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod logreg;
pub mod metrics;
pub mod mlp;

pub use logreg::{SoftmaxRegression, TrainConfig};
pub use metrics::{accuracy, entropy, f1_positive, log_loss, macro_f1, ConfusionMatrix};
pub use mlp::MlpClassifier;
