//! Multiclass softmax regression with soft targets.

use datasculpt_text::rng::derive_seed;
use datasculpt_text::FeatureMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffle/init seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            learning_rate: 0.5,
            l2: 1e-4,
            batch_size: 64,
            seed: 0,
        }
    }
}

/// Multiclass logistic regression (`W: n_classes × dim`, plus bias).
///
/// Trained by mini-batch SGD on the cross-entropy between the softmax
/// output and a *soft* target distribution per example — the standard PWS
/// end-model objective, where targets are the label-model posteriors.
#[derive(Debug, Clone)]
pub struct SoftmaxRegression {
    weights: Vec<f64>,
    bias: Vec<f64>,
    dim: usize,
    n_classes: usize,
}

impl SoftmaxRegression {
    /// A zero-initialized model.
    pub fn new(dim: usize, n_classes: usize) -> Self {
        assert!(dim > 0 && n_classes >= 2, "bad shape {dim}x{n_classes}");
        Self {
            weights: vec![0.0; dim * n_classes],
            bias: vec![0.0; n_classes],
            dim,
            n_classes,
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Class logits for one feature row.
    fn logits(&self, x: &[f32]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.dim);
        let mut z = self.bias.clone();
        for (zc, row) in z.iter_mut().zip(self.weights.chunks_exact(self.dim)) {
            let mut acc = 0.0f64;
            for (w, v) in row.iter().zip(x) {
                acc += w * (*v as f64);
            }
            *zc += acc;
        }
        z
    }

    /// Softmax probabilities for one feature row.
    pub fn predict_proba_one(&self, x: &[f32]) -> Vec<f64> {
        softmax(&self.logits(x))
    }

    /// Softmax probabilities for a feature matrix (row-major
    /// `rows × n_classes`).
    pub fn predict_proba(&self, x: &FeatureMatrix) -> Vec<Vec<f64>> {
        (0..x.rows())
            .map(|i| self.predict_proba_one(x.row(i)))
            .collect()
    }

    /// Hard predictions.
    pub fn predict(&self, x: &FeatureMatrix) -> Vec<usize> {
        (0..x.rows())
            .map(|i| {
                let p = self.predict_proba_one(x.row(i));
                argmax(&p)
            })
            .collect()
    }

    /// Fit on features `x` and per-row soft targets (each a distribution of
    /// length `n_classes`). Optional per-row sample weights.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn fit(
        &mut self,
        x: &FeatureMatrix,
        targets: &[Vec<f64>],
        sample_weights: Option<&[f64]>,
        config: &TrainConfig,
    ) {
        assert_eq!(x.dim(), self.dim, "feature dim mismatch");
        assert_eq!(x.rows(), targets.len(), "target length mismatch");
        if let Some(w) = sample_weights {
            assert_eq!(w.len(), targets.len(), "weight length mismatch");
        }
        for t in targets {
            assert_eq!(t.len(), self.n_classes, "target width mismatch");
        }
        let n = x.rows();
        if n == 0 {
            return;
        }
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(derive_seed(config.seed, 0x1091));
        let batch = config.batch_size.max(1);
        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            // Simple 1/sqrt decay keeps late epochs stable.
            let lr = config.learning_rate / (1.0 + 0.3 * (epoch as f64).sqrt());
            for chunk in order.chunks(batch) {
                let mut gw = vec![0.0f64; self.dim * self.n_classes];
                let mut gb = vec![0.0f64; self.n_classes];
                let mut total_w = 0.0f64;
                for &i in chunk {
                    let xi = x.row(i);
                    let p = softmax(&self.logits(xi));
                    let wi = sample_weights.map_or(1.0, |w| w.get(i).copied().unwrap_or(1.0));
                    total_w += wi;
                    let ti = targets.get(i).map(Vec::as_slice).unwrap_or(&[]);
                    for ((gbc, grow), (&pc, &tc)) in gb
                        .iter_mut()
                        .zip(gw.chunks_exact_mut(self.dim))
                        .zip(p.iter().zip(ti))
                    {
                        let err = wi * (pc - tc);
                        *gbc += err;
                        if err != 0.0 {
                            for (g, v) in grow.iter_mut().zip(xi) {
                                *g += err * (*v as f64);
                            }
                        }
                    }
                }
                if total_w <= 0.0 {
                    continue;
                }
                let scale = lr / total_w;
                for (w, g) in self.weights.iter_mut().zip(&gw) {
                    *w -= scale * (g + config.l2 * *w * total_w);
                }
                for (b, g) in self.bias.iter_mut().zip(&gb) {
                    *b -= scale * g;
                }
            }
        }
    }
}

/// A sparse feature row: `(dimension, value)` pairs.
pub type SparseRow = Vec<(u32, f32)>;

impl SoftmaxRegression {
    /// Class logits for a sparse feature row.
    fn logits_sparse(&self, row: &[(u32, f32)]) -> Vec<f64> {
        let mut z = self.bias.clone();
        for (zc, w) in z.iter_mut().zip(self.weights.chunks_exact(self.dim)) {
            let mut acc = 0.0f64;
            for &(d, v) in row {
                acc += w.get(d as usize).copied().unwrap_or(0.0) * (v as f64);
            }
            *zc += acc;
        }
        z
    }

    /// Softmax probabilities for one sparse row.
    pub fn predict_proba_sparse_one(&self, row: &[(u32, f32)]) -> Vec<f64> {
        softmax(&self.logits_sparse(row))
    }

    /// Hard predictions for sparse rows.
    pub fn predict_sparse(&self, rows: &[SparseRow]) -> Vec<usize> {
        rows.iter()
            .map(|r| argmax(&self.predict_proba_sparse_one(r)))
            .collect()
    }

    /// Fit on sparse rows and soft targets. Identical objective to
    /// [`fit`](Self::fit); L2 decay is applied with the standard lazy
    /// weight-scaling trick so cost stays proportional to the nonzeros.
    ///
    /// # Panics
    /// Panics on shape mismatches or out-of-range dimensions.
    pub fn fit_sparse(
        &mut self,
        rows: &[SparseRow],
        targets: &[Vec<f64>],
        sample_weights: Option<&[f64]>,
        config: &TrainConfig,
    ) {
        assert_eq!(rows.len(), targets.len(), "target length mismatch");
        if let Some(w) = sample_weights {
            assert_eq!(w.len(), targets.len(), "weight length mismatch");
        }
        for t in targets {
            assert_eq!(t.len(), self.n_classes, "target width mismatch");
        }
        for r in rows {
            for &(d, _) in r {
                assert!((d as usize) < self.dim, "dimension {d} out of range");
            }
        }
        let n = rows.len();
        if n == 0 {
            return;
        }
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(derive_seed(config.seed, 0x1092));
        let batch = config.batch_size.max(1);
        // Lazy L2: weights are logically `scale * weights`.
        let mut scale = 1.0f64;
        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            let lr = config.learning_rate / (1.0 + 0.3 * (epoch as f64).sqrt());
            for chunk in order.chunks(batch) {
                let mut gb = vec![0.0f64; self.n_classes];
                // Sparse gradient accumulator: (class, dim) -> grad.
                let mut gw: Vec<(usize, u32, f64)> = Vec::new();
                let mut total_w = 0.0f64;
                for &i in chunk {
                    let row = rows.get(i).map(Vec::as_slice).unwrap_or(&[]);
                    let mut z = self.bias.clone();
                    for (zc, w) in z.iter_mut().zip(self.weights.chunks_exact(self.dim)) {
                        let mut acc = 0.0f64;
                        for &(d, v) in row.iter() {
                            acc += w.get(d as usize).copied().unwrap_or(0.0) * (v as f64);
                        }
                        *zc += acc * scale;
                    }
                    let p = softmax(&z);
                    let wi = sample_weights.map_or(1.0, |w| w.get(i).copied().unwrap_or(1.0));
                    total_w += wi;
                    let ti = targets.get(i).map(Vec::as_slice).unwrap_or(&[]);
                    for (c, (gbc, (&pc, &tc))) in gb.iter_mut().zip(p.iter().zip(ti)).enumerate() {
                        let err = wi * (pc - tc);
                        *gbc += err;
                        if err != 0.0 {
                            for &(d, v) in row.iter() {
                                gw.push((c, d, err * (v as f64)));
                            }
                        }
                    }
                }
                if total_w <= 0.0 {
                    continue;
                }
                let step = lr / total_w;
                // Lazy decay, then sparse update (divided by scale so the
                // logical weight moves by exactly `step * grad`).
                scale *= 1.0 - lr * config.l2;
                if scale < 1e-6 {
                    for w in self.weights.iter_mut() {
                        *w *= scale;
                    }
                    scale = 1.0;
                }
                for (c, d, g) in gw {
                    if let Some(slot) = self.weights.get_mut(c * self.dim + d as usize) {
                        *slot -= step * g / scale;
                    }
                }
                for (b, g) in self.bias.iter_mut().zip(&gb) {
                    *b -= step * g;
                }
            }
        }
        // Fold the scale back into the weights.
        if (scale - 1.0).abs() > 0.0 {
            for w in self.weights.iter_mut() {
                *w *= scale;
            }
        }
    }
}

/// Numerically stable softmax.
pub fn softmax(z: &[f64]) -> Vec<f64> {
    let m = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = z.iter().map(|v| (v - m).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &v) in xs.iter().enumerate() {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian blobs in 2-D.
    fn blobs(n: usize, seed: u64) -> (FeatureMatrix, Vec<usize>) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let y = i % 2;
            let (cx, cy) = if y == 0 { (-1.0, -1.0) } else { (1.0, 1.0) };
            data.push((cx + 0.4 * rng.gen::<f64>()) as f32);
            data.push((cy + 0.4 * rng.gen::<f64>()) as f32);
            labels.push(y);
        }
        (FeatureMatrix::new(data, n, 2), labels)
    }

    fn one_hot(labels: &[usize], c: usize) -> Vec<Vec<f64>> {
        labels
            .iter()
            .map(|&y| {
                let mut t = vec![0.0; c];
                t[y] = 1.0;
                t
            })
            .collect()
    }

    #[test]
    fn separable_blobs_reach_high_accuracy() {
        let (x, y) = blobs(400, 3);
        let mut m = SoftmaxRegression::new(2, 2);
        m.fit(&x, &one_hot(&y, 2), None, &TrainConfig::default());
        let pred = m.predict(&x);
        let acc = pred.iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.98, "accuracy {acc}");
    }

    #[test]
    fn soft_targets_train_too() {
        let (x, y) = blobs(400, 5);
        // Blur the targets: 0.8 on the true class.
        let targets: Vec<Vec<f64>> = y
            .iter()
            .map(|&yi| {
                let mut t = vec![0.2; 2];
                t[yi] = 0.8;
                t
            })
            .collect();
        let mut m = SoftmaxRegression::new(2, 2);
        m.fit(&x, &targets, None, &TrainConfig::default());
        let pred = m.predict(&x);
        let acc = pred.iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probabilities_are_distributions() {
        let (x, y) = blobs(100, 7);
        let mut m = SoftmaxRegression::new(2, 2);
        m.fit(&x, &one_hot(&y, 2), None, &TrainConfig::default());
        for p in m.predict_proba(&x) {
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn sample_weights_break_label_conflicts() {
        // The same point labeled both ways: the heavier weight wins.
        let x = FeatureMatrix::new(vec![1.0, 1.0, 1.0, 1.0], 2, 2);
        let targets = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut m = SoftmaxRegression::new(2, 2);
        m.fit(&x, &targets, Some(&[10.0, 1.0]), &TrainConfig::default());
        assert_eq!(m.predict(&x), vec![0, 0]);
        let mut m2 = SoftmaxRegression::new(2, 2);
        m2.fit(&x, &targets, Some(&[1.0, 10.0]), &TrainConfig::default());
        assert_eq!(m2.predict(&x), vec![1, 1]);
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = blobs(100, 11);
        let cfg = TrainConfig::default();
        let mut a = SoftmaxRegression::new(2, 2);
        a.fit(&x, &one_hot(&y, 2), None, &cfg);
        let mut b = SoftmaxRegression::new(2, 2);
        b.fit(&x, &one_hot(&y, 2), None, &cfg);
        assert_eq!(a.predict_proba_one(x.row(0)), b.predict_proba_one(x.row(0)));
    }

    #[test]
    fn empty_training_is_noop() {
        let x = FeatureMatrix::zeros(0, 3);
        let mut m = SoftmaxRegression::new(3, 2);
        m.fit(&x, &[], None, &TrainConfig::default());
        let p = m.predict_proba_one(&[0.0, 0.0, 0.0]);
        assert_eq!(p, vec![0.5, 0.5]);
    }

    #[test]
    fn sparse_fit_matches_dense_fit() {
        let (x, y) = blobs(300, 13);
        let sparse: Vec<SparseRow> = (0..x.rows())
            .map(|i| {
                x.row(i)
                    .iter()
                    .enumerate()
                    .map(|(d, &v)| (d as u32, v))
                    .collect()
            })
            .collect();
        let cfg = TrainConfig::default();
        let mut dense = SoftmaxRegression::new(2, 2);
        dense.fit(&x, &one_hot(&y, 2), None, &cfg);
        let mut sp = SoftmaxRegression::new(2, 2);
        sp.fit_sparse(&sparse, &one_hot(&y, 2), None, &cfg);
        let dense_pred = dense.predict(&x);
        let sp_pred = sp.predict_sparse(&sparse);
        let agree = dense_pred
            .iter()
            .zip(&sp_pred)
            .filter(|(a, b)| a == b)
            .count() as f64
            / y.len() as f64;
        assert!(agree > 0.97, "agreement {agree}");
        let acc = sp_pred.iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.97, "sparse accuracy {acc}");
    }

    #[test]
    fn sparse_high_dim_text_like_problem() {
        // 5000-dim sparse one-hot-ish rows, linearly separable by a single
        // indicative dimension per class.
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(4);
        let dim = 5000usize;
        let mut rows: Vec<SparseRow> = Vec::new();
        let mut labels = Vec::new();
        for i in 0..400 {
            let y = i % 2;
            let indicative = if y == 0 { 7u32 } else { 11u32 };
            let mut row: SparseRow = (0..20)
                .map(|_| (rng.gen_range(100..dim) as u32, 0.2f32))
                .collect();
            row.push((indicative, 0.8));
            rows.push(row);
            labels.push(y);
        }
        let mut m = SoftmaxRegression::new(dim, 2);
        m.fit_sparse(&rows, &one_hot(&labels, 2), None, &TrainConfig::default());
        let pred = m.predict_sparse(&rows);
        let acc = pred.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / 400.0;
        assert!(acc > 0.99, "sparse text accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sparse_rejects_bad_dims() {
        let mut m = SoftmaxRegression::new(4, 2);
        m.fit_sparse(
            &[vec![(9u32, 1.0f32)]],
            &[vec![1.0, 0.0]],
            None,
            &TrainConfig::default(),
        );
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 0.0]);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!(p[1] >= 0.0);
    }

    #[test]
    #[should_panic(expected = "target width mismatch")]
    fn rejects_bad_targets() {
        let x = FeatureMatrix::zeros(1, 2);
        let mut m = SoftmaxRegression::new(2, 2);
        m.fit(&x, &[vec![1.0]], None, &TrainConfig::default());
    }
}
