//! Property-based tests for the response store: under arbitrary
//! write/compact/reopen sequences — including a write torn mid-record —
//! the store never loses an acknowledged entry and never serves a
//! corrupted one.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt_llm::{ChatChoice, ChatResponse, ModelId, TokenUsage};
use datasculpt_store::framing::encode_record;
use datasculpt_store::response::encode_entry;
use datasculpt_store::ResponseStore;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn temp_log(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ds_store_props_{}_{tag}_{}",
        std::process::id(),
        NEXT_DIR.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("responses.log")
}

fn resp(text: &str, tokens: u64) -> ChatResponse {
    ChatResponse {
        choices: vec![ChatChoice {
            content: text.to_string(),
        }],
        usage: TokenUsage {
            prompt_tokens: tokens,
            completion_tokens: tokens / 2,
        },
        model: ModelId::Gpt35Turbo,
    }
}

/// One scripted store operation, decoded from a generated tuple: kinds
/// 0–3 put (digests drawn from a small domain so duplicates are common),
/// 4 compacts, 5 reopens the store from disk.
fn apply_ops(
    path: &Path,
    ops: &[(u8, u8, String, u16)],
) -> (ResponseStore, BTreeMap<u128, ChatResponse>) {
    let mut store = ResponseStore::open(path).unwrap();
    let mut oracle: BTreeMap<u128, ChatResponse> = BTreeMap::new();
    for (kind, digest, text, tokens) in ops {
        match kind % 6 {
            4 => {
                store.compact().unwrap();
            }
            5 => {
                drop(store);
                store = ResponseStore::open(path).unwrap();
            }
            _ => {
                let digest = u128::from(digest % 8);
                let response = resp(text, u64::from(*tokens));
                store.put(digest, &response).unwrap();
                oracle.insert(digest, response);
            }
        }
    }
    (store, oracle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of puts, compactions, and reopens leaves the
    /// store exactly equal to a last-write-wins map — before *and* after
    /// one more reopen (i.e. everything acknowledged is on disk).
    #[test]
    fn store_matches_oracle_under_arbitrary_ops(
        ops in proptest::collection::vec(
            (0u8..6, any::<u8>(), "[a-z ]{0,20}", any::<u16>()),
            0..24,
        ),
    ) {
        let path = temp_log("ops");
        let (store, oracle) = apply_ops(&path, &ops);
        let live: BTreeMap<u128, ChatResponse> =
            store.iter().map(|(d, r)| (d, r.clone())).collect();
        prop_assert_eq!(&live, &oracle);
        drop(store);

        let reopened = ResponseStore::open(&path).unwrap();
        let persisted: BTreeMap<u128, ChatResponse> =
            reopened.iter().map(|(d, r)| (d, r.clone())).collect();
        prop_assert_eq!(&persisted, &oracle);
        prop_assert_eq!(reopened.recovery().dropped_bytes, 0);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    /// Tearing the final record anywhere inside its byte span never loses
    /// an earlier acknowledged entry and never serves the torn bytes: the
    /// store recovers to exactly its pre-final-put state.
    #[test]
    fn torn_final_record_never_corrupts_acknowledged_state(
        ops in proptest::collection::vec(
            (0u8..6, any::<u8>(), "[a-z ]{0,20}", any::<u16>()),
            0..16,
        ),
        final_digest in any::<u8>(),
        final_text in "[a-z ]{0,40}",
        tear_frac in 0.0f64..1.0,
    ) {
        let path = temp_log("tear");
        let (store, oracle) = apply_ops(&path, &ops);
        drop(store);

        // Append one more record, then tear it: chop off between 1 byte
        // and all-but-one of its bytes, so some prefix of the record —
        // header included or not — is left behind.
        let record = encode_record(&encode_entry(
            u128::from(final_digest % 8),
            &resp(&final_text, 9),
        ));
        let keep = ((record.len() as f64) * tear_frac) as usize;
        let keep = keep.clamp(0, record.len() - 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let clean_len = bytes.len();
        bytes.extend_from_slice(&record[..keep]);
        std::fs::write(&path, &bytes).unwrap();

        let recovered = ResponseStore::open(&path).unwrap();
        let persisted: BTreeMap<u128, ChatResponse> =
            recovered.iter().map(|(d, r)| (d, r.clone())).collect();
        prop_assert_eq!(&persisted, &oracle, "torn tail lost or invented an entry");
        if keep > 0 {
            prop_assert_eq!(recovered.recovery().dropped_bytes, keep as u64);
        }
        drop(recovered);
        // Recovery truncated the file back to its clean prefix.
        prop_assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len as u64);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
