//! Durable runs: a disk-backed LLM response store and checkpoint/resume.
//!
//! A production labeling job dies mid-run; without durability every LLM
//! response it paid for is re-billed on restart. This crate makes a
//! DataSculpt run *resumable with zero re-billing* and *provably
//! bit-identical* to an uninterrupted run:
//!
//! * [`ResponseStore`] — an append-only, prompt-digest-keyed response log
//!   with CRC-checked records ([`framing`]), truncated-tail recovery, and
//!   a compacting rewrite.
//! * [`DiskCachedModel`] — [`ChatModel`](datasculpt_llm::ChatModel)
//!   middleware that serves previously-answered prompts from the store
//!   and persists every new backend response before acknowledging it.
//! * [`checkpoint`] — a versioned per-iteration snapshot log of the run
//!   state digest, with typed schema-evolution errors.
//! * [`run_durable`] — the orchestrator: open → (maybe) restore → run,
//!   verifying each replayed iteration against its checkpoint digest.
//! * [`inject`] — the crash-injection harness (a kill-switch model
//!   wrapper and a log-tearing helper) that the tier-1 `durable_resume`
//!   test drives.
//!
//! Resume is *replay-based*: rather than serializing sampler/ICL/LLM RNG
//! state, a resumed run re-executes from iteration 0 with every
//! previously-answered prompt served from disk (advancing the backend's
//! logical call index so post-crash calls line up), then continues live.
//! `docs/persistence.md` spells out the format and the determinism
//! contract.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod checkpoint;
pub mod codec;
pub mod disk_cache;
pub mod framing;
pub mod inject;
pub mod response;
pub mod runner;
pub mod store;

pub use checkpoint::{
    CheckpointError, CheckpointHeader, CheckpointLog, DiskCheckpointer, RunFingerprint,
    CHECKPOINT_VERSION,
};
pub use codec::{ByteReader, ByteWriter, CodecError};
pub use disk_cache::DiskCachedModel;
pub use framing::{FramedLog, ScanOutcome, TornTail};
pub use inject::{tear_tail, KillAfter, KillSwitch};
pub use response::request_digest;
pub use runner::{
    run_durable, run_durable_gated, DurableError, DurableOptions, DurableOutcome, IterationGate,
};
pub use store::ResponseStore;

/// A durable-storage failure: an I/O error with its path and operation, or
/// a payload the codec rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The filesystem refused an operation.
    Io {
        /// The file involved.
        path: String,
        /// What was being attempted (`"open"`, `"append"`, `"sync"`, …).
        op: &'static str,
        /// The OS error text.
        message: String,
    },
    /// A record's payload failed to decode (CRC passed, content did not).
    Corrupt(String),
}

impl StoreError {
    /// An [`StoreError::Io`] from an OS error at `path` during `op`
    /// (public so sibling durable logs — e.g. the serve job registry —
    /// report in the same shape).
    pub fn io(path: &std::path::Path, op: &'static str, err: &std::io::Error) -> Self {
        StoreError::Io {
            path: path.display().to_string(),
            op,
            message: err.to_string(),
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, op, message } => {
                write!(f, "store I/O failure ({op} {path}): {message}")
            }
            StoreError::Corrupt(msg) => write!(f, "store record corrupt: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}
