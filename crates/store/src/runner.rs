//! The durable-run orchestrator: open → (maybe) restore → run.
//!
//! [`run_durable`] is the one entry point a caller (the CLI, the tier-1
//! `durable_resume` test) needs: given a run directory it opens the
//! response store and checkpoint log, verifies any existing checkpoint
//! against the run's [`RunFingerprint`], assembles the
//! [`DiskCachedModel`] + [`DiskCheckpointer`] stack, and delegates to
//! [`DataSculpt::run_durable`](datasculpt_core::DataSculpt::run_durable).
//!
//! Resume is replay-based (see the crate docs): a resumed run re-executes
//! from iteration 0 with previously-answered prompts served from disk
//! (billing nothing) and each replayed iteration's state digest verified
//! against the checkpoint it wrote before dying.

use crate::checkpoint::{
    CheckpointError, CheckpointHeader, CheckpointLog, DiskCheckpointer, RunFingerprint,
    CHECKPOINT_VERSION,
};
use crate::disk_cache::DiskCachedModel;
use crate::inject::KillSwitch;
use crate::store::ResponseStore;
use crate::StoreError;
use datasculpt_core::{CheckpointSink, DataSculpt, IterationCheckpoint, PipelineError, RunResult};
use datasculpt_data::TextDataset;
use datasculpt_llm::cache::CacheStats;
use datasculpt_llm::ChatModel;
use datasculpt_obs::{Event, NoopObserver, RunObserver, SharedObserver, Stage};
use std::path::Path;

/// File name of the response log inside a run directory.
pub const RESPONSES_FILE: &str = "responses.log";
/// File name of the checkpoint log inside a run directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.log";

/// Knobs for a durable run.
#[derive(Debug, Clone, Default)]
pub struct DurableOptions {
    /// Checkpoint every N iterations (0 is treated as 1). The cadence is
    /// anchored at iteration 0: iteration `i` is checkpointed when
    /// `(i + 1) % N == 0`.
    pub checkpoint_every: u64,
    /// Crash-injection switch shared with a
    /// [`KillAfter`](crate::KillAfter) wrapper around the backend: once
    /// tripped, the checkpointer silently drops writes so disk ends up in
    /// exactly the state a SIGKILL would have left.
    pub kill: Option<KillSwitch>,
    /// Refuse to start fresh: error with
    /// [`CheckpointError::NothingToResume`] unless the directory already
    /// holds a checkpoint (the CLI's `--resume` semantics).
    pub require_existing: bool,
}

/// What a completed durable run reports beyond the [`RunResult`].
#[derive(Debug)]
pub struct DurableOutcome {
    /// The run's result; its digest, ledger, and trace are bit-identical
    /// to an uninterrupted run's.
    pub result: RunResult,
    /// Disk-store hits/misses seen by this process.
    pub store_stats: CacheStats,
    /// Exact nano-USD billed to the backend *by this process*; replayed
    /// prompts bill nothing.
    pub billed_nanousd: u128,
    /// Checkpointed iterations verified against the replay.
    pub replayed_iterations: u64,
    /// Checkpoint records appended by this process.
    pub checkpoints_written: u64,
    /// Whether the directory held a prior run's checkpoint log.
    pub recovered: bool,
}

/// Why a durable run failed.
#[derive(Debug)]
pub enum DurableError {
    /// The pipeline itself failed (LLM errors past the consecutive-failure
    /// limit, or a checkpoint append/verification failure surfaced as
    /// [`PipelineError::Checkpoint`]).
    Pipeline(PipelineError),
    /// The response store could not be opened or written.
    Store(StoreError),
    /// The checkpoint log was unreadable, version-incompatible, from a
    /// different configuration, or absent when `--resume` required it.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Pipeline(e) => write!(f, "{e}"),
            DurableError::Store(e) => write!(f, "{e}"),
            DurableError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Pipeline(e) => Some(e),
            DurableError::Store(e) => Some(e),
            DurableError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<PipelineError> for DurableError {
    fn from(e: PipelineError) -> Self {
        DurableError::Pipeline(e)
    }
}

impl From<StoreError> for DurableError {
    fn from(e: StoreError) -> Self {
        DurableError::Store(e)
    }
}

impl From<CheckpointError> for DurableError {
    fn from(e: CheckpointError) -> Self {
        DurableError::Checkpoint(e)
    }
}

/// A per-iteration admission hook for gated durable runs
/// ([`run_durable_gated`]).
///
/// The gate is consulted *after* the iteration's snapshot has been
/// persisted (or verified, during a resume replay) by the
/// [`DiskCheckpointer`], so a gate that stops the run never loses state:
/// the aborted run resumes bit-identically from the iteration it was
/// stopped at. Returning `Err` surfaces as
/// [`PipelineError::Checkpoint`] with the gate's message — callers (the
/// serving daemon's budget admission control) encode pause/cancel
/// decisions in the message and classify the error on the way out.
pub trait IterationGate {
    /// Decide whether the run may proceed past this (already durable)
    /// iteration snapshot.
    fn after_checkpoint(&mut self, snapshot: &IterationCheckpoint) -> Result<(), String>;
}

/// [`CheckpointSink`] adapter: persist through the checkpointer first,
/// then consult the gate.
struct GatedSink<'c, 'g> {
    checkpointer: &'c mut DiskCheckpointer,
    gate: Option<&'g mut dyn IterationGate>,
}

impl CheckpointSink for GatedSink<'_, '_> {
    fn on_iteration(&mut self, snapshot: &IterationCheckpoint) -> Result<(), String> {
        self.checkpointer.on_iteration(snapshot)?;
        if let Some(gate) = self.gate.as_deref_mut() {
            gate.after_checkpoint(snapshot)?;
        }
        Ok(())
    }
}

/// Run DataSculpt durably in `dir`, resuming from whatever state the
/// directory already holds.
///
/// The configuration comes from `fingerprint.config`; the fingerprint's
/// identity fields must describe `dataset` and `backend` (they are what a
/// later resume is checked against). `backend` is wrapped in a
/// [`DiskCachedModel`] — pass it *unwrapped* (retry middleware is fine;
/// an in-memory cache on top would change which calls reach the disk
/// layer between the original run and its resume).
pub fn run_durable<M: ChatModel>(
    dataset: &TextDataset,
    fingerprint: &RunFingerprint,
    backend: M,
    dir: &Path,
    opts: &DurableOptions,
    observer: Option<SharedObserver>,
) -> Result<DurableOutcome, DurableError> {
    run_durable_gated(dataset, fingerprint, backend, dir, opts, observer, None)
}

/// [`run_durable`] with an optional [`IterationGate`] consulted after
/// every durable iteration snapshot — the serving daemon's budget
/// admission hook.
pub fn run_durable_gated<M: ChatModel>(
    dataset: &TextDataset,
    fingerprint: &RunFingerprint,
    backend: M,
    dir: &Path,
    opts: &DurableOptions,
    observer: Option<SharedObserver>,
    gate: Option<&mut dyn IterationGate>,
) -> Result<DurableOutcome, DurableError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| DurableError::Store(StoreError::io(dir, "create-dir", &e)))?;

    let mut observer = observer;
    let mut noop = NoopObserver;

    // The restore span covers everything that happens before the first
    // live iteration: opening (and recovering) the store, loading and
    // verifying the checkpoint log.
    emit(
        &mut observer,
        &Event::StageBegin {
            iter: 0,
            stage: Stage::Restore,
        },
    );
    let restored = open_state(dir, fingerprint, opts);
    emit(
        &mut observer,
        &Event::StageEnd {
            iter: 0,
            stage: Stage::Restore,
        },
    );
    let (store, loaded) = restored?;
    let recovered = loaded.is_some();
    let resuming_from = loaded.map(|log| log.iterations).unwrap_or_default();

    let header = CheckpointHeader {
        version: CHECKPOINT_VERSION,
        fingerprint: fingerprint.digest(),
        dataset: fingerprint.dataset.clone(),
        model: fingerprint.model.clone(),
        queries: fingerprint.config.num_queries as u64,
    };
    let mut checkpointer = DiskCheckpointer::create(
        &dir.join(CHECKPOINT_FILE),
        &header,
        &resuming_from,
        opts.checkpoint_every,
    )?;
    if let Some(obs) = &observer {
        checkpointer = checkpointer.with_observer(obs.clone());
    }
    if let Some(kill) = &opts.kill {
        checkpointer = checkpointer.with_kill_switch(kill.clone());
    }

    let mut model = DiskCachedModel::new(backend, store);
    if let Some(obs) = &observer {
        model = model.with_observer(obs.clone());
    }

    let obs: &mut dyn RunObserver = match observer.as_mut() {
        Some(o) => o,
        None => &mut noop,
    };
    let mut sink = GatedSink {
        checkpointer: &mut checkpointer,
        gate,
    };
    let result =
        DataSculpt::new(dataset, fingerprint.config).run_durable(&mut model, obs, &mut sink)?;

    Ok(DurableOutcome {
        result,
        store_stats: model.cache_stats(),
        billed_nanousd: model.billed_nanousd(),
        replayed_iterations: checkpointer.replayed(),
        checkpoints_written: checkpointer.written(),
        recovered,
    })
}

/// Open the response store and load/verify the checkpoint log.
fn open_state(
    dir: &Path,
    fingerprint: &RunFingerprint,
    opts: &DurableOptions,
) -> Result<(ResponseStore, Option<CheckpointLog>), DurableError> {
    let store = ResponseStore::open(&dir.join(RESPONSES_FILE))?;
    let loaded = CheckpointLog::load(&dir.join(CHECKPOINT_FILE))?;
    match &loaded {
        Some(log) => log.verify(fingerprint)?,
        None => {
            if opts.require_existing {
                return Err(DurableError::Checkpoint(CheckpointError::NothingToResume));
            }
        }
    }
    Ok((store, loaded))
}

fn emit(observer: &mut Option<SharedObserver>, event: &Event) {
    if let Some(obs) = observer {
        obs.on_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::tests::tempdir;
    use crate::inject::KillAfter;
    use datasculpt_core::DataSculptConfig;
    use datasculpt_data::DatasetName;
    use datasculpt_llm::{ModelId, SimulatedLlm};

    fn config() -> DataSculptConfig {
        let mut cfg = DataSculptConfig::cot(9);
        cfg.num_queries = 6;
        cfg
    }

    fn fingerprint(cfg: DataSculptConfig) -> RunFingerprint {
        RunFingerprint {
            dataset: "youtube".into(),
            dataset_seed: 21,
            scale_bits: 0.1f64.to_bits(),
            model: ModelId::Gpt35Turbo.api_name().into(),
            llm_seed: 13,
            config: cfg,
        }
    }

    fn backend(dataset: &TextDataset) -> SimulatedLlm {
        SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), 13)
    }

    #[test]
    fn fresh_durable_run_matches_a_plain_run() {
        let d = DatasetName::Youtube.load_scaled(21, 0.1);
        let cfg = config();
        let mut plain_llm = backend(&d);
        let plain = DataSculpt::new(&d, cfg).run(&mut plain_llm).unwrap();

        let dir = tempdir();
        let outcome = run_durable(
            &d,
            &fingerprint(cfg),
            backend(&d),
            &dir,
            &DurableOptions::default(),
            None,
        )
        .unwrap();
        assert_eq!(outcome.result.digest(), plain.digest());
        assert!(!outcome.recovered);
        assert_eq!(outcome.replayed_iterations, 0);
        assert_eq!(outcome.checkpoints_written, cfg.num_queries as u64);
        assert_eq!(outcome.store_stats.hits, 0);
        assert!(outcome.billed_nanousd > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_and_resume_reproduces_the_uninterrupted_run() {
        let d = DatasetName::Youtube.load_scaled(21, 0.1);
        let cfg = config();
        let fp = fingerprint(cfg);

        let dir_a = tempdir();
        let baseline = run_durable(
            &d,
            &fp,
            backend(&d),
            &dir_a,
            &DurableOptions::default(),
            None,
        )
        .unwrap();

        // Kill a second run mid-flight after 3 backend calls: every later
        // iteration fails, tripping the consecutive-failure limit.
        let dir_b = tempdir();
        let doomed = KillAfter::new(backend(&d), 3, KillSwitch::new());
        let switch = doomed.switch();
        let crashed = run_durable(
            &d,
            &fp,
            doomed,
            &dir_b,
            &DurableOptions {
                kill: Some(switch),
                ..DurableOptions::default()
            },
            None,
        );
        assert!(
            matches!(crashed, Err(DurableError::Pipeline(_))),
            "expected a pipeline failure, got {crashed:?}"
        );

        // Resume with a fresh backend: bit-identical result, and the two
        // processes together billed exactly what the baseline did.
        let resumed = run_durable(
            &d,
            &fp,
            backend(&d),
            &dir_b,
            &DurableOptions {
                require_existing: true,
                ..DurableOptions::default()
            },
            None,
        )
        .unwrap();
        assert_eq!(resumed.result.digest(), baseline.result.digest());
        assert_eq!(
            resumed.result.ledger.total_cost_nanousd(),
            baseline.result.ledger.total_cost_nanousd()
        );
        assert!(resumed.recovered);
        assert!(resumed.replayed_iterations > 0);
        assert!(resumed.store_stats.hits > 0, "replay served from disk");
        assert!(
            resumed.billed_nanousd < baseline.billed_nanousd,
            "stored prompts were not re-billed"
        );

        // A second resume of the now-complete directory re-bills nothing.
        let replayed = run_durable(
            &d,
            &fp,
            backend(&d),
            &dir_b,
            &DurableOptions {
                require_existing: true,
                ..DurableOptions::default()
            },
            None,
        )
        .unwrap();
        assert_eq!(replayed.result.digest(), baseline.result.digest());
        assert_eq!(replayed.billed_nanousd, 0, "full replay is free");
        assert_eq!(replayed.store_stats.misses, 0);
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn require_existing_refuses_an_empty_directory() {
        let d = DatasetName::Youtube.load_scaled(21, 0.1);
        let cfg = config();
        let dir = tempdir();
        let err = run_durable(
            &d,
            &fingerprint(cfg),
            backend(&d),
            &dir,
            &DurableOptions {
                require_existing: true,
                ..DurableOptions::default()
            },
            None,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            DurableError::Checkpoint(CheckpointError::NothingToResume)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
