//! The append-only, digest-keyed response store.

use crate::framing::{rewrite_atomic, FramedLog, ScanOutcome};
use crate::response::{decode_entry, encode_entry};
use crate::StoreError;
use datasculpt_llm::ChatResponse;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Outcome of a [`ResponseStore::compact`]: what the rewrite removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Records in the log before the rewrite.
    pub records_before: u64,
    /// Distinct entries after the rewrite.
    pub records_after: u64,
}

/// An append-only log of LLM responses keyed by 128-bit prompt digests
/// ([`request_digest`](crate::request_digest)).
///
/// Opening recovers from a torn tail (CRC-framed records, see
/// [`framing`](crate::framing)): the longest clean prefix is kept and the
/// tail is truncated away, so an acknowledged `put` from a previous
/// process is never lost and a corrupted record is never served. Duplicate
/// digests (a crash between backend success and run progress can re-store
/// one response) are deduplicated on load — last record wins — and
/// physically removed by [`compact`](Self::compact).
#[derive(Debug)]
pub struct ResponseStore {
    path: PathBuf,
    log: FramedLog,
    entries: BTreeMap<u128, ChatResponse>,
    /// Records scanned at open, before dedupe.
    records_on_open: u64,
    recovery: ScanOutcome,
}

impl ResponseStore {
    /// Open (creating if absent) the store at `path`, recovering the log.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let (log, outcome) = FramedLog::open(path)?;
        let mut entries = BTreeMap::new();
        for payload in &outcome.records {
            let (digest, response) = decode_entry(payload)
                .map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))?;
            entries.insert(digest, response);
        }
        let records_on_open = outcome.records.len() as u64;
        let recovery = ScanOutcome {
            records: Vec::new(), // raw payloads are not retained
            ..outcome
        };
        Ok(ResponseStore {
            path: path.to_path_buf(),
            log,
            entries,
            records_on_open,
            recovery,
        })
    }

    /// The response stored for `digest`, if any.
    pub fn get(&self, digest: u128) -> Option<&ChatResponse> {
        self.entries.get(&digest)
    }

    /// Persist `response` under `digest`.
    ///
    /// The entry is durable (survives a crash and recovery) once this
    /// returns `Ok`. Re-putting an existing digest appends a superseding
    /// record; [`compact`](Self::compact) removes the shadowed one.
    pub fn put(&mut self, digest: u128, response: &ChatResponse) -> Result<(), StoreError> {
        self.log.append(&encode_entry(digest, response))?;
        self.entries.insert(digest, response.clone());
        Ok(())
    }

    /// Number of distinct entries held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All live entries, in digest order.
    pub fn iter(&self) -> impl Iterator<Item = (u128, &ChatResponse)> {
        self.entries
            .iter()
            .map(|(digest, response)| (*digest, response))
    }

    /// How the log scan went at open (torn-tail recovery details).
    pub fn recovery(&self) -> &ScanOutcome {
        &self.recovery
    }

    /// Rewrite the log to exactly the live entries (dedupe), atomically:
    /// the new log is written beside the old and renamed over it, so a
    /// crash mid-compaction leaves either the old or the new log intact.
    pub fn compact(&mut self) -> Result<CompactionReport, StoreError> {
        let payloads: Vec<Vec<u8>> = self
            .entries
            .iter()
            .map(|(digest, response)| encode_entry(*digest, response))
            .collect();
        rewrite_atomic(&self.path, payloads.iter().map(Vec::as_slice))?;
        // Reopen the handle on the new inode; the rename invalidated the
        // old append handle's position guarantees.
        let (log, outcome) = FramedLog::open(&self.path)?;
        self.log = log;
        let report = CompactionReport {
            records_before: self.records_on_open,
            records_after: outcome.records.len() as u64,
        };
        self.records_on_open = outcome.records.len() as u64;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::encode_record;
    use crate::framing::tests::tempdir;
    use datasculpt_llm::{ChatChoice, ModelId, TokenUsage};

    fn resp(text: &str) -> ChatResponse {
        ChatResponse {
            choices: vec![ChatChoice {
                content: text.to_string(),
            }],
            usage: TokenUsage {
                prompt_tokens: 10,
                completion_tokens: 3,
            },
            model: ModelId::Gpt35Turbo,
        }
    }

    #[test]
    fn put_get_survives_reopen() {
        let dir = tempdir();
        let path = dir.join("responses.log");
        {
            let mut store = ResponseStore::open(&path).unwrap();
            store.put(1, &resp("one")).unwrap();
            store.put(2, &resp("two")).unwrap();
            assert_eq!(store.len(), 2);
        }
        let store = ResponseStore::open(&path).unwrap();
        assert_eq!(store.get(1).unwrap().choices[0].content, "one");
        assert_eq!(store.get(2).unwrap().choices[0].content, "two");
        assert_eq!(store.get(3), None);
        assert_eq!(store.recovery().dropped_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_final_record_is_recovered_without_losing_acknowledged_entries() {
        let dir = tempdir();
        let path = dir.join("responses.log");
        {
            let mut store = ResponseStore::open(&path).unwrap();
            store.put(1, &resp("durable")).unwrap();
        }
        // Simulate a crash mid-append of a second record.
        let torn = encode_record(&crate::response::encode_entry(2, &resp("lost")));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let mut store = ResponseStore::open(&path).unwrap();
        assert_eq!(store.len(), 1, "acknowledged entry survives");
        assert_eq!(store.get(2), None, "torn entry is gone, not corrupted");
        assert!(store.recovery().dropped_bytes > 0);
        // The truncated log accepts appends again.
        store.put(2, &resp("again")).unwrap();
        drop(store);
        let store = ResponseStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_digests_dedupe_last_wins_and_compact_drops_them() {
        let dir = tempdir();
        let path = dir.join("responses.log");
        let mut store = ResponseStore::open(&path).unwrap();
        store.put(7, &resp("first")).unwrap();
        store.put(7, &resp("second")).unwrap();
        store.put(8, &resp("other")).unwrap();
        drop(store);

        let mut store = ResponseStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(7).unwrap().choices[0].content, "second");
        let report = store.compact().unwrap();
        assert_eq!(report.records_before, 3);
        assert_eq!(report.records_after, 2);
        drop(store);

        let store = ResponseStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(7).unwrap().choices[0].content, "second");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_non_tail_payload_is_a_typed_error() {
        // CRC-valid frame whose *payload* doesn't decode: Corrupt, not a
        // panic and not a silent skip.
        let dir = tempdir();
        let path = dir.join("responses.log");
        std::fs::write(&path, encode_record(b"not a store entry")).unwrap();
        let err = ResponseStore::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_survives_reopen_after_append() {
        let dir = tempdir();
        let path = dir.join("responses.log");
        let mut store = ResponseStore::open(&path).unwrap();
        store.put(1, &resp("a")).unwrap();
        store.put(1, &resp("b")).unwrap();
        store.compact().unwrap();
        // Appends after compaction land in the new log.
        store.put(2, &resp("c")).unwrap();
        drop(store);
        let store = ResponseStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(1).unwrap().choices[0].content, "b");
        assert_eq!(store.get(2).unwrap().choices[0].content, "c");
        std::fs::remove_dir_all(&dir).ok();
    }
}
