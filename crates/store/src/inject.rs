//! Crash injection: the harness behind the `durable_resume` proof.
//!
//! Two failure surfaces are emulated:
//!
//! * **Process death after N LLM calls** — [`KillAfter`] wraps any
//!   [`ChatModel`]; once its budget is spent it trips a shared
//!   [`KillSwitch`] and every further call fails. The
//!   [`DiskCheckpointer`](crate::DiskCheckpointer) watches the same
//!   switch and silently drops all writes once it is tripped, so the
//!   on-disk state is *exactly* what a SIGKILL at that moment would have
//!   left: nothing that happens in the dying process after the kill point
//!   reaches disk.
//! * **A write torn mid-record** — [`tear_tail`] chops bytes off the end
//!   of a log file, simulating a crash inside `write(2)` itself.
//!
//! The CLI exposes the first knob as `--inject-crash-after N`, where the
//! trip calls [`std::process::abort`] for a real mid-process death that
//! `check.sh` can observe.

use datasculpt_llm::{ChatModel, ChatRequest, ChatResponse, LlmError, ModelId};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared "the process is dead" flag.
///
/// Cloning shares the flag. Once [`kill`](Self::kill)ed it never resets:
/// everything holding the switch must behave as if the process no longer
/// exists (fail calls, drop writes).
#[derive(Debug, Clone, Default)]
pub struct KillSwitch(Arc<AtomicBool>);

impl KillSwitch {
    /// A live switch.
    pub fn new() -> Self {
        KillSwitch::default()
    }

    /// Trip the switch (idempotent).
    pub fn kill(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the switch has been tripped.
    pub fn is_dead(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// What happens when a [`KillAfter`] budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillMode {
    /// Fail the call with a transport error (in-process emulation; the
    /// run aborts via its consecutive-failure limit).
    Error,
    /// Abort the process — an actual mid-run death for end-to-end smoke
    /// tests (`check.sh`).
    AbortProcess,
}

/// [`ChatModel`] wrapper that lets `budget` calls through, then trips its
/// [`KillSwitch`] and fails (or aborts) every call from that point on.
///
/// Replayed calls ([`advance_replayed`](ChatModel::advance_replayed)) are
/// free: they were paid for before the crash being simulated.
#[derive(Debug, Clone)]
pub struct KillAfter<M> {
    inner: M,
    remaining: u64,
    switch: KillSwitch,
    mode: KillMode,
}

impl<M: ChatModel> KillAfter<M> {
    /// Let `budget` calls through, then fail with transport errors.
    pub fn new(inner: M, budget: u64, switch: KillSwitch) -> Self {
        KillAfter {
            inner,
            remaining: budget,
            switch,
            mode: KillMode::Error,
        }
    }

    /// Let `budget` calls through, then [`std::process::abort`].
    pub fn aborting_process(inner: M, budget: u64) -> Self {
        KillAfter {
            inner,
            remaining: budget,
            switch: KillSwitch::new(),
            mode: KillMode::AbortProcess,
        }
    }

    /// The shared switch this wrapper trips.
    pub fn switch(&self) -> KillSwitch {
        self.switch.clone()
    }

    /// The wrapped model.
    pub fn get_ref(&self) -> &M {
        &self.inner
    }

    fn die(&self) -> LlmError {
        self.switch.kill();
        if self.mode == KillMode::AbortProcess {
            // A genuine ungraceful death: no unwinding, no Drop, no
            // flushes — the closest in-process stand-in for SIGKILL.
            std::process::abort();
        }
        LlmError::Transport("injected crash: kill switch tripped".into())
    }
}

impl<M: ChatModel> ChatModel for KillAfter<M> {
    fn complete(&mut self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        if self.switch.is_dead() || self.remaining == 0 {
            return Err(self.die());
        }
        self.remaining -= 1;
        self.inner.complete(request)
    }

    fn model_id(&self) -> ModelId {
        self.inner.model_id()
    }

    fn advance_replayed(&mut self, calls: u64) {
        self.inner.advance_replayed(calls);
    }
}

/// Chop `drop_bytes` off the end of the file at `path` (clamped to the
/// file length), simulating a crash mid-`write(2)`. Returns the new
/// length.
pub fn tear_tail(path: &Path, drop_bytes: u64) -> std::io::Result<u64> {
    let len = std::fs::metadata(path)?.len();
    let new_len = len.saturating_sub(drop_bytes);
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(new_len)?;
    file.sync_data()?;
    Ok(new_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::tests::tempdir;
    use datasculpt_llm::{ChatMessage, ScriptedModel};

    fn req(text: &str) -> ChatRequest {
        ChatRequest::new(vec![ChatMessage::user(text)])
    }

    #[test]
    fn budget_spent_trips_the_switch_and_fails_forever() {
        let switch = KillSwitch::new();
        let mut m = KillAfter::new(ScriptedModel::new(vec!["ok".into()]), 2, switch.clone());
        assert!(m.complete(&req("a")).is_ok());
        assert!(m.complete(&req("b")).is_ok());
        assert!(!switch.is_dead());
        assert!(m.complete(&req("c")).is_err());
        assert!(switch.is_dead());
        assert!(m.complete(&req("d")).is_err(), "dead stays dead");
        assert_eq!(m.get_ref().calls_served(), 2);
    }

    #[test]
    fn zero_budget_dies_immediately() {
        let switch = KillSwitch::new();
        let mut m = KillAfter::new(ScriptedModel::new(vec!["ok".into()]), 0, switch.clone());
        assert!(m.complete(&req("a")).is_err());
        assert!(switch.is_dead());
    }

    #[test]
    fn replays_do_not_consume_the_budget() {
        let switch = KillSwitch::new();
        let mut m = KillAfter::new(ScriptedModel::new(vec!["ok".into()]), 1, switch);
        m.advance_replayed(10);
        assert!(m.complete(&req("a")).is_ok(), "budget untouched by replays");
        assert!(m.complete(&req("b")).is_err());
    }

    #[test]
    fn tear_tail_truncates_and_clamps() {
        let dir = tempdir();
        let path = dir.join("log");
        std::fs::write(&path, b"0123456789").unwrap();
        assert_eq!(tear_tail(&path, 4).unwrap(), 6);
        assert_eq!(std::fs::read(&path).unwrap(), b"012345");
        assert_eq!(tear_tail(&path, 100).unwrap(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
