//! Fixed-endian binary encoding for store payloads.
//!
//! Hand-rolled (the workspace vendors no serde): every field is written
//! little-endian with length-prefixed strings, so a payload encodes to the
//! same bytes on every platform — a requirement for the golden checkpoint
//! fixtures under `tests/fixtures/`.

/// A decode failure. Decoding never panics: corrupted payloads surface as
/// typed errors and the caller decides whether to recover or abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the announced field did.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes left in the payload.
        available: usize,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A bool field held a byte other than 0 or 1.
    BadBool(u8),
    /// Decoding finished with unconsumed bytes left over.
    Trailing(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, available } => {
                write!(
                    f,
                    "payload truncated: needed {needed} bytes, had {available}"
                )
            }
            CodecError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            CodecError::BadBool(b) => write!(f, "bool field holds {b}, expected 0 or 1"),
            CodecError::Trailing(n) => write!(f, "{n} trailing bytes after the last field"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty encoder.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Write a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u128`, little-endian.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a length-prefixed (`u32`) UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// Cursor-based decoder over one payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::Truncated {
                needed: n,
                available: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Read one raw byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?.first().copied().unwrap_or_default())
    }

    /// Read a bool byte, rejecting anything but 0/1.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::BadBool(other)),
        }
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let bytes = self.take(4)?;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(bytes);
        Ok(u32::from_le_bytes(arr))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let bytes = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(arr))
    }

    /// Read a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, CodecError> {
        let bytes = self.take(16)?;
        let mut arr = [0u8; 16];
        arr.copy_from_slice(bytes);
        Ok(u128::from_le_bytes(arr))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// Assert the payload is fully consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(CodecError::Trailing(self.buf.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_field_type() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_u128(u128::MAX / 3);
        w.put_str("über-keyword");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.str().unwrap(), "über-keyword");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = ByteWriter::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert_eq!(
            r.u64(),
            Err(CodecError::Truncated {
                needed: 8,
                available: 5
            })
        );
    }

    #[test]
    fn string_length_beyond_payload_is_truncated_not_panicking() {
        let mut w = ByteWriter::new();
        w.put_u32(1000); // announced length far past the end
        w.put_u8(b'x');
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.str(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn bad_bool_and_trailing_bytes_are_rejected() {
        let mut r = ByteReader::new(&[9]);
        assert_eq!(r.bool(), Err(CodecError::BadBool(9)));
        let r = ByteReader::new(&[0, 0]);
        assert_eq!(r.finish(), Err(CodecError::Trailing(2)));
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.str(), Err(CodecError::BadUtf8));
    }
}
