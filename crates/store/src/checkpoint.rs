//! Versioned checkpoint log: per-iteration run-state snapshots.
//!
//! Schema v1 (see `docs/persistence.md`). The log is CRC-framed
//! ([`framing`](crate::framing)); payloads are tagged:
//!
//! * `0x01` **header** — `version u64, fingerprint u64, dataset str,
//!   model str, queries u64`. Written once, first, when a durable run
//!   starts fresh.
//! * `0x02` **iteration** — `iter u64, state_digest u64, lfs u64,
//!   calls u64, cost_nanousd u128, failed bool`. One per checkpointed
//!   iteration.
//!
//! Loading is strict where it must be and lenient where it may: an
//! unknown *version* or a mismatched *fingerprint* is a typed error (a
//! wrong-answer resume would be silent data corruption), while a torn
//! final record is recovered by truncation (replay re-covers the lost
//! iteration from the response store).

use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::framing::FramedLog;
use crate::inject::KillSwitch;
use crate::StoreError;
use datasculpt_core::pipeline::PromptStyle;
use datasculpt_core::pipeline::{CheckpointSink, IterationCheckpoint};
use datasculpt_core::DataSculptConfig;
use datasculpt_core::{IclStrategy, SamplerKind};
use datasculpt_obs::{Counter, Event, RunObserver, SharedObserver, Stage};
use std::collections::VecDeque;
use std::path::Path;

/// The checkpoint schema version this build writes and understands.
pub const CHECKPOINT_VERSION: u64 = 1;

const TAG_HEADER: u8 = 0x01;
const TAG_ITERATION: u8 = 0x02;

/// Everything that must match for a checkpoint to be resumable: the
/// dataset identity, the backend identity, and the full run
/// configuration. Digested ([`digest`](Self::digest)) into the header —
/// resuming with so much as a different temperature is refused with
/// [`CheckpointError::ConfigMismatch`] instead of silently diverging.
#[derive(Debug, Clone)]
pub struct RunFingerprint {
    /// Dataset name.
    pub dataset: String,
    /// Dataset load seed.
    pub dataset_seed: u64,
    /// Bit pattern of the dataset scale fraction.
    pub scale_bits: u64,
    /// Backend model API name.
    pub model: String,
    /// The LLM's own seed (distinct from the run seed).
    pub llm_seed: u64,
    /// The full pipeline configuration.
    pub config: DataSculptConfig,
}

impl RunFingerprint {
    /// Order-stable FNV-1a digest over every resume-relevant field.
    ///
    /// `config.threads` is deliberately excluded: thread count is
    /// digest-invariant by the workspace determinism contract, so a run
    /// may be resumed with a different `--threads`.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.eat(self.dataset.as_bytes());
        h.eat_u64(self.dataset_seed);
        h.eat_u64(self.scale_bits);
        h.eat(self.model.as_bytes());
        h.eat_u64(self.llm_seed);
        let c = &self.config;
        h.eat_u64(c.num_queries as u64);
        h.eat_u64(c.samples_per_query as u64);
        h.eat(match c.style {
            PromptStyle::Base => b"base",
            PromptStyle::CoT => b"cot",
        });
        h.eat(match c.icl_strategy {
            IclStrategy::ClassBalanced => b"class-balanced",
            IclStrategy::Kate => b"kate",
        });
        h.eat_u64(c.n_icl as u64);
        h.eat_u64(c.temperature.to_bits());
        h.eat(&[
            u8::from(c.filters.validity),
            u8::from(c.filters.accuracy),
            u8::from(c.filters.redundancy),
        ]);
        h.eat_u64(c.filters.accuracy_threshold.to_bits());
        h.eat_u64(c.filters.redundancy_threshold.to_bits());
        h.eat(match c.sampler {
            SamplerKind::Random => b"random".as_slice(),
            SamplerKind::Uncertain => b"uncertain",
            SamplerKind::Seu => b"seu",
            SamplerKind::CoreSet => b"core-set",
        });
        h.eat(&[u8::from(c.revise_rejected)]);
        h.eat_u64(c.max_consecutive_failures as u64);
        h.eat_u64(c.seed);
        h.finish()
    }
}

/// 64-bit FNV-1a (same constants as the run digest).
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn eat_u64(&mut self, v: u64) {
        self.eat(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The checkpoint log's header record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Schema version ([`CHECKPOINT_VERSION`] when written by this build).
    pub version: u64,
    /// [`RunFingerprint::digest`] of the run that owns this log.
    pub fingerprint: u64,
    /// Dataset name (informational, for `inspect`-style tooling).
    pub dataset: String,
    /// Backend model API name (informational).
    pub model: String,
    /// Configured query budget (informational).
    pub queries: u64,
}

/// Why a checkpoint log could not be loaded or resumed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The underlying store layer failed.
    Store(StoreError),
    /// A CRC-clean record failed to decode.
    Corrupt(String),
    /// The log was written by an unknown (newer) schema version.
    UnknownVersion {
        /// Version found in the header.
        found: u64,
        /// Version this build supports.
        supported: u64,
    },
    /// The log belongs to a different run configuration.
    ConfigMismatch {
        /// Fingerprint digest this run would write.
        expected: u64,
        /// Fingerprint digest found in the header.
        found: u64,
    },
    /// The log has records but no header (or a non-header first record).
    MissingHeader,
    /// A resume was requested but no checkpoint exists.
    NothingToResume,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Store(e) => write!(f, "{e}"),
            CheckpointError::Corrupt(msg) => write!(f, "checkpoint record corrupt: {msg}"),
            CheckpointError::UnknownVersion { found, supported } => write!(
                f,
                "checkpoint schema version {found} is not supported (this build reads v{supported}); \
                 refusing to guess at its layout"
            ),
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different run configuration \
                 (fingerprint {found:016x}, this run is {expected:016x}); \
                 resuming it would silently produce a different answer"
            ),
            CheckpointError::MissingHeader => {
                write!(f, "checkpoint log has records but no header")
            }
            CheckpointError::NothingToResume => {
                write!(f, "--resume requested but the directory holds no checkpoint")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for CheckpointError {
    fn from(e: StoreError) -> Self {
        CheckpointError::Store(e)
    }
}

fn corrupt(e: CodecError) -> CheckpointError {
    CheckpointError::Corrupt(e.to_string())
}

/// Encode the header record payload.
pub fn encode_header(header: &CheckpointHeader) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(TAG_HEADER);
    w.put_u64(header.version);
    w.put_u64(header.fingerprint);
    w.put_str(&header.dataset);
    w.put_str(&header.model);
    w.put_u64(header.queries);
    w.into_bytes()
}

/// Encode one iteration record payload.
pub fn encode_iteration(snap: &IterationCheckpoint) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(TAG_ITERATION);
    w.put_u64(snap.iter);
    w.put_u64(snap.state_digest);
    w.put_u64(snap.lfs);
    w.put_u64(snap.calls);
    w.put_u128(snap.cost_nanousd);
    w.put_bool(snap.failed);
    w.into_bytes()
}

fn decode_header(payload: &[u8]) -> Result<CheckpointHeader, CheckpointError> {
    let mut r = ByteReader::new(payload);
    let tag = r.u8().map_err(corrupt)?;
    if tag != TAG_HEADER {
        return Err(CheckpointError::MissingHeader);
    }
    let version = r.u64().map_err(corrupt)?;
    if version != CHECKPOINT_VERSION {
        // Refuse before touching the rest of the payload: a newer schema
        // may have changed everything after the version field.
        return Err(CheckpointError::UnknownVersion {
            found: version,
            supported: CHECKPOINT_VERSION,
        });
    }
    let header = CheckpointHeader {
        version,
        fingerprint: r.u64().map_err(corrupt)?,
        dataset: r.str().map_err(corrupt)?,
        model: r.str().map_err(corrupt)?,
        queries: r.u64().map_err(corrupt)?,
    };
    r.finish().map_err(corrupt)?;
    Ok(header)
}

fn decode_iteration(payload: &[u8]) -> Result<IterationCheckpoint, CheckpointError> {
    let mut r = ByteReader::new(payload);
    let tag = r.u8().map_err(corrupt)?;
    if tag != TAG_ITERATION {
        return Err(CheckpointError::Corrupt(format!(
            "expected an iteration record (tag 0x02), found tag {tag:#04x}"
        )));
    }
    let snap = IterationCheckpoint {
        iter: r.u64().map_err(corrupt)?,
        state_digest: r.u64().map_err(corrupt)?,
        lfs: r.u64().map_err(corrupt)?,
        calls: r.u64().map_err(corrupt)?,
        cost_nanousd: r.u128().map_err(corrupt)?,
        failed: r.bool().map_err(corrupt)?,
    };
    r.finish().map_err(corrupt)?;
    Ok(snap)
}

/// A loaded checkpoint log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointLog {
    /// The header record.
    pub header: CheckpointHeader,
    /// Every checkpointed iteration, in order.
    pub iterations: Vec<IterationCheckpoint>,
}

impl CheckpointLog {
    /// Load the log at `path`. `Ok(None)` when the file does not exist or
    /// holds no records (a fresh start); typed errors for unknown
    /// versions and corrupt records.
    ///
    /// Loading does not truncate: recovery happens when the log is opened
    /// for writing ([`DiskCheckpointer::create`]).
    pub fn load(path: &Path) -> Result<Option<CheckpointLog>, CheckpointError> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::io(path, "read", &e).into()),
        };
        let outcome = crate::framing::scan_records(&bytes);
        let mut records = outcome.records.iter();
        let Some(first) = records.next() else {
            return Ok(None);
        };
        let header = decode_header(first)?;
        let mut iterations = Vec::new();
        for payload in records {
            iterations.push(decode_iteration(payload)?);
        }
        Ok(Some(CheckpointLog { header, iterations }))
    }

    /// Check this log against the fingerprint of the run about to resume.
    pub fn verify(&self, fingerprint: &RunFingerprint) -> Result<(), CheckpointError> {
        let expected = fingerprint.digest();
        if self.header.fingerprint != expected {
            return Err(CheckpointError::ConfigMismatch {
                expected,
                found: self.header.fingerprint,
            });
        }
        Ok(())
    }
}

/// The durable [`CheckpointSink`]: verifies replayed iterations against
/// the loaded log, then appends new ones.
///
/// Phases:
///
/// 1. **Verify** — while loaded records remain, each incoming snapshot
///    whose `iter` matches the next record must reproduce its
///    `state_digest` exactly; a mismatch aborts the run (the replay
///    diverged, so continuing would overwrite good state with bad).
/// 2. **Append** — past the loaded records, every snapshot on the
///    checkpoint cadence is framed, appended, and synced.
///
/// A tripped [`KillSwitch`] silently drops everything (verification and
/// writes): the process is "dead", and a dead process writes nothing.
pub struct DiskCheckpointer {
    log: FramedLog,
    expected: VecDeque<IterationCheckpoint>,
    every: u64,
    observer: Option<SharedObserver>,
    kill: Option<KillSwitch>,
    written: u64,
    replayed: u64,
}

impl DiskCheckpointer {
    /// Open the checkpoint log at `path` for a durable run.
    ///
    /// `resuming_from` carries the records loaded (and verified) by
    /// [`CheckpointLog::load`]; pass an empty slice for a fresh run. A
    /// fresh log gets its header written (and synced) immediately, so
    /// even a run killed before its first iteration leaves a resumable
    /// directory.
    pub fn create(
        path: &Path,
        header: &CheckpointHeader,
        resuming_from: &[IterationCheckpoint],
        every: u64,
    ) -> Result<Self, StoreError> {
        let (mut log, outcome) = FramedLog::open(path)?;
        if outcome.records.is_empty() {
            log.append(&encode_header(header))?;
        }
        Ok(DiskCheckpointer {
            log,
            expected: resuming_from.iter().copied().collect(),
            every: every.max(1),
            observer: None,
            kill: None,
            written: 0,
            replayed: 0,
        })
    }

    /// Attach a trace observer: verified replays emit `restore_replay`
    /// counters, appended records emit `checkpoint` stage spans and
    /// `checkpoint_write` counters.
    pub fn with_observer(mut self, observer: SharedObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attach a crash-injection kill switch (tests / `check.sh` smoke).
    pub fn with_kill_switch(mut self, kill: KillSwitch) -> Self {
        self.kill = Some(kill);
        self
    }

    /// Records appended by this process.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Loaded records verified against the replay so far.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Loaded records not yet re-reached by the replay.
    pub fn pending_replay(&self) -> u64 {
        self.expected.len() as u64
    }

    fn emit(&mut self, event: &Event) {
        if let Some(obs) = &mut self.observer {
            obs.on_event(event);
        }
    }
}

impl CheckpointSink for DiskCheckpointer {
    fn on_iteration(&mut self, snapshot: &IterationCheckpoint) -> Result<(), String> {
        if self.kill.as_ref().is_some_and(KillSwitch::is_dead) {
            // Emulated process death: a dead process neither verifies nor
            // persists. The run will abort on its own shortly.
            return Ok(());
        }
        if let Some(expected) = self.expected.front().copied() {
            if snapshot.iter < expected.iter {
                // Below the next checkpointed iteration (cadence gap):
                // nothing to verify, nothing to write.
                return Ok(());
            }
            if snapshot.iter > expected.iter {
                return Err(format!(
                    "replay skipped checkpointed iteration {} (reached {} first); \
                     the checkpoint log does not describe this run",
                    expected.iter, snapshot.iter
                ));
            }
            if snapshot.state_digest != expected.state_digest {
                return Err(format!(
                    "resume diverged at iteration {}: checkpoint digest {:016x}, \
                     replayed digest {:016x} — the store/config no longer reproduces \
                     the original run",
                    expected.iter, expected.state_digest, snapshot.state_digest
                ));
            }
            self.expected.pop_front();
            self.replayed += 1;
            self.emit(&Event::Counter {
                counter: Counter::RestoreReplay,
                delta: 1,
            });
            return Ok(());
        }
        // Live phase: persist on the cadence. Cadence is anchored at
        // iteration 0 so a resume with the same `--checkpoint-every`
        // lands on the same boundaries.
        if !(snapshot.iter + 1).is_multiple_of(self.every) {
            return Ok(());
        }
        self.emit(&Event::StageBegin {
            iter: snapshot.iter,
            stage: Stage::Checkpoint,
        });
        let result = self.log.append(&encode_iteration(snapshot));
        self.emit(&Event::StageEnd {
            iter: snapshot.iter,
            stage: Stage::Checkpoint,
        });
        result.map_err(|e| e.to_string())?;
        self.written += 1;
        self.emit(&Event::Counter {
            counter: Counter::CheckpointWrite,
            delta: 1,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::tests::tempdir;

    fn fingerprint() -> RunFingerprint {
        RunFingerprint {
            dataset: "youtube".into(),
            dataset_seed: 21,
            scale_bits: 0.1f64.to_bits(),
            model: "gpt-3.5-turbo-0613".into(),
            llm_seed: 13,
            config: DataSculptConfig::base(5),
        }
    }

    fn header(fp: &RunFingerprint) -> CheckpointHeader {
        CheckpointHeader {
            version: CHECKPOINT_VERSION,
            fingerprint: fp.digest(),
            dataset: fp.dataset.clone(),
            model: fp.model.clone(),
            queries: fp.config.num_queries as u64,
        }
    }

    fn snap(iter: u64, digest: u64) -> IterationCheckpoint {
        IterationCheckpoint {
            iter,
            state_digest: digest,
            lfs: iter + 1,
            calls: iter + 1,
            cost_nanousd: u128::from(iter) * 1000,
            failed: false,
        }
    }

    #[test]
    fn fresh_log_round_trips_header_and_iterations() {
        let dir = tempdir();
        let path = dir.join("checkpoint.log");
        let fp = fingerprint();
        let mut ck = DiskCheckpointer::create(&path, &header(&fp), &[], 1).unwrap();
        ck.on_iteration(&snap(0, 100)).unwrap();
        ck.on_iteration(&snap(1, 200)).unwrap();
        assert_eq!(ck.written(), 2);
        drop(ck);

        let log = CheckpointLog::load(&path).unwrap().unwrap();
        assert_eq!(log.header, header(&fp));
        assert_eq!(log.iterations, vec![snap(0, 100), snap(1, 200)]);
        log.verify(&fp).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn absent_and_empty_logs_are_fresh_starts() {
        let dir = tempdir();
        let path = dir.join("checkpoint.log");
        assert_eq!(CheckpointLog::load(&path).unwrap(), None);
        std::fs::write(&path, b"").unwrap();
        assert_eq!(CheckpointLog::load(&path).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_is_sensitive_to_config_and_identity() {
        let fp = fingerprint();
        let base = fp.digest();
        let mut other = fp.clone();
        other.config.temperature = 0.0;
        assert_ne!(base, other.digest());
        let mut other = fp.clone();
        other.llm_seed = 14;
        assert_ne!(base, other.digest());
        let mut other = fp.clone();
        other.dataset = "imdb".into();
        assert_ne!(base, other.digest());
        // …but thread count is digest-invariant by contract.
        let mut other = fp.clone();
        other.config.threads = 8;
        assert_eq!(base, other.digest());
    }

    #[test]
    fn verify_phase_accepts_matching_and_rejects_divergent_digests() {
        let dir = tempdir();
        let path = dir.join("checkpoint.log");
        let fp = fingerprint();
        let loaded = vec![snap(0, 100), snap(1, 200)];
        {
            let mut ck = DiskCheckpointer::create(&path, &header(&fp), &[], 1).unwrap();
            for s in &loaded {
                ck.on_iteration(s).unwrap();
            }
        }
        let mut ck = DiskCheckpointer::create(&path, &header(&fp), &loaded, 1).unwrap();
        ck.on_iteration(&snap(0, 100)).unwrap();
        assert_eq!(ck.replayed(), 1);
        let err = ck.on_iteration(&snap(1, 999)).unwrap_err();
        assert!(err.contains("diverged at iteration 1"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cadence_writes_every_kth_iteration() {
        let dir = tempdir();
        let path = dir.join("checkpoint.log");
        let fp = fingerprint();
        let mut ck = DiskCheckpointer::create(&path, &header(&fp), &[], 3).unwrap();
        for i in 0..7 {
            ck.on_iteration(&snap(i, 100 + i)).unwrap();
        }
        drop(ck);
        let log = CheckpointLog::load(&path).unwrap().unwrap();
        let iters: Vec<u64> = log.iterations.iter().map(|s| s.iter).collect();
        assert_eq!(iters, vec![2, 5], "every=3 lands on iterations 2 and 5");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dead_kill_switch_drops_writes_silently() {
        let dir = tempdir();
        let path = dir.join("checkpoint.log");
        let fp = fingerprint();
        let kill = KillSwitch::new();
        let mut ck = DiskCheckpointer::create(&path, &header(&fp), &[], 1)
            .unwrap()
            .with_kill_switch(kill.clone());
        ck.on_iteration(&snap(0, 100)).unwrap();
        kill.kill();
        ck.on_iteration(&snap(1, 200)).unwrap(); // dropped
        assert_eq!(ck.written(), 1);
        drop(ck);
        let log = CheckpointLog::load(&path).unwrap().unwrap();
        assert_eq!(log.iterations.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_version_is_a_typed_error() {
        let dir = tempdir();
        let path = dir.join("checkpoint.log");
        let fp = fingerprint();
        let mut h = header(&fp);
        h.version = 99;
        // Write the bad header directly.
        let (mut log, _) = FramedLog::open(&path).unwrap();
        log.append(&encode_header(&h)).unwrap();
        drop(log);
        let err = CheckpointLog::load(&path).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::UnknownVersion {
                found: 99,
                supported: CHECKPOINT_VERSION
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_mismatch_is_a_typed_error() {
        let dir = tempdir();
        let path = dir.join("checkpoint.log");
        let fp = fingerprint();
        {
            let _ck = DiskCheckpointer::create(&path, &header(&fp), &[], 1).unwrap();
        }
        let log = CheckpointLog::load(&path).unwrap().unwrap();
        let mut other = fp.clone();
        other.config.seed = 6;
        let err = log.verify(&other).unwrap_err();
        assert!(
            matches!(err, CheckpointError::ConfigMismatch { .. }),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_header_is_a_typed_error() {
        let dir = tempdir();
        let path = dir.join("checkpoint.log");
        let (mut log, _) = FramedLog::open(&path).unwrap();
        log.append(&encode_iteration(&snap(0, 1))).unwrap();
        drop(log);
        assert_eq!(
            CheckpointLog::load(&path).unwrap_err(),
            CheckpointError::MissingHeader
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_final_iteration_record_loads_as_a_shorter_log() {
        let dir = tempdir();
        let path = dir.join("checkpoint.log");
        let fp = fingerprint();
        {
            let mut ck = DiskCheckpointer::create(&path, &header(&fp), &[], 1).unwrap();
            ck.on_iteration(&snap(0, 100)).unwrap();
            ck.on_iteration(&snap(1, 200)).unwrap();
        }
        crate::inject::tear_tail(&path, 5).unwrap();
        let log = CheckpointLog::load(&path).unwrap().unwrap();
        assert_eq!(log.iterations, vec![snap(0, 100)]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
