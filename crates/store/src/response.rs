//! Response-record codec: prompt digests and response payloads.
//!
//! Store records are keyed by a 128-bit FNV-1a digest of the *full
//! structural identity* of a request — every message's role and content,
//! the temperature bit pattern, and the sample count — mirroring the
//! in-memory `CachedModel` key. 128 bits makes an accidental collision
//! across a store's lifetime negligible, so the store never needs to keep
//! raw prompts on disk to disambiguate.

use crate::codec::{ByteReader, ByteWriter, CodecError};
use datasculpt_llm::{ChatChoice, ChatRequest, ChatResponse, ModelId, Role, TokenUsage};

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// Incremental 128-bit FNV-1a.
struct Fnv128(u128);

impl Fnv128 {
    fn new() -> Self {
        Fnv128(FNV128_OFFSET)
    }

    fn eat(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u128::from(*b);
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
    }

    fn eat_u64(&mut self, v: u64) {
        self.eat(&v.to_le_bytes());
    }
}

/// The store key for one request: a 128-bit digest of its structural
/// identity (messages with roles, temperature bits, sample count).
pub fn request_digest(request: &ChatRequest) -> u128 {
    let mut d = Fnv128::new();
    d.eat_u64(request.messages.len() as u64);
    for message in &request.messages {
        let role = match message.role {
            Role::System => 0u8,
            Role::User => 1,
            Role::Assistant => 2,
        };
        d.eat(&[role]);
        d.eat_u64(message.content.len() as u64);
        d.eat(message.content.as_bytes());
    }
    d.eat_u64(request.temperature.to_bits());
    d.eat_u64(request.n as u64);
    d.0
}

/// Resolve a stored model API name back to a [`ModelId`].
pub fn model_from_api(name: &str) -> Option<ModelId> {
    ModelId::ALL.iter().copied().find(|m| m.api_name() == name)
}

/// Encode one `(digest, response)` store record payload.
pub fn encode_entry(digest: u128, response: &ChatResponse) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u128(digest);
    w.put_str(response.model.api_name());
    w.put_u64(response.usage.prompt_tokens);
    w.put_u64(response.usage.completion_tokens);
    w.put_u32(response.choices.len() as u32);
    for choice in &response.choices {
        w.put_str(&choice.content);
    }
    w.into_bytes()
}

/// Decode one store record payload back into `(digest, response)`.
pub fn decode_entry(payload: &[u8]) -> Result<(u128, ChatResponse), CodecError> {
    let mut r = ByteReader::new(payload);
    let digest = r.u128()?;
    let api_name = r.str()?;
    let model = model_from_api(&api_name).ok_or(CodecError::BadUtf8)?;
    let prompt_tokens = r.u64()?;
    let completion_tokens = r.u64()?;
    let n_choices = r.u32()? as usize;
    let mut choices = Vec::with_capacity(n_choices.min(1024));
    for _ in 0..n_choices {
        choices.push(ChatChoice { content: r.str()? });
    }
    r.finish()?;
    Ok((
        digest,
        ChatResponse {
            choices,
            usage: TokenUsage {
                prompt_tokens,
                completion_tokens,
            },
            model,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasculpt_llm::ChatMessage;

    fn resp(contents: &[&str]) -> ChatResponse {
        ChatResponse {
            choices: contents
                .iter()
                .map(|c| ChatChoice {
                    content: (*c).to_string(),
                })
                .collect(),
            usage: TokenUsage {
                prompt_tokens: 42,
                completion_tokens: 7,
            },
            model: ModelId::Gpt4,
        }
    }

    #[test]
    fn entries_round_trip() {
        let response = resp(&["Label: 1\nKeywords: check", "Label: 0"]);
        let payload = encode_entry(99, &response);
        let (digest, decoded) = decode_entry(&payload).unwrap();
        assert_eq!(digest, 99);
        assert_eq!(decoded, response);
    }

    #[test]
    fn digest_distinguishes_every_key_dimension() {
        let base = ChatRequest::new(vec![
            ChatMessage::system("You label"),
            ChatMessage::user("Query: spam?"),
        ]);
        let d = request_digest(&base);
        assert_ne!(d, request_digest(&base.clone().with_temperature(0.0)));
        assert_ne!(d, request_digest(&base.clone().with_n(2)));
        let role_swap = ChatRequest::new(vec![
            ChatMessage::user("You label"),
            ChatMessage::user("Query: spam?"),
        ]);
        assert_ne!(d, request_digest(&role_swap));
        // Message-boundary ambiguity: ("ab","c") vs ("a","bc").
        let a = ChatRequest::new(vec![ChatMessage::user("ab"), ChatMessage::user("c")]);
        let b = ChatRequest::new(vec![ChatMessage::user("a"), ChatMessage::user("bc")]);
        assert_ne!(request_digest(&a), request_digest(&b));
    }

    #[test]
    fn digest_is_stable_across_calls() {
        let req = ChatRequest::new(vec![ChatMessage::user("Query: same")]);
        assert_eq!(request_digest(&req), request_digest(&req.clone()));
    }

    #[test]
    fn unknown_model_name_is_rejected() {
        let response = resp(&["x"]);
        let mut payload = encode_entry(1, &response);
        // Corrupt the model name in place: "gpt-4" -> "gpt-9".
        let pos = payload
            .windows(5)
            .position(|w| w == b"gpt-4")
            .expect("model name present");
        payload[pos + 4] = b'9';
        assert!(decode_entry(&payload).is_err());
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let payload = encode_entry(1, &resp(&["hello"]));
        assert!(decode_entry(&payload[..payload.len() - 2]).is_err());
        assert!(decode_entry(&[]).is_err());
    }
}
