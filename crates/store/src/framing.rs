//! CRC-framed append-only log records.
//!
//! Both durable files (`responses.log`, `checkpoint.log`) share one frame:
//!
//! ```text
//! [len: u32 LE][crc32(payload): u32 LE][payload: len bytes]
//! ```
//!
//! A process killed mid-append leaves a *torn tail*: a partial header, a
//! partial payload, or a payload whose CRC does not match. Recovery scans
//! from the start, keeps the longest clean prefix of whole records, and
//! truncates the file back to it — an acknowledged record earlier in the
//! file is never lost, and a corrupted record is never returned.

use crate::StoreError;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Frame header size: `len` + `crc`.
pub const HEADER_LEN: usize = 8;

/// Payloads above this are rejected at append time and treated as frame
/// corruption at read time (a torn `len` field can announce gigabytes).
pub const MAX_PAYLOAD_LEN: usize = 64 * 1024 * 1024;

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for b in bytes {
        crc ^= u32::from(*b);
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Encode one framed record.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Why recovery stopped before the end of the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornTail {
    /// Fewer than [`HEADER_LEN`] bytes left: a partial frame header.
    PartialHeader,
    /// The header announced more payload bytes than the file holds.
    PartialPayload,
    /// The payload is complete but its CRC does not match.
    CrcMismatch,
    /// The header announced a payload above [`MAX_PAYLOAD_LEN`].
    ImplausibleLength,
}

impl std::fmt::Display for TornTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TornTail::PartialHeader => write!(f, "partial frame header"),
            TornTail::PartialPayload => write!(f, "partial payload"),
            TornTail::CrcMismatch => write!(f, "payload CRC mismatch"),
            TornTail::ImplausibleLength => write!(f, "implausible payload length"),
        }
    }
}

/// Outcome of scanning a log: the clean records plus what (if anything)
/// was dropped from the tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Every record in the clean prefix, in file order.
    pub records: Vec<Vec<u8>>,
    /// Byte length of the clean prefix.
    pub valid_len: u64,
    /// Bytes past the clean prefix that were dropped.
    pub dropped_bytes: u64,
    /// Why the scan stopped early, when it did.
    pub torn: Option<TornTail>,
}

/// Scan `bytes` as a framed log.
pub fn scan_records(bytes: &[u8]) -> ScanOutcome {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut torn = None;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + HEADER_LEN) else {
            torn = Some(TornTail::PartialHeader);
            break;
        };
        let (len_bytes, crc_bytes) = header.split_at(4);
        let mut arr = [0u8; 4];
        arr.copy_from_slice(len_bytes);
        let len = u32::from_le_bytes(arr) as usize;
        arr.copy_from_slice(crc_bytes);
        let expected_crc = u32::from_le_bytes(arr);
        if len > MAX_PAYLOAD_LEN {
            torn = Some(TornTail::ImplausibleLength);
            break;
        }
        let Some(payload) = bytes.get(pos + HEADER_LEN..pos + HEADER_LEN + len) else {
            torn = Some(TornTail::PartialPayload);
            break;
        };
        if crc32(payload) != expected_crc {
            torn = Some(TornTail::CrcMismatch);
            break;
        }
        records.push(payload.to_vec());
        pos += HEADER_LEN + len;
    }
    ScanOutcome {
        records,
        valid_len: pos as u64,
        dropped_bytes: (bytes.len() - pos) as u64,
        torn,
    }
}

/// An open framed log: recovered on open, appended in place.
#[derive(Debug)]
pub struct FramedLog {
    file: File,
    path: PathBuf,
}

impl FramedLog {
    /// Open (creating if absent) and recover the log at `path`.
    ///
    /// Returns the writer positioned after the clean prefix, plus the scan
    /// outcome. A torn tail is physically truncated away so later appends
    /// start on a frame boundary.
    pub fn open(path: &Path) -> Result<(FramedLog, ScanOutcome), StoreError> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StoreError::io(path, "read", &e)),
        };
        let outcome = scan_records(&bytes);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| StoreError::io(path, "open", &e))?;
        if outcome.dropped_bytes > 0 {
            file.set_len(outcome.valid_len)
                .map_err(|e| StoreError::io(path, "truncate torn tail", &e))?;
        }
        Ok((
            FramedLog {
                file,
                path: path.to_path_buf(),
            },
            outcome,
        ))
    }

    /// Append one record and flush it to the OS.
    ///
    /// The record is acknowledged (and so must survive recovery) only when
    /// this returns `Ok`.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        if payload.len() > MAX_PAYLOAD_LEN {
            return Err(StoreError::Corrupt(format!(
                "refusing to append a {} byte payload (max {MAX_PAYLOAD_LEN})",
                payload.len()
            )));
        }
        let frame = encode_record(payload);
        self.file
            .write_all(&frame)
            .map_err(|e| StoreError::io(&self.path, "append", &e))?;
        self.file
            .flush()
            .map_err(|e| StoreError::io(&self.path, "flush", &e))?;
        self.file
            .sync_data()
            .map_err(|e| StoreError::io(&self.path, "sync", &e))?;
        Ok(())
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Atomically replace the log at `path` with `records`: write a sibling
/// temp file, sync it, then rename over the original.
pub fn rewrite_atomic<'r>(
    path: &Path,
    records: impl Iterator<Item = &'r [u8]>,
) -> Result<(), StoreError> {
    let tmp_path = path.with_extension("tmp");
    let mut tmp = File::create(&tmp_path).map_err(|e| StoreError::io(&tmp_path, "create", &e))?;
    for payload in records {
        let frame = encode_record(payload);
        tmp.write_all(&frame)
            .map_err(|e| StoreError::io(&tmp_path, "write", &e))?;
    }
    tmp.flush()
        .map_err(|e| StoreError::io(&tmp_path, "flush", &e))?;
    tmp.sync_data()
        .map_err(|e| StoreError::io(&tmp_path, "sync", &e))?;
    drop(tmp);
    std::fs::rename(&tmp_path, path).map_err(|e| StoreError::io(path, "rename", &e))?;
    Ok(())
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_record(b"alpha"));
        bytes.extend_from_slice(&encode_record(b""));
        bytes.extend_from_slice(&encode_record(b"beta"));
        let out = scan_records(&bytes);
        assert_eq!(
            out.records,
            vec![b"alpha".to_vec(), Vec::new(), b"beta".to_vec()]
        );
        assert_eq!(out.valid_len as usize, bytes.len());
        assert_eq!(out.dropped_bytes, 0);
        assert_eq!(out.torn, None);
    }

    #[test]
    fn torn_tail_variants_are_detected_and_prefix_kept() {
        let mut clean = Vec::new();
        clean.extend_from_slice(&encode_record(b"keep me"));
        let clean_len = clean.len();

        // Partial header.
        let mut bytes = clean.clone();
        bytes.extend_from_slice(&[1, 2, 3]);
        let out = scan_records(&bytes);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.valid_len as usize, clean_len);
        assert_eq!(out.torn, Some(TornTail::PartialHeader));

        // Partial payload.
        let mut bytes = clean.clone();
        let torn = encode_record(b"lost record");
        bytes.extend_from_slice(&torn[..torn.len() - 3]);
        let out = scan_records(&bytes);
        assert_eq!(out.records, vec![b"keep me".to_vec()]);
        assert_eq!(out.torn, Some(TornTail::PartialPayload));

        // Flipped payload byte -> CRC mismatch.
        let mut bytes = clean.clone();
        let mut bad = encode_record(b"bitrot");
        *bad.last_mut().unwrap() ^= 0x40;
        bytes.extend_from_slice(&bad);
        let out = scan_records(&bytes);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.torn, Some(TornTail::CrcMismatch));

        // Absurd announced length.
        let mut bytes = clean.clone();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&[0; 4]);
        let out = scan_records(&bytes);
        assert_eq!(out.torn, Some(TornTail::ImplausibleLength));
        assert_eq!(out.valid_len as usize, clean_len);
    }

    #[test]
    fn open_truncates_torn_tail_and_appends_cleanly() {
        let dir = tempdir();
        let path = dir.join("log");
        let mut bytes = encode_record(b"one");
        let torn = encode_record(b"two");
        bytes.extend_from_slice(&torn[..torn.len() - 1]);
        std::fs::write(&path, &bytes).unwrap();

        let (mut log, outcome) = FramedLog::open(&path).unwrap();
        assert_eq!(outcome.records, vec![b"one".to_vec()]);
        assert_eq!(outcome.torn, Some(TornTail::PartialPayload));
        log.append(b"three").unwrap();
        drop(log);

        let (_, outcome) = FramedLog::open(&path).unwrap();
        assert_eq!(outcome.records, vec![b"one".to_vec(), b"three".to_vec()]);
        assert_eq!(outcome.torn, None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewrite_atomic_replaces_content() {
        let dir = tempdir();
        let path = dir.join("log");
        let (mut log, _) = FramedLog::open(&path).unwrap();
        log.append(b"a").unwrap();
        log.append(b"a").unwrap();
        drop(log);
        rewrite_atomic(&path, [b"a".as_slice()].into_iter()).unwrap();
        let (_, outcome) = FramedLog::open(&path).unwrap();
        assert_eq!(outcome.records, vec![b"a".to_vec()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A fresh per-test temp dir under the target-adjacent tmp root.
    pub(crate) fn tempdir() -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "ds-store-{}-{}-{n}",
            std::process::id(),
            module_path!().replace("::", "-"),
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
