//! Disk-backed response-cache middleware.

use crate::response::request_digest;
use crate::store::ResponseStore;
use crate::StoreError;
use datasculpt_llm::cache::CacheStats;
use datasculpt_llm::{ChatModel, ChatRequest, ChatResponse, LlmError, ModelId, PricingTable};
use datasculpt_obs::{Counter, Event, RunObserver, SharedObserver};

/// [`ChatModel`] middleware over a [`ResponseStore`]: requests whose
/// prompt digest is already on disk replay the stored response (choices
/// *and* token usage, so ledgers reproduce exactly); everything else goes
/// to the backend and is persisted before being acknowledged.
///
/// Two invariants make resumed runs bit-identical:
///
/// * **Call-index alignment** — every disk hit calls
///   [`advance_replayed`](ChatModel::advance_replayed) on the backend, so
///   a backend whose responses depend on its logical call index (the
///   simulator) sees each request consume exactly one index whether it
///   was served live or from disk.
/// * **Store-before-acknowledge** — a backend response is appended (and
///   synced) to the log before the caller sees it; a crash can lose at
///   most the one in-flight call, never an acknowledged one.
///
/// Composes under the in-memory
/// [`CachedModel`](datasculpt_llm::CachedModel): stack
/// `CachedModel(DiskCachedModel(backend))` so purely intra-process
/// duplicate prompts stay off the disk path.
#[derive(Debug)]
pub struct DiskCachedModel<M> {
    inner: M,
    store: ResponseStore,
    stats: CacheStats,
    /// Exact nano-USD sent to the backend *by this process* (replays are
    /// free — that is the point of the store).
    billed_nanousd: u128,
    observer: Option<SharedObserver>,
}

impl<M: ChatModel> DiskCachedModel<M> {
    /// Wrap `inner` over an open store.
    pub fn new(inner: M, store: ResponseStore) -> Self {
        DiskCachedModel {
            inner,
            store,
            stats: CacheStats::default(),
            billed_nanousd: 0,
            observer: None,
        }
    }

    /// Attach a trace observer; hits and misses are mirrored to it as
    /// `store_hit` / `store_miss` counter events.
    pub fn with_observer(mut self, observer: SharedObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Hit/miss counters since construction. (Evictions are always 0:
    /// the store is append-only.)
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// Exact nano-USD billed by the backend through this middleware since
    /// construction. Replayed (disk-hit) calls bill nothing.
    pub fn billed_nanousd(&self) -> u128 {
        self.billed_nanousd
    }

    /// The underlying store.
    pub fn store(&self) -> &ResponseStore {
        &self.store
    }

    /// Mutable access to the underlying store (compaction).
    pub fn store_mut(&mut self) -> &mut ResponseStore {
        &mut self.store
    }

    /// The wrapped backend.
    pub fn get_ref(&self) -> &M {
        &self.inner
    }

    /// Unwrap, returning the backend and the store.
    pub fn into_parts(self) -> (M, ResponseStore) {
        (self.inner, self.store)
    }

    fn emit(&mut self, counter: Counter) {
        if let Some(obs) = &mut self.observer {
            obs.on_event(&Event::Counter { counter, delta: 1 });
        }
    }

    fn store_failure(e: &StoreError) -> LlmError {
        LlmError::Transport(format!("response store: {e}"))
    }
}

impl<M: ChatModel> ChatModel for DiskCachedModel<M> {
    fn complete(&mut self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        let digest = request_digest(request);
        if let Some(response) = self.store.get(digest).cloned() {
            self.stats.hits += 1;
            self.emit(Counter::StoreHit);
            self.inner.advance_replayed(1);
            return Ok(response);
        }
        self.stats.misses += 1;
        self.emit(Counter::StoreMiss);
        let response = self.inner.complete(request)?;
        self.billed_nanousd += PricingTable::cost_nanousd(
            response.model,
            response.usage.prompt_tokens,
            response.usage.completion_tokens,
        );
        self.store
            .put(digest, &response)
            .map_err(|e| Self::store_failure(&e))?;
        Ok(response)
    }

    /// Strictly sequential on purpose: interleaving hits (which advance
    /// the backend's replay index) with forwarded misses must preserve
    /// the exact per-request call indices of the uninterrupted run, which
    /// a regrouped sub-batch would not.
    fn complete_batch(&mut self, requests: &[ChatRequest]) -> Vec<Result<ChatResponse, LlmError>> {
        requests.iter().map(|r| self.complete(r)).collect()
    }

    fn model_id(&self) -> ModelId {
        self.inner.model_id()
    }

    fn advance_replayed(&mut self, calls: u64) {
        self.inner.advance_replayed(calls);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::tests::tempdir;
    use datasculpt_llm::{ChatMessage, ScriptedModel};

    fn req(text: &str) -> ChatRequest {
        ChatRequest::new(vec![ChatMessage::user(text)])
    }

    #[test]
    fn second_process_replays_from_disk_and_bills_zero() {
        let dir = tempdir();
        let path = dir.join("responses.log");

        let first_response;
        let first_billed;
        {
            let store = ResponseStore::open(&path).unwrap();
            let mut m = DiskCachedModel::new(ScriptedModel::new(vec!["answer".into()]), store);
            first_response = m.complete(&req("q")).unwrap();
            first_billed = m.billed_nanousd();
            assert!(first_billed > 0);
            assert_eq!(m.cache_stats().misses, 1);
        }
        // A fresh process over the same directory.
        {
            let store = ResponseStore::open(&path).unwrap();
            let mut m = DiskCachedModel::new(ScriptedModel::new(vec!["WRONG".into()]), store);
            let replayed = m.complete(&req("q")).unwrap();
            assert_eq!(replayed, first_response, "choices and usage replay");
            assert_eq!(m.cache_stats().hits, 1);
            assert_eq!(m.cache_stats().misses, 0);
            assert_eq!(m.billed_nanousd(), 0, "replays are free");
            // The hit consumed one scripted slot via advance_replayed.
            assert_eq!(m.get_ref().calls_served(), 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hits_advance_the_backend_call_index() {
        let dir = tempdir();
        let path = dir.join("responses.log");
        {
            let store = ResponseStore::open(&path).unwrap();
            let mut m = DiskCachedModel::new(
                ScriptedModel::new(vec!["a".into(), "b".into(), "c".into()]),
                store,
            );
            m.complete(&req("one")).unwrap(); // serves "a"
            m.complete(&req("two")).unwrap(); // serves "b"
        }
        let store = ResponseStore::open(&path).unwrap();
        let mut m = DiskCachedModel::new(
            ScriptedModel::new(vec!["a".into(), "b".into(), "c".into()]),
            store,
        );
        m.complete(&req("one")).unwrap(); // hit: index 0 consumed
        m.complete(&req("two")).unwrap(); // hit: index 1 consumed
        let live = m.complete(&req("three")).unwrap(); // live at index 2
        assert_eq!(live.choices[0].content, "c", "post-replay index aligned");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_mixes_hits_and_misses_sequentially() {
        let dir = tempdir();
        let path = dir.join("responses.log");
        {
            let store = ResponseStore::open(&path).unwrap();
            let mut m = DiskCachedModel::new(ScriptedModel::new(vec!["r".into()]), store);
            m.complete(&req("warm")).unwrap();
        }
        let store = ResponseStore::open(&path).unwrap();
        let mut m = DiskCachedModel::new(ScriptedModel::new(vec!["r".into()]), store);
        let results = m.complete_batch(&[req("warm"), req("cold")]);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(m.cache_stats().hits, 1);
        assert_eq!(m.cache_stats().misses, 1);
        assert_eq!(m.store().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn observer_sees_store_counters() {
        use datasculpt_obs::{ManualClock, MetricsRecorder, Tracer};
        let dir = tempdir();
        let path = dir.join("responses.log");
        let metrics = MetricsRecorder::new();
        let tracer =
            Tracer::new(Box::new(ManualClock::new(1))).with_sink(Box::new(metrics.clone()));
        let store = ResponseStore::open(&path).unwrap();
        let mut m = DiskCachedModel::new(ScriptedModel::new(vec!["r".into()]), store)
            .with_observer(SharedObserver::new(tracer));
        m.complete(&req("a")).unwrap(); // miss
        m.complete(&req("a")).unwrap(); // hit (same process, already stored)
        let counters = metrics.snapshot().counters;
        assert_eq!(counters["store_miss"], 1);
        assert_eq!(counters["store_hit"], 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_are_not_stored() {
        use datasculpt_llm::FailingModel;
        let dir = tempdir();
        let path = dir.join("responses.log");
        let store = ResponseStore::open(&path).unwrap();
        let inner = FailingModel::fail_on(ScriptedModel::new(vec!["ok".into()]), [0]);
        let mut m = DiskCachedModel::new(inner, store);
        assert!(m.complete(&req("q")).is_err());
        assert!(m.store().is_empty());
        assert_eq!(m.billed_nanousd(), 0);
        assert!(m.complete(&req("q")).is_ok());
        assert_eq!(m.store().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
