//! Deterministic scoped worker pool for the DataSculpt workspace.
//!
//! Every parallel path in the reproduction — bench grid cells, LF
//! vote-column application, the MeTaL EM E-step, batched chat completions —
//! runs through this crate, and all of them obey one contract:
//!
//! **work decomposition never depends on the thread count.**
//!
//! A computation is split into *shards* whose structure is a pure function
//! of the input length ([`shard_ranges`]); threads only decide how many
//! shards execute concurrently. Results are collected *in input order*, so
//! reductions that merge shard results left-to-right (including float
//! accumulation) produce bit-identical output at every `--threads` value.
//! Parallelism is purely a wall-clock optimization: `RunResult::digest()`
//! and ledger totals are invariant under it, which is what the tier-1
//! determinism tests in `datasculpt-bench` enforce.
//!
//! The pool is zero-dependency (std scoped threads), contains worker
//! panics and surfaces them as a [`PanicError`] instead of poisoning the
//! process, and degrades to a plain serial loop at one thread.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Default upper bound on shard count for [`Pool::map_shards`].
///
/// Chosen to be comfortably larger than any realistic core count so the
/// shard structure (and therefore every shard-ordered reduction) never
/// changes when the hardware does, while still keeping per-shard work
/// large enough to amortize dispatch.
pub const DEFAULT_SHARDS: usize = 64;

/// A worker panicked while executing one job.
///
/// The panic is contained: remaining work is cancelled, the scope joins,
/// and the payload message is carried here instead of unwinding through
/// the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicError {
    /// Index of the job (or shard) that panicked.
    pub shard: usize,
    /// Stringified panic payload, when the payload was a string.
    pub message: String,
}

impl std::fmt::Display for PanicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked on shard {}: {}",
            self.shard, self.message
        )
    }
}

impl std::error::Error for PanicError {}

/// A fixed-width scoped worker pool.
///
/// Cheap to copy (it is only a thread budget; scoped threads are spawned
/// per call and joined before returning), so it can be embedded in config
/// structs and cloned into long-lived components. [`Pool::serial`] is the
/// `Default`, which keeps every existing construction path single-threaded
/// unless a caller opts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::serial()
    }
}

impl Pool {
    /// A pool running up to `threads` jobs concurrently (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A single-threaded pool: all work runs on the caller's thread.
    pub fn serial() -> Self {
        Pool::new(1)
    }

    /// A pool sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Pool::new(std::thread::available_parallelism().map_or(1, usize::from))
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `jobs` independent jobs and collect their results **in job
    /// order**.
    ///
    /// Jobs are handed to workers through a shared counter, so scheduling
    /// is nondeterministic — but the output `Vec` is always
    /// `[f(0), f(1), …, f(jobs-1)]`, and each job sees only its own index,
    /// so the result is identical at every thread count. A panicking job
    /// cancels remaining work and is reported as [`PanicError`]; the serial
    /// path contains panics the same way so behavior does not differ by
    /// thread count.
    pub fn try_run<R, F>(&self, jobs: usize, f: F) -> Result<Vec<R>, PanicError>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if jobs == 0 {
            return Ok(Vec::new());
        }
        let workers = self.threads.min(jobs);
        if workers <= 1 {
            let mut out = Vec::with_capacity(jobs);
            for i in 0..jobs {
                out.push(contain(i, || f(i))?);
            }
            return Ok(out);
        }
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let slots: Vec<Mutex<Option<R>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        let first_panic: Mutex<Option<PanicError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    match contain(i, || f(i)) {
                        Ok(r) => {
                            if let Some(slot) = slots.get(i) {
                                *lock(slot) = Some(r);
                            }
                        }
                        Err(e) => {
                            lock(&first_panic).get_or_insert(e);
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                });
            }
        });
        if let Some(e) = lock(&first_panic).take() {
            return Err(e);
        }
        let mut out = Vec::with_capacity(jobs);
        for (i, slot) in slots.into_iter().enumerate() {
            match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
                Some(r) => out.push(r),
                // Unreachable unless a worker died without reporting; keep
                // the error path rather than panicking in a library.
                None => {
                    return Err(PanicError {
                        shard: i,
                        message: "worker exited without a result".to_string(),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Map `f` over a slice, preserving input order in the output.
    pub fn try_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, PanicError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        // ds-lint: allow(unchecked-index): try_run only passes i < items.len()
        self.try_run(items.len(), |i| f(i, &items[i]))
    }

    /// Map `f` over the [`shard_ranges`] of `0..len` (at most
    /// [`DEFAULT_SHARDS`] shards), returning one result per shard **in
    /// shard order**.
    ///
    /// Because the shard structure depends only on `len`, a reduction that
    /// folds the returned shard results left-to-right is bit-identical at
    /// every thread count — this is the primitive behind the parallel EM
    /// E-step and vote-column construction.
    pub fn map_shards<R, F>(&self, len: usize, f: F) -> Result<Vec<R>, PanicError>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let ranges = shard_ranges(len, DEFAULT_SHARDS);
        self.try_run(ranges.len(), |s| f(ranges.get(s).cloned().unwrap_or(0..0)))
    }
}

/// Split `0..len` into at most `max_shards` contiguous, balanced, ordered
/// ranges.
///
/// The decomposition is a pure function of `(len, max_shards)`: shard
/// count is `min(len, max(1, max_shards))`, sizes differ by at most one,
/// and larger shards come first. It never depends on thread count or
/// scheduling, which is what keeps shard-ordered reductions deterministic.
pub fn shard_ranges(len: usize, max_shards: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let shards = max_shards.max(1).min(len);
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let size = base + usize::from(s < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Run `f`, converting a panic into a [`PanicError`] tagged with `shard`.
fn contain<R>(shard: usize, f: impl FnOnce() -> R) -> Result<R, PanicError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|payload| PanicError {
        shard,
        message: panic_message(payload.as_ref()),
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Lock a mutex, ignoring poisoning: a poisoned guard only means another
/// worker panicked, and panics are already surfaced through [`PanicError`].
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        for threads in [1, 2, 3, 8, 33] {
            let pool = Pool::new(threads);
            let items: Vec<usize> = (0..100).collect();
            let out = pool
                .try_map(&items, |i, &x| {
                    // Make late jobs finish first to stress ordering.
                    if i % 7 == 0 {
                        std::thread::yield_now();
                    }
                    x * 2
                })
                .expect("no panics");
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = Pool::new(4);
        let out: Vec<u32> = pool.try_map::<u32, u32, _>(&[], |_, &x| x).expect("empty");
        assert!(out.is_empty());
        assert!(pool.map_shards(0, |r| r.len()).expect("empty").is_empty());
    }

    #[test]
    fn panic_is_contained_and_reported() {
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let err = pool
                .try_run(10, |i| {
                    if i == 3 {
                        panic!("boom at {i}");
                    }
                    i
                })
                .expect_err("job 3 panics");
            // Under concurrency any panicking job may be reported first;
            // with these inputs only job 3 panics.
            assert_eq!(err.shard, 3);
            assert!(err.message.contains("boom at 3"), "got: {}", err.message);
            assert!(err.to_string().contains("worker panicked on shard 3"));
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let items: Vec<u64> = (0..257).map(|i| i * 31 % 97).collect();
        let f = |_: usize, &x: &u64| (x as f64).sqrt().sin();
        let serial = Pool::serial().try_map(&items, f).expect("serial");
        for threads in [2, 5, 16] {
            let par = Pool::new(threads).try_map(&items, f).expect("parallel");
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn shard_ranges_cover_exactly_and_balance() {
        for len in [0usize, 1, 2, 63, 64, 65, 1000] {
            let ranges = shard_ranges(len, DEFAULT_SHARDS);
            assert_eq!(ranges.len(), len.min(DEFAULT_SHARDS));
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "contiguous and ordered");
                assert!(!r.is_empty(), "no empty shards");
                next = r.end;
            }
            assert_eq!(next, len, "full coverage");
            if let (Some(min), Some(max)) = (
                ranges.iter().map(|r| r.len()).min(),
                ranges.iter().map(|r| r.len()).max(),
            ) {
                assert!(max - min <= 1, "balanced within one");
            }
        }
    }

    #[test]
    fn shard_structure_is_thread_count_independent() {
        // map_shards output depends only on len, never on pool width.
        let a = Pool::new(1).map_shards(1000, |r| r).expect("a");
        let b = Pool::new(8).map_shards(1000, |r| r).expect("b");
        assert_eq!(a, b);
    }

    #[test]
    fn zero_threads_clamps_to_serial() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(Pool::auto().threads() >= 1);
        assert_eq!(Pool::default(), Pool::serial());
    }
}
