//! Property-based tests for the deterministic worker pool.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt_exec::{shard_ranges, Pool};
use proptest::prelude::*;

proptest! {
    /// `try_map` preserves input order for arbitrary inputs and thread
    /// counts: the output is always `[f(x_0), f(x_1), …]`.
    #[test]
    fn try_map_preserves_input_order(
        items in proptest::collection::vec(0u32..1_000_000, 0..200),
        threads in 1usize..17,
    ) {
        let out = Pool::new(threads)
            .try_map(&items, |i, &x| (i, u64::from(x) * 3 + 1))
            .unwrap();
        let expected: Vec<(usize, u64)> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| (i, u64::from(x) * 3 + 1))
            .collect();
        prop_assert_eq!(out, expected);
    }

    /// `shard_ranges` is an ordered partition of `0..len` for arbitrary
    /// shard counts: contiguous, non-empty, balanced within one.
    #[test]
    fn shard_ranges_partition_the_input(len in 0usize..5_000, max_shards in 0usize..200) {
        let ranges = shard_ranges(len, max_shards);
        if len == 0 {
            prop_assert!(ranges.is_empty());
        } else {
            prop_assert_eq!(ranges.len(), len.min(max_shards.max(1)));
            let mut next = 0;
            for r in &ranges {
                prop_assert_eq!(r.start, next);
                prop_assert!(r.end > r.start);
                next = r.end;
            }
            prop_assert_eq!(next, len);
            let min = ranges.iter().map(|r| r.len()).min().unwrap();
            let max = ranges.iter().map(|r| r.len()).max().unwrap();
            prop_assert!(max - min <= 1);
        }
    }

    /// Concatenating `map_shards` results in shard order reproduces the
    /// serial computation exactly, at any thread count.
    #[test]
    fn map_shards_concat_matches_serial(len in 0usize..2_000, threads in 1usize..17) {
        let shards = Pool::new(threads)
            .map_shards(len, |r| r.collect::<Vec<usize>>())
            .unwrap();
        let flat: Vec<usize> = shards.into_iter().flatten().collect();
        prop_assert_eq!(flat, (0..len).collect::<Vec<usize>>());
    }
}
