//! Cross-dataset sanity: every synthetic corpus must expose the properties
//! the paper's experiments rely on — class-indicative keywords with the
//! right accuracy range, imbalance where the original is imbalanced, and
//! enough lexicon diversity to support hundreds of distinct LFs.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt_data::DatasetName;

#[test]
fn every_dataset_has_filterable_keywords() {
    // The §3.5 accuracy filter keeps LFs above 0.6 validation accuracy;
    // each class of each dataset must offer a healthy pool above that bar.
    for name in DatasetName::ALL {
        let (_, model) = name.spec();
        let priors = model.priors().to_vec();
        for c in 0..model.n_classes() {
            let usable = model
                .class_grams(c)
                .filter(|g| g.lf_accuracy(&priors) >= 0.6)
                .count();
            assert!(
                usable >= 15,
                "{name} class {c}: only {usable} filter-passing keywords"
            );
        }
    }
}

#[test]
fn keyword_accuracy_sits_in_the_papers_range() {
    // Table 2 reports mean LF accuracies of ~0.69–0.92; the Bayes accuracy
    // of our indicative grams should bracket that range, not sit at 1.0.
    for name in DatasetName::ALL {
        let (_, model) = name.spec();
        let priors = model.priors().to_vec();
        let accs: Vec<f64> = model
            .indicative_grams()
            .iter()
            .map(|g| g.lf_accuracy(&priors))
            .collect();
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        assert!(
            (0.6..0.99).contains(&mean),
            "{name}: mean Bayes keyword accuracy {mean}"
        );
        let perfect = accs.iter().filter(|a| **a > 0.999).count();
        assert!(
            (perfect as f64) < 0.3 * accs.len() as f64,
            "{name}: too many perfect keywords ({perfect}/{})",
            accs.len()
        );
    }
}

#[test]
fn imbalanced_datasets_are_imbalanced() {
    for (name, expected_minority) in [(DatasetName::Sms, 0.132), (DatasetName::Spouse, 0.08)] {
        let (spec, model) = name.spec();
        assert_eq!(spec.metric, datasculpt_data::Metric::F1);
        let minority = model.priors()[1];
        assert!(
            (minority - expected_minority).abs() < 1e-9,
            "{name}: prior {minority}"
        );
    }
    for name in [DatasetName::Imdb, DatasetName::Yelp, DatasetName::Agnews] {
        let (spec, model) = name.spec();
        assert_eq!(spec.metric, datasculpt_data::Metric::Accuracy);
        let max = model.priors().iter().cloned().fold(0.0f64, f64::max);
        assert!(max < 0.6, "{name} should be balanced, max prior {max}");
    }
}

#[test]
fn lexicons_support_table2_lf_set_sizes() {
    // DataSculpt-KATE reaches 117–329 LFs per dataset (Table 2); with
    // phrase extensions roughly doubling distinct keywords, the base
    // lexicons need at least ~100 grams each.
    for name in DatasetName::ALL {
        let (_, model) = name.spec();
        // Spouse is the exception by design: its Table 2 LF counts are an
        // order of magnitude smaller (10–43) than the other datasets'.
        let floor = if name == DatasetName::Spouse { 60 } else { 100 };
        assert!(
            model.indicative_grams().len() >= floor,
            "{name}: lexicon too small ({})",
            model.indicative_grams().len()
        );
    }
}

#[test]
fn document_lengths_track_the_domain() {
    // Comments/texts are short; reviews are long; news in between. These
    // ratios drive the PromptedLF token accounting of Figure 3.
    let mean_len = |name: DatasetName| {
        let d = name.load_scaled(3, 0.02);
        d.train.iter().map(|i| i.tokens.len()).sum::<usize>() as f64 / d.train.len() as f64
    };
    let youtube = mean_len(DatasetName::Youtube);
    let sms = mean_len(DatasetName::Sms);
    let imdb = mean_len(DatasetName::Imdb);
    let agnews = mean_len(DatasetName::Agnews);
    assert!(youtube < 30.0, "youtube {youtube}");
    assert!(sms < 30.0, "sms {sms}");
    assert!(imdb > 80.0, "imdb {imdb}");
    assert!(agnews > 25.0 && agnews < 80.0, "agnews {agnews}");
}

#[test]
fn full_split_sizes_sum_to_table1() {
    let expected = [
        (DatasetName::Youtube, (1586, 120, 250)),
        (DatasetName::Sms, (4571, 500, 500)),
        (DatasetName::Imdb, (20_000, 2_500, 2_500)),
        (DatasetName::Yelp, (30_400, 3_800, 3_800)),
        (DatasetName::Agnews, (96_000, 12_000, 12_000)),
        (DatasetName::Spouse, (22_254, 2_811, 2_701)),
    ];
    for (name, (train, valid, test)) in expected {
        let (spec, _) = name.spec();
        assert_eq!(
            (spec.sizes.train, spec.sizes.valid, spec.sizes.test),
            (train, valid, test),
            "{name}"
        );
    }
}
