//! Property-based tests for the dataset substrate.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt_data::{DatasetName, IndicativeNgram};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generated datasets are structurally sound at any seed: labels in
    /// range, tokens non-empty, text round-trips, relation fields
    /// consistent.
    #[test]
    fn generated_datasets_are_wellformed(seed in 0u64..1000) {
        for name in [DatasetName::Youtube, DatasetName::Spouse] {
            let d = name.load_scaled(seed, 0.01);
            let c = d.n_classes();
            for split in [&d.valid, &d.test] {
                for inst in split.iter() {
                    let y = inst.label.expect("labeled split");
                    prop_assert!(y < c);
                    prop_assert!(!inst.tokens.is_empty());
                    prop_assert_eq!(
                        datasculpt_text::tokenize(&inst.text),
                        inst.tokens.clone()
                    );
                    if d.spec.relation {
                        let marked = inst.marked_tokens.as_ref().expect("marked view");
                        prop_assert!(marked.iter().any(|t| t == "[a]"));
                        prop_assert!(marked.iter().any(|t| t == "[b]"));
                        let (a, b) = inst.entities.as_ref().expect("entities");
                        prop_assert!(a != b);
                    } else {
                        prop_assert!(inst.marked_tokens.is_none());
                        prop_assert!(inst.entities.is_none());
                    }
                }
            }
        }
    }

    /// Affinity lookups agree with the indicative list, and Bayes LF
    /// accuracy/coverage are probabilities.
    #[test]
    fn affinity_consistency(seed in 0u64..100) {
        let (_, model) = DatasetName::Imdb.spec();
        let _ = seed;
        let priors = model.priors().to_vec();
        prop_assert!((priors.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for g in model.indicative_grams().iter().take(50) {
            let probs = model.affinity(&g.gram).expect("indicative gram has affinity");
            prop_assert_eq!(probs, g.probs.as_slice());
            prop_assert!((0.0..=1.0).contains(&g.lf_accuracy(&priors)));
            prop_assert!((0.0..=1.0).contains(&g.coverage(&priors)));
            prop_assert!(g.dominant_class() < model.n_classes());
        }
    }

    /// Documents are deterministic per (label, seed, stream) and differ
    /// across streams.
    #[test]
    fn document_sampling_deterministic(seed in any::<u64>(), stream in 0u64..1000) {
        let (_, model) = DatasetName::Youtube.spec();
        let label = (stream % 2) as usize;
        let a = model.sample_document(label, seed, stream);
        let b = model.sample_document(label, seed, stream);
        prop_assert_eq!(a.tokens.clone(), b.tokens);
        let c = model.sample_document(label, seed, stream.wrapping_add(1));
        // Overwhelmingly likely to differ.
        prop_assert!(a.tokens != c.tokens || a.tokens.len() < 3);
    }

    /// `IndicativeNgram::dominant_class` really is the argmax.
    #[test]
    fn dominant_class_is_argmax(probs in proptest::collection::vec(0.001f64..0.5, 2..5)) {
        let g = IndicativeNgram { gram: "x".into(), probs: probs.clone() };
        let d = g.dominant_class();
        prop_assert!(probs.iter().all(|&p| p <= probs[d]));
    }
}
