//! Dataset loading: synthesize the three splits of a named dataset.

use crate::datasets::{self, render_text};
use crate::generative::GenerativeModel;
use crate::instance::{Instance, Split};
use crate::spec::{DatasetSpec, SplitSizes};
use datasculpt_text::rng::derive_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The six evaluation datasets of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetName {
    /// Youtube comment spam (review domain, 2 classes).
    Youtube,
    /// SMS spam (text-message domain, 2 classes, F1).
    Sms,
    /// IMDB movie-review sentiment (2 classes).
    Imdb,
    /// Yelp review sentiment (2 classes).
    Yelp,
    /// AG News topic classification (4 classes).
    Agnews,
    /// Spouse relation classification (2 classes, F1, default class).
    Spouse,
}

impl DatasetName {
    /// All six datasets in the paper's column order.
    pub const ALL: [DatasetName; 6] = [
        DatasetName::Youtube,
        DatasetName::Sms,
        DatasetName::Imdb,
        DatasetName::Yelp,
        DatasetName::Agnews,
        DatasetName::Spouse,
    ];

    /// Short lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            DatasetName::Youtube => "youtube",
            DatasetName::Sms => "sms",
            DatasetName::Imdb => "imdb",
            DatasetName::Yelp => "yelp",
            DatasetName::Agnews => "agnews",
            DatasetName::Spouse => "spouse",
        }
    }

    /// Parse from a short name (case-insensitive).
    pub fn parse(s: &str) -> Option<DatasetName> {
        match s.to_ascii_lowercase().as_str() {
            "youtube" => Some(DatasetName::Youtube),
            "sms" => Some(DatasetName::Sms),
            "imdb" => Some(DatasetName::Imdb),
            "yelp" => Some(DatasetName::Yelp),
            "agnews" => Some(DatasetName::Agnews),
            "spouse" => Some(DatasetName::Spouse),
            _ => None,
        }
    }

    /// Spec and generative model (no instances generated yet).
    pub fn spec(&self) -> (DatasetSpec, GenerativeModel) {
        match self {
            DatasetName::Youtube => datasets::youtube::build(),
            DatasetName::Sms => datasets::sms::build(),
            DatasetName::Imdb => datasets::imdb::build(),
            DatasetName::Yelp => datasets::yelp::build(),
            DatasetName::Agnews => datasets::agnews::build(),
            DatasetName::Spouse => datasets::spouse::build(),
        }
    }

    /// Generate the full dataset at Table 1 sizes.
    pub fn load(&self, seed: u64) -> TextDataset {
        self.load_scaled(seed, 1.0)
    }

    /// Generate a down-scaled variant (for tests and quick examples).
    /// Each split keeps at least 16 instances.
    pub fn load_scaled(&self, seed: u64, factor: f64) -> TextDataset {
        let (mut spec, model) = self.spec();
        if (factor - 1.0).abs() > 1e-12 {
            spec.sizes = spec.sizes.scaled(factor, 16);
        }
        TextDataset::generate(spec, model, seed)
    }
}

impl std::fmt::Display for DatasetName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A fully materialized dataset: spec, generative model, three splits.
#[derive(Debug, Clone)]
pub struct TextDataset {
    /// Static task description.
    pub spec: DatasetSpec,
    /// Ground-truth corpus model (used by the LLM simulator and oracles).
    pub generative: GenerativeModel,
    /// Unlabeled training split (labels hidden for Spouse).
    pub train: Split,
    /// Labeled validation split.
    pub valid: Split,
    /// Labeled test split.
    pub test: Split,
}

impl TextDataset {
    /// Synthesize all splits. Deterministic in `(spec.name, seed)`.
    pub fn generate(spec: DatasetSpec, generative: GenerativeModel, seed: u64) -> Self {
        let base = derive_seed(seed, datasculpt_text::rng::hash_str(spec.name));
        let SplitSizes { train, valid, test } = spec.sizes;
        let train_split = Self::gen_split(&generative, train, base, 0, spec.train_labels_available);
        let valid_split = Self::gen_split(&generative, valid, base, 1, true);
        let test_split = Self::gen_split(&generative, test, base, 2, true);
        Self {
            spec,
            generative,
            train: train_split,
            valid: valid_split,
            test: test_split,
        }
    }

    fn gen_split(
        model: &GenerativeModel,
        size: usize,
        base: u64,
        split_id: u64,
        keep_labels: bool,
    ) -> Split {
        let split_seed = derive_seed(base, split_id);
        let mut label_rng = StdRng::seed_from_u64(derive_seed(split_seed, u64::MAX));
        let mut instances = Vec::with_capacity(size);
        for id in 0..size {
            let label = model.sample_label(&mut label_rng);
            let doc = model.sample_document(label, split_seed, id as u64);
            let text = render_text(&doc.tokens);
            instances.push(Instance {
                id,
                text,
                tokens: doc.tokens,
                marked_tokens: doc.marked,
                entities: doc.entities,
                label: if keep_labels { Some(label) } else { None },
            });
        }
        Split { instances }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.spec.n_classes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Metric;

    #[test]
    fn load_scaled_is_deterministic() {
        let a = DatasetName::Youtube.load_scaled(42, 0.05);
        let b = DatasetName::Youtube.load_scaled(42, 0.05);
        assert_eq!(a.train.len(), b.train.len());
        assert_eq!(a.train.instances[0].text, b.train.instances[0].text);
        assert_eq!(a.test.instances[3].label, b.test.instances[3].label);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetName::Youtube.load_scaled(1, 0.05);
        let b = DatasetName::Youtube.load_scaled(2, 0.05);
        assert_ne!(a.train.instances[0].text, b.train.instances[0].text);
    }

    #[test]
    fn splits_are_distinct() {
        let d = DatasetName::Sms.load_scaled(5, 0.05);
        assert_ne!(d.train.instances[0].text, d.valid.instances[0].text);
        assert_ne!(d.valid.instances[0].text, d.test.instances[0].text);
    }

    #[test]
    fn spouse_train_labels_hidden() {
        let d = DatasetName::Spouse.load_scaled(3, 0.01);
        assert!(d.train.instances.iter().all(|i| i.label.is_none()));
        assert!(d.valid.instances.iter().all(|i| i.label.is_some()));
        assert!(d.test.instances.iter().all(|i| i.label.is_some()));
        assert_eq!(d.spec.metric, Metric::F1);
    }

    #[test]
    fn full_sizes_match_table1() {
        // Generate the smallest dataset at full size to check the plumbing.
        let d = DatasetName::Youtube.load(0);
        assert_eq!(d.train.len(), 1586);
        assert_eq!(d.valid.len(), 120);
        assert_eq!(d.test.len(), 250);
    }

    #[test]
    fn text_round_trips_to_tokens() {
        let d = DatasetName::Imdb.load_scaled(9, 0.01);
        for inst in d.train.iter().take(20) {
            assert_eq!(datasculpt_text::tokenize(&inst.text), inst.tokens);
        }
    }

    #[test]
    fn parse_and_display() {
        for name in DatasetName::ALL {
            assert_eq!(DatasetName::parse(name.as_str()), Some(name));
            assert_eq!(name.to_string(), name.as_str());
        }
        assert_eq!(DatasetName::parse("IMDB"), Some(DatasetName::Imdb));
        assert_eq!(DatasetName::parse("unknown"), None);
    }

    #[test]
    fn class_balance_tracks_priors() {
        let d = DatasetName::Sms.load_scaled(11, 0.5);
        let dist = d.train.class_distribution(2);
        assert!((dist[1] - 0.132).abs() < 0.03, "spam frac {}", dist[1]);
    }
}
