//! Dataset specifications (Table 1 of the paper).

/// Evaluation metric for the end model: accuracy for balanced datasets,
/// positive-class F1 for imbalanced ones (SMS, Spouse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Plain accuracy.
    Accuracy,
    /// F1 of the positive class (class 1).
    F1,
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Metric::Accuracy => write!(f, "Acc"),
            Metric::F1 => write!(f, "F1"),
        }
    }
}

/// Train / validation / test sizes (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitSizes {
    /// Unlabeled training split size.
    pub train: usize,
    /// Labeled validation split size (source of in-context examples and the
    /// accuracy filter).
    pub valid: usize,
    /// Test split size.
    pub test: usize,
}

impl SplitSizes {
    /// Scale all splits by `factor`, keeping at least `min` instances each.
    pub fn scaled(&self, factor: f64, min: usize) -> SplitSizes {
        let s = |n: usize| (((n as f64) * factor).round() as usize).max(min);
        SplitSizes {
            train: s(self.train),
            valid: s(self.valid),
            test: s(self.test),
        }
    }
}

/// Static description of a dataset/task.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Short dataset name, e.g. `"youtube"`.
    pub name: &'static str,
    /// Domain shown in Table 1, e.g. `"Review"`.
    pub domain: &'static str,
    /// One-sentence task description used in the prompt's system message
    /// (the underlined dataset-specific part of Figure 2).
    pub task_description: &'static str,
    /// What one instance is called in prompts, e.g. `"a comment for a video"`.
    pub instance_noun: &'static str,
    /// Human-readable class names, indexed by label.
    pub class_names: Vec<&'static str>,
    /// Default class assigned to LF-uncovered instances before end-model
    /// training (§3.6). `None` for most datasets; `Some(0)` for Spouse.
    pub default_class: Option<usize>,
    /// True for relation-classification tasks (entity-anchored LFs).
    pub relation: bool,
    /// End-model evaluation metric.
    pub metric: Metric,
    /// Whether ground-truth train labels may be used for reporting LF
    /// statistics (false for Spouse, per §4.1).
    pub train_labels_available: bool,
    /// Split sizes (Table 1).
    pub sizes: SplitSizes,
}

impl DatasetSpec {
    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_sizes_respect_min() {
        let s = SplitSizes {
            train: 1000,
            valid: 100,
            test: 50,
        };
        let t = s.scaled(0.01, 20);
        assert_eq!(t.train, 20); // 10 rounds below min
        assert_eq!(t.valid, 20);
        assert_eq!(t.test, 20);
        let u = s.scaled(0.5, 10);
        assert_eq!(u.train, 500);
        assert_eq!(u.valid, 50);
        assert_eq!(u.test, 25);
    }

    #[test]
    fn metric_display() {
        assert_eq!(Metric::Accuracy.to_string(), "Acc");
        assert_eq!(Metric::F1.to_string(), "F1");
    }
}
