//! Instances and splits.

/// A class label: a dense index into [`crate::DatasetSpec::class_names`].
pub type Label = usize;

/// One text instance.
///
/// For relation-classification datasets (Spouse) the instance carries the
/// entity pair and a *marked* token view in which entity mentions are
/// replaced by the `[a]` / `[b]` placeholder tokens — this is the view
/// entity-anchored keyword LFs match against (§3.1).
#[derive(Debug, Clone)]
pub struct Instance {
    /// Dense id within its split.
    pub id: usize,
    /// The rendered surface text shown in prompts.
    pub text: String,
    /// Lowercase word tokens of `text`.
    pub tokens: Vec<String>,
    /// Token view with entity mentions replaced by `[a]`/`[b]` markers
    /// (relation datasets only).
    pub marked_tokens: Option<Vec<String>>,
    /// The entity pair being classified (relation datasets only).
    pub entities: Option<(String, String)>,
    /// Ground-truth label, if available for this split.
    pub label: Option<Label>,
}

impl Instance {
    /// The token view keyword LFs should match against: the marked view for
    /// relation tasks, the plain tokens otherwise.
    pub fn match_tokens(&self) -> &[String] {
        self.marked_tokens.as_deref().unwrap_or(&self.tokens)
    }

    /// The query text to embed in a prompt: entity-marked for relation
    /// tasks (so the LLM sees which pair is being asked about).
    pub fn prompt_text(&self) -> String {
        match (&self.marked_tokens, &self.entities) {
            (Some(marked), Some((a, b))) => {
                // Render the marked view but with readable entity tags.
                let mut s = String::with_capacity(self.text.len() + 16);
                for (i, t) in marked.iter().enumerate() {
                    if i > 0 {
                        s.push(' ');
                    }
                    match t.as_str() {
                        "[a]" => {
                            s.push_str("[A:");
                            s.push_str(a);
                            s.push(']');
                        }
                        "[b]" => {
                            s.push_str("[B:");
                            s.push_str(b);
                            s.push(']');
                        }
                        _ => s.push_str(t),
                    }
                }
                s
            }
            _ => self.text.clone(),
        }
    }
}

/// One dataset split (train / valid / test).
#[derive(Debug, Clone, Default)]
pub struct Split {
    /// Instances, indexed by their `id`.
    pub instances: Vec<Instance>,
}

impl Split {
    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True if the split has no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Ground-truth labels (panics if any label is missing).
    ///
    /// Only call on splits whose labels are available; see
    /// [`crate::DatasetSpec::train_labels_available`].
    pub fn labels(&self) -> Vec<Label> {
        self.instances
            .iter()
            .map(|i| {
                #[allow(clippy::expect_used)]
                // ds-lint: allow(unwrap): documented precondition — callers gate on train_labels_available
                i.label.expect("label unavailable for this split")
            })
            .collect()
    }

    /// Labels as `Option`s (never panics).
    pub fn labels_opt(&self) -> Vec<Option<Label>> {
        self.instances.iter().map(|i| i.label).collect()
    }

    /// Empirical class distribution over instances with labels.
    pub fn class_distribution(&self, n_classes: usize) -> Vec<f64> {
        let mut counts = vec![0usize; n_classes];
        let mut total = 0usize;
        for inst in &self.instances {
            if let Some(slot) = inst.label.and_then(|y| counts.get_mut(y)) {
                *slot += 1;
                total += 1;
            }
        }
        if total == 0 {
            return vec![1.0 / n_classes as f64; n_classes];
        }
        counts
            .into_iter()
            .map(|c| c as f64 / total as f64)
            .collect()
    }

    /// Iterate over instances.
    pub fn iter(&self) -> std::slice::Iter<'_, Instance> {
        self.instances.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(id: usize, label: Option<Label>) -> Instance {
        Instance {
            id,
            text: format!("text {id}"),
            tokens: vec!["text".into(), format!("{id}")],
            marked_tokens: None,
            entities: None,
            label,
        }
    }

    #[test]
    fn match_tokens_prefers_marked_view() {
        let mut i = inst(0, Some(1));
        assert_eq!(i.match_tokens(), i.tokens.as_slice());
        i.marked_tokens = Some(vec!["[a]".into(), "married".into(), "[b]".into()]);
        assert_eq!(i.match_tokens()[0], "[a]");
    }

    #[test]
    fn prompt_text_renders_entities() {
        let mut i = inst(0, Some(1));
        i.marked_tokens = Some(vec!["[a]".into(), "married".into(), "[b]".into()]);
        i.entities = Some(("john smith".into(), "mary jones".into()));
        assert_eq!(i.prompt_text(), "[A:john smith] married [B:mary jones]");
    }

    #[test]
    fn prompt_text_plain_for_classification() {
        let i = inst(3, None);
        assert_eq!(i.prompt_text(), "text 3");
    }

    #[test]
    fn class_distribution_sums_to_one() {
        let s = Split {
            instances: vec![inst(0, Some(0)), inst(1, Some(1)), inst(2, Some(1))],
        };
        let d = s.class_distribution(2);
        assert!((d[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn class_distribution_uniform_when_unlabeled() {
        let s = Split {
            instances: vec![inst(0, None)],
        };
        assert_eq!(s.class_distribution(4), vec![0.25; 4]);
    }

    #[test]
    #[should_panic(expected = "label unavailable")]
    fn labels_panics_on_missing() {
        let s = Split {
            instances: vec![inst(0, None)],
        };
        let _ = s.labels();
    }
}
