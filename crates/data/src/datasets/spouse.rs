//! Spouse relation classification (Signal Media news corpus). 2 classes:
//! 0 = no spouse relation (default class, §3.6), 1 = spouse relation.
//!
//! Instances mention an entity pair `[A]`, `[B]`. Positive documents link
//! the pair with a connector pattern ("and his wife", "married"); negative
//! documents mention both entities apart, and a fraction are *distractors*
//! that contain a relation connector about a third person — the "A marry C"
//! failure mode of plain keyword LFs that motivates entity-anchored LFs in
//! §3.1. Train ground-truth labels are treated as unavailable (§4.1), and
//! the end model is scored with positive-class F1.

use super::{Lexicon, Tier, BACKGROUND_COMMON};
use crate::generative::{GenerativeModel, RelationConfig};
use crate::spec::{DatasetSpec, Metric, SplitSizes};

const DOMAIN_FILLER: &[&str] = &[
    "news",
    "article",
    "story",
    "interview",
    "reporter",
    "sources",
    "family",
    "home",
    "house",
    "event",
    "ceremony",
    "met",
    "meeting",
    "spoke",
    "attended",
    "appeared",
    "joined",
    "worked",
    "career",
    "company",
    "film",
    "show",
    "friends",
    "known",
    "public",
];

const FIRST_NAMES: &[&str] = &[
    "james",
    "mary",
    "john",
    "patricia",
    "robert",
    "jennifer",
    "michael",
    "linda",
    "william",
    "elizabeth",
    "david",
    "barbara",
    "richard",
    "susan",
    "joseph",
    "jessica",
    "thomas",
    "sarah",
    "charles",
    "karen",
    "daniel",
    "nancy",
    "matthew",
    "lisa",
    "anthony",
    "betty",
    "mark",
    "margaret",
    "donald",
    "sandra",
    "steven",
    "ashley",
    "paul",
    "kimberly",
    "andrew",
    "emily",
    "joshua",
    "donna",
    "kenneth",
    "michelle",
    "kevin",
    "carol",
    "brian",
    "amanda",
    "george",
    "melissa",
    "edward",
    "deborah",
];

const LAST_NAMES: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
    "taylor",
    "moore",
    "jackson",
    "martin",
    "lee",
    "perez",
    "thompson",
    "white",
    "harris",
    "sanchez",
    "clark",
    "ramirez",
    "lewis",
    "robinson",
    "walker",
    "young",
    "allen",
    "king",
    "wright",
    "scott",
    "torres",
    "nguyen",
    "hill",
    "flores",
];

/// Connector patterns that link `[a]` and `[b]` in positive documents.
const POSITIVE_CONNECTORS: &[&str] = &[
    "married",
    "and his wife",
    "and her husband",
    "is married to",
    "wed",
    "tied the knot with",
    "and spouse",
    "exchanged vows with",
];

/// Spec + generative model for the synthetic Spouse dataset.
pub fn build() -> (DatasetSpec, GenerativeModel) {
    let spec = DatasetSpec {
        name: "spouse",
        domain: "News",
        task_description: "a relation classification task. In each iteration, the user will provide a news passage mentioning two persons [A] and [B]. Please decide whether [A] and [B] are spouses. (0 for no spouse relation, 1 for spouse relation)",
        instance_noun: "a news passage mentioning two persons",
        class_names: vec!["no-relation", "spouse"],
        default_class: Some(0),
        relation: true,
        metric: Metric::F1,
        train_labels_available: false,
        sizes: SplitSizes {
            train: 22_254,
            valid: 2_811,
            test: 2_701,
        },
    };

    let mut lx = Lexicon::new(2);

    // Spouse cues (class 1) beyond the anchored connectors: wedding-domain
    // vocabulary that co-occurs with real couples. Low leak to survive the
    // 8% positive prior.
    for (g, own) in [
        ("wedding", 0.14),
        ("wife", 0.16),
        ("husband", 0.16),
        ("marriage", 0.10),
        ("honeymoon", 0.05),
        ("anniversary", 0.06),
        ("bride", 0.05),
        ("groom", 0.04),
        ("newlyweds", 0.03),
        ("divorce", 0.06),
        ("engaged", 0.07),
        ("engagement", 0.05),
        ("fiancee", 0.04),
        ("fiance", 0.04),
        ("couple", 0.12),
        ("the couple", 0.08),
        ("his wife", 0.09),
        ("her husband", 0.09),
        ("wedding ceremony", 0.03),
        ("got married", 0.05),
        ("their marriage", 0.04),
        ("married couple", 0.03),
        ("vows", 0.04),
        ("spouse", 0.05),
        ("matrimony", 0.02),
        ("wedded", 0.02),
        ("bride and groom", 0.02),
        ("wedding anniversary", 0.02),
        ("celebrated their", 0.03),
        ("love of his life", 0.015),
        ("love of her life", 0.015),
    ] {
        lx.add_exact(1, g, own, 0.05);
    }

    // Non-relation context (class 0): other relationships and professional
    // contexts. Weaker pool — the paper observes LLMs rarely produce
    // negative-class LFs here, and the default class covers the rest.
    lx.add_all(
        0,
        Tier::Medium,
        &[
            "brother",
            "sister",
            "colleague",
            "coworker",
            "boss",
            "teammate",
            "rival",
            "opponent",
            "business partner",
            "co star",
            "classmate",
            "neighbor",
            "cousin",
            "uncle",
            "aunt",
        ],
    );
    lx.add_all(
        0,
        Tier::Weak,
        &[
            "press conference",
            "board meeting",
            "conference",
            "campaign",
            "lawsuit",
            "court",
            "testified",
            "negotiation",
            "contract",
            "signed with",
            "traded to",
            "interviewed",
            "succeeded by",
            "appointed",
            "nominated",
            "elected",
            "hired",
            "fired",
            "mentor",
            "student of",
            "professor",
            "research team",
            "film together",
            "starred with",
        ],
    );

    let mut background: Vec<String> = BACKGROUND_COMMON.iter().map(|s| s.to_string()).collect();
    background.extend(DOMAIN_FILLER.iter().map(|s| s.to_string()));

    let model = GenerativeModel::new(
        2,
        vec![0.92, 0.08],
        background,
        lx.into_grams(),
        55.0,
        18.0,
        20,
        0.02,
        Some(RelationConfig {
            first_names: FIRST_NAMES.to_vec(),
            last_names: LAST_NAMES.to_vec(),
            positive_connectors: POSITIVE_CONNECTORS.to_vec(),
            distractor_rate: 0.08,
        }),
    );
    (spec, model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_table1() {
        let (spec, model) = build();
        assert_eq!(
            (spec.sizes.train, spec.sizes.valid, spec.sizes.test),
            (22_254, 2_811, 2_701)
        );
        assert!(spec.relation);
        assert!(!spec.train_labels_available);
        assert_eq!(spec.default_class, Some(0));
        assert_eq!(spec.metric, Metric::F1);
        assert!(model.is_relation());
    }

    #[test]
    fn positives_contain_anchored_connector() {
        let (_, model) = build();
        let mut linked = 0;
        let n = 200;
        for s in 0..n {
            let d = model.sample_document(1, 7, s);
            let m = d.marked.expect("marked view");
            let ia = m.iter().position(|t| t == "[a]").unwrap();
            let ib = m.iter().position(|t| t == "[b]").unwrap();
            if ib > ia && ib - ia <= 5 {
                linked += 1;
            }
        }
        assert_eq!(linked, n, "every positive should link the pair");
    }

    #[test]
    fn some_negatives_are_distractors() {
        let (_, model) = build();
        let mut distractors = 0;
        for s in 0..600 {
            let d = model.sample_document(0, 9, s);
            let m = d.marked.expect("marked view");
            // Distractor: a positive connector word present in a negative.
            if m.iter()
                .any(|t| t == "married" || t == "wife" || t == "wed")
            {
                distractors += 1;
            }
        }
        // distractor_rate 0.08 plus lexicon leak: should be present but the
        // minority of negatives.
        assert!(distractors > 10, "{distractors}");
        assert!(distractors < 300, "{distractors}");
    }

    #[test]
    fn imbalanced_prior() {
        let (_, model) = build();
        assert!((model.priors()[1] - 0.08).abs() < 1e-12);
    }
}
