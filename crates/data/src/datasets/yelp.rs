//! Yelp review-polarity sentiment. 2 classes: 0 = negative, 1 = positive.

use super::{Lexicon, Tier, BACKGROUND_COMMON};
use crate::generative::GenerativeModel;
use crate::spec::{DatasetSpec, Metric, SplitSizes};

const DOMAIN_FILLER: &[&str] = &[
    "food",
    "restaurant",
    "place",
    "service",
    "staff",
    "table",
    "menu",
    "order",
    "ordered",
    "waiter",
    "waitress",
    "server",
    "dish",
    "meal",
    "dinner",
    "lunch",
    "breakfast",
    "drink",
    "drinks",
    "bar",
    "chef",
    "kitchen",
    "price",
    "prices",
    "came",
    "asked",
    "told",
    "minutes",
    "location",
    "parking",
    "atmosphere",
    "ambiance",
    "portion",
    "portions",
    "taste",
];

/// Spec + generative model for the synthetic Yelp dataset.
pub fn build() -> (DatasetSpec, GenerativeModel) {
    let spec = DatasetSpec {
        name: "yelp",
        domain: "Review",
        task_description: "a sentiment analysis task. In each iteration, the user will provide a restaurant review. Please decide whether the review is positive or negative. (0 for negative, 1 for positive)",
        instance_noun: "a restaurant review",
        class_names: vec!["negative", "positive"],
        default_class: None,
        relation: false,
        metric: Metric::Accuracy,
        train_labels_available: true,
        sizes: SplitSizes {
            train: 30_400,
            valid: 3_800,
            test: 3_800,
        },
    };

    let mut lx = Lexicon::new(2);

    // Positive (class 1).
    lx.add_adjectives(1, Tier::Strong, &["delicious", "friendly", "amazing"]);
    lx.add_adjectives(
        1,
        Tier::Medium,
        &[
            "tasty",
            "fresh",
            "cozy",
            "attentive",
            "flavorful",
            "generous",
            "reasonable",
            "prompt",
            "welcoming",
            "clean",
            "crispy",
            "juicy",
            "tender",
            "authentic",
            "lovely",
            "fantastic",
            "excellent",
            "wonderful",
            "perfect",
        ],
    );
    lx.add_all(
        1,
        Tier::Medium,
        &[
            "great service",
            "highly recommend",
            "will be back",
            "come back",
            "best in town",
            "hidden gem",
            "to die for",
            "melt in your",
            "five stars",
            "loved the",
            "great food",
            "great place",
            "go to spot",
            "never disappoints",
        ],
    );
    lx.add_all(
        1,
        Tier::Weak,
        &[
            "cooked to perfection",
            "out of this world",
            "hit the spot",
            "worth the wait",
            "worth every penny",
            "generous portions",
            "huge portions",
            "quick service",
            "fast service",
            "super friendly",
            "staff was friendly",
            "made us feel",
            "felt welcome",
            "great value",
            "good value",
            "fair prices",
            "fresh ingredients",
            "locally sourced",
            "homemade",
            "mouth watering",
            "bursting with flavor",
            "so flavorful",
            "my new favorite",
            "new favorite",
            "cant wait to",
            "definitely returning",
            "definitely recommend",
            "a must try",
            "must try",
            "try the",
            "get the",
            "happy hour",
            "date night",
            "family friendly",
            "kid friendly",
            "great vibe",
            "nice ambiance",
            "charming",
            "delightful",
            "impeccable",
            "spotless",
        ],
    );

    // Negative (class 0).
    lx.add_adjectives(0, Tier::Strong, &["rude", "cold", "slow"]);
    lx.add_adjectives(
        0,
        Tier::Medium,
        &[
            "bland",
            "stale",
            "greasy",
            "soggy",
            "dirty",
            "overpriced",
            "mediocre",
            "tasteless",
            "dry",
            "burnt",
            "salty",
            "undercooked",
            "overcooked",
            "disgusting",
            "gross",
            "awful",
            "terrible",
            "horrible",
            "disappointing",
        ],
    );
    lx.add_all(
        0,
        Tier::Medium,
        &[
            "never again",
            "waste of money",
            "worst service",
            "food poisoning",
            "sent it back",
            "long wait",
            "waited over",
            "got it wrong",
            "never coming back",
            "not coming back",
            "would not recommend",
            "do not recommend",
            "stay away",
            "avoid this place",
        ],
    );
    lx.add_all(
        0,
        Tier::Weak,
        &[
            "hair in my",
            "fly in my",
            "made me sick",
            "felt sick",
            "ignored us",
            "no apology",
            "manager was rude",
            "rolled her eyes",
            "slammed the",
            "forgot our",
            "wrong order",
            "took forever",
            "forever to",
            "an hour for",
            "still waiting",
            "walked out",
            "left hungry",
            "tiny portions",
            "small portions",
            "portion was tiny",
            "rip off",
            "ripped off",
            "overcharged",
            "charged us",
            "hidden fees",
            "health code",
            "health department",
            "sticky tables",
            "dirty bathroom",
            "smelled like",
            "lukewarm",
            "ice cold food",
            "microwaved",
            "frozen food",
            "out of a can",
            "from a box",
            "zero stars",
            "one star",
            "worst meal",
            "inedible",
            "threw it away",
            "dog food",
        ],
    );

    let mut background: Vec<String> = BACKGROUND_COMMON.iter().map(|s| s.to_string()).collect();
    background.extend(DOMAIN_FILLER.iter().map(|s| s.to_string()));

    let model = GenerativeModel::new(
        2,
        vec![0.5, 0.5],
        background,
        lx.into_grams(),
        90.0,
        35.0,
        20,
        0.05,
        None,
    );
    (spec, model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_table1() {
        let (spec, _) = build();
        assert_eq!(
            (spec.sizes.train, spec.sizes.valid, spec.sizes.test),
            (30_400, 3_800, 3_800)
        );
    }

    #[test]
    fn lexicon_supports_kate_scale_lf_sets() {
        let (_, model) = build();
        // DataSculpt-KATE reaches 321 LFs on Yelp (Table 2).
        assert!(model.indicative_grams().len() >= 180);
    }
}
