//! SMS spam detection (UCI SMS Spam Collection). 2 classes: 0 = ham, 1 = spam.
//!
//! The original corpus is imbalanced (~13% spam), so the end model is scored
//! with positive-class F1 (Tables 2–5 write "SMS (F1)"). Spam keywords are
//! given very low leak: phrases like "free entry" essentially never occur in
//! genuine texts, which is what keeps minority-class LF precision high
//! despite the skewed prior.

use super::{Lexicon, Tier, BACKGROUND_COMMON};
use crate::generative::GenerativeModel;
use crate::spec::{DatasetSpec, Metric, SplitSizes};

const DOMAIN_FILLER: &[&str] = &[
    "ok", "u", "ur", "im", "dont", "gonna", "pls", "thx", "hey", "yeah", "hmm", "tonight", "today",
    "tomorrow", "morning", "night", "later", "soon", "home", "work", "phone",
];

/// Spec + generative model for the synthetic SMS dataset.
pub fn build() -> (DatasetSpec, GenerativeModel) {
    let spec = DatasetSpec {
        name: "sms",
        domain: "Text Message",
        task_description: "a spam detection task. In each iteration, the user will provide a text message. Please decide whether the message is a spam. (0 for non-spam, 1 for spam)",
        instance_noun: "a text message",
        class_names: vec!["non-spam", "spam"],
        default_class: None,
        relation: false,
        metric: Metric::F1,
        train_labels_available: true,
        sizes: SplitSizes {
            train: 4571,
            valid: 500,
            test: 500,
        },
    };

    let mut lx = Lexicon::new(2);

    // Spam (class 1): prizes, premium numbers, subscriptions. Exact probs
    // with low leak so precision survives the 13% prior.
    for (g, own) in [
        ("free", 0.13),
        ("prize", 0.10),
        ("winner", 0.09),
        ("claim", 0.10),
        ("urgent", 0.08),
        ("cash", 0.09),
        ("award", 0.07),
        ("call now", 0.09),
        ("txt", 0.11),
        ("text stop", 0.05),
        ("free entry", 0.06),
        ("guaranteed", 0.07),
        ("ringtone", 0.06),
        ("mobile", 0.09),
        ("voucher", 0.05),
        ("bonus", 0.05),
        ("selected", 0.06),
        ("congratulations", 0.06),
        ("winner announced", 0.03),
        ("cash prize", 0.05),
        ("claim your", 0.06),
        ("you have won", 0.07),
        ("have won", 0.08),
        ("to claim", 0.06),
        ("call the", 0.04),
        ("per week", 0.04),
        ("per msg", 0.04),
        ("18 only", 0.03),
        ("tcs apply", 0.03),
        ("reply yes", 0.04),
        ("reply stop", 0.04),
        ("unsubscribe", 0.04),
        ("subscription", 0.05),
        ("premium", 0.04),
        ("rate", 0.05),
        ("offer expires", 0.03),
        ("limited offer", 0.03),
        ("win a", 0.05),
        ("a 1000", 0.03),
        ("latest phone", 0.03),
        ("camera phone", 0.03),
        ("await collection", 0.02),
        ("sae", 0.02),
        ("po box", 0.04),
        ("customer service", 0.04),
        ("account statement", 0.02),
        ("identifier code", 0.02),
        ("private number", 0.02),
        ("dating service", 0.03),
        ("hot singles", 0.02),
        ("adult", 0.03),
        ("chat line", 0.02),
        ("network operator", 0.02),
        ("sim card", 0.03),
        ("top up", 0.03),
        ("double minutes", 0.02),
        ("half price", 0.03),
        ("delivery tomorrow", 0.02),
        ("national rate", 0.02),
        ("landline", 0.03),
        ("valid 12 hours", 0.015),
        ("expires today", 0.02),
        ("final attempt", 0.02),
        ("last chance", 0.03),
        ("act now", 0.02),
        ("dont miss", 0.03),
        ("exclusive offer", 0.02),
        ("great deal", 0.02),
        ("apply now", 0.02),
        ("loan", 0.03),
        ("credit", 0.04),
        ("insurance", 0.03),
        ("lottery", 0.03),
        ("jackpot", 0.02),
        ("sweepstake", 0.015),
    ] {
        lx.add_exact(1, g, own, 0.025);
    }
    // Long tail of campaign-specific spam wording: shortcodes, premium
    // numbers, offer phrasings. Individually rare (like real campaigns),
    // collectively they give spam LFs real union coverage.
    for code in ["87121", "84025", "62468", "09061", "08712", "85233"] {
        for action in ["txt yes to", "send stop to", "call", "text win to"] {
            lx.add_exact(1, &format!("{action} {code}"), 0.012, 0.005);
        }
    }
    for prize in ["holiday", "iphone", "tv", "gift", "trip", "car"] {
        for verb in ["won a free", "claim your free", "win a free"] {
            lx.add_exact(1, &format!("{verb} {prize}"), 0.010, 0.005);
        }
    }

    // Ham (class 0): everyday chatter. Real texting vocabulary is a huge
    // long tail of rare personal phrases — model that with many weak
    // entries rather than a few broad ones, so ham LFs stay narrow (the
    // paper's SMS LFs average 0.007 coverage).
    lx.add_all(0, Tier::Medium, &["lol", "love you", "see you"]);
    lx.add_all(
        0,
        Tier::Weak,
        &[
            "meet",
            "dinner",
            "lunch",
            "coffee",
            "movie",
            "class",
            "lecture",
            "exam",
            "homework",
            "mom",
            "dad",
            "bro",
            "mate",
            "miss you",
            "good night",
            "good morning",
            "on my way",
            "running late",
            "be there",
            "pick you",
            "pick me",
            "call me when",
            "talk later",
            "how are you",
            "what time",
            "are you coming",
            "at home",
            "at work",
            "after work",
        ],
    );
    lx.add_all(
        0,
        Tier::Weak,
        &[
            "sleepy",
            "tired",
            "hungry",
            "bored",
            "busy",
            "sorry",
            "thanks dear",
            "no worries",
            "take care",
            "drive safe",
            "happy birthday",
            "congrats",
            "good luck",
            "well done",
            "see ya",
            "cya",
            "brb",
            "ttyl",
            "wanna",
            "lemme",
            "gimme",
            "kinda",
            "dunno",
            "feeling",
            "weekend",
            "holiday",
            "trip",
            "beach",
            "party",
            "birthday",
            "wedding dress",
            "shopping",
            "groceries",
            "doctor",
            "dentist",
            "appointment",
            "meeting at",
            "project",
            "assignment",
            "library",
            "train",
            "bus",
            "station",
            "airport",
            "flight",
        ],
    );
    // Long tail of everyday phrases, composed combinatorially (the same
    // kind of rare personal wording the real corpus is full of).
    for verb in ["call", "text", "meet", "see", "ring", "ping"] {
        for obj in [
            "me later",
            "me tonight",
            "me tomorrow",
            "you soon",
            "you there",
            "you after",
        ] {
            lx.add_exact(0, &format!("{verb} {obj}"), 0.006, 0.2);
        }
    }
    for when in [
        "tonight",
        "tomorrow",
        "saturday",
        "sunday",
        "next week",
        "this evening",
    ] {
        for what in ["dinner", "drinks", "footy", "cinema", "the gym", "town"] {
            lx.add_exact(0, &format!("{what} {when}"), 0.004, 0.15);
        }
    }

    let mut background: Vec<String> = BACKGROUND_COMMON.iter().map(|s| s.to_string()).collect();
    background.extend(DOMAIN_FILLER.iter().map(|s| s.to_string()));

    let model = GenerativeModel::new(
        2,
        vec![0.868, 0.132], // real SMS spam ratio ~13.2%
        background,
        lx.into_grams(),
        16.0,
        7.0,
        3,
        0.02,
        None,
    );
    (spec, model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_table1() {
        let (spec, _) = build();
        assert_eq!(
            (spec.sizes.train, spec.sizes.valid, spec.sizes.test),
            (4571, 500, 500)
        );
        assert_eq!(spec.metric, Metric::F1);
    }

    #[test]
    fn spam_lfs_stay_precise_despite_imbalance() {
        let (_, model) = build();
        let priors = model.priors().to_vec();
        // Bayes accuracy of "free entry" should be well above the 0.6
        // accuracy-filter threshold despite the 13% prior.
        let grams = model.indicative_grams();
        let g = grams
            .iter()
            .find(|g| g.gram == "free entry")
            .expect("free entry");
        assert!(g.lf_accuracy(&priors) > 0.6, "{}", g.lf_accuracy(&priors));
    }

    #[test]
    fn spam_pool_supports_table2_lf_counts() {
        let (_, model) = build();
        // The paper reports ~115-240 LFs on SMS across configs.
        assert!(model.indicative_grams().len() >= 150);
    }
}
