//! Youtube comment spam detection (TubeSpam). 2 classes: 0 = ham, 1 = spam.

use super::{Lexicon, Tier, BACKGROUND_COMMON};
use crate::generative::GenerativeModel;
use crate::spec::{DatasetSpec, Metric, SplitSizes};

/// Domain filler words mixed into the background vocabulary.
const DOMAIN_FILLER: &[&str] = &[
    "video", "song", "watch", "listen", "play", "hear", "views", "comment", "youtube", "guys",
    "everyone", "omg", "wow", "haha", "lol", "please", "thanks", "year", "old", "times",
];

/// Spec + generative model for the synthetic Youtube dataset.
pub fn build() -> (DatasetSpec, GenerativeModel) {
    let spec = DatasetSpec {
        name: "youtube",
        domain: "Review",
        task_description: "a spam detection task. In each iteration, the user will provide a comment for a video. Please decide whether the comment is a spam. (0 for non-spam, 1 for spam)",
        instance_noun: "a comment for a video",
        class_names: vec!["non-spam", "spam"],
        default_class: None,
        relation: false,
        metric: Metric::Accuracy,
        train_labels_available: true,
        sizes: SplitSizes {
            train: 1586,
            valid: 120,
            test: 250,
        },
    };

    let mut lx = Lexicon::new(2);

    // Spam (class 1): self-promotion, links, begging for engagement.
    lx.add_all(
        1,
        Tier::Strong,
        &[
            "subscribe",
            "channel",
            "check out",
            "my channel",
            "subscribe to",
            "free",
            "click",
        ],
    );
    lx.add_all(
        1,
        Tier::Medium,
        &[
            "link",
            "visit",
            "website",
            "win",
            "giveaway",
            "follow",
            "followers",
            "earn",
            "money",
            "cash",
            "promo",
            "sub",
            "subs",
            "check",
            "click here",
            "check out my",
            "my video",
            "please subscribe",
            "sub to",
            "new video",
            "share this",
            "make money",
            "work from home",
            "gift card",
            "free money",
        ],
    );
    lx.add_all(
        1,
        Tier::Weak,
        &[
            "instagram",
            "twitter",
            "facebook",
            "app",
            "download",
            "install",
            "code",
            "discount",
            "offer",
            "deal",
            "viral",
            "spam",
            "bot",
            "advertise",
            "promotion",
            "shoutout",
            "like this comment",
            "thumbs up",
            "check my",
            "on my channel",
            "daily vines",
            "for daily",
            "search for",
            "just search",
            "go to my",
            "visit my",
            "my page",
            "my profile",
            "my cover",
            "my new song",
            "i make videos",
            "help me reach",
            "road to",
            "1000 subs",
            "free gift",
            "no scam",
            "i swear",
            "you wont regret",
            "best cover",
            "earn cash",
            "from home",
            "per day",
            "easy money",
            "win a",
            "to win",
        ],
    );

    // Ham (class 0): reactions to the actual song/video.
    lx.add_adjectives(0, Tier::Strong, &["love", "beautiful", "amazing"]);
    lx.add_all(
        0,
        Tier::Medium,
        &[
            "favorite",
            "best song",
            "this song",
            "the song",
            "voice",
            "lyrics",
            "melody",
            "beat",
            "catchy",
            "masterpiece",
            "legend",
            "classic",
            "childhood",
            "memories",
            "remember",
            "nostalgia",
            "still listening",
            "love this",
            "love this song",
            "great song",
            "awesome",
            "perfect",
            "talented",
            "her voice",
            "his voice",
        ],
    );
    lx.add_all(
        0,
        Tier::Weak,
        &[
            "chills",
            "goosebumps",
            "crying",
            "feels",
            "emotional",
            "anthem",
            "dance",
            "dancing",
            "repeat",
            "on repeat",
            "cant stop",
            "listening in",
            "who else",
            "anyone else",
            "brings back",
            "takes me back",
            "grew up",
            "miss this",
            "real music",
            "music was",
            "pure talent",
            "so good",
            "never gets old",
            "gets old",
            "million views",
            "deserves more",
            "underrated",
            "timeless",
            "vibes",
            "banger",
        ],
    );

    let mut background: Vec<String> = BACKGROUND_COMMON.iter().map(|s| s.to_string()).collect();
    background.extend(DOMAIN_FILLER.iter().map(|s| s.to_string()));

    let model = GenerativeModel::new(
        2,
        vec![0.53, 0.47], // TubeSpam is roughly balanced
        background,
        lx.into_grams(),
        14.0,
        6.0,
        4,
        0.04,
        None,
    );
    (spec, model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_table1() {
        let (spec, model) = build();
        assert_eq!(spec.sizes.train, 1586);
        assert_eq!(spec.sizes.valid, 120);
        assert_eq!(spec.sizes.test, 250);
        assert_eq!(spec.n_classes(), 2);
        assert_eq!(model.n_classes(), 2);
        assert!(!model.is_relation());
    }

    #[test]
    fn lexicon_is_rich_enough_for_hundreds_of_lfs() {
        let (_, model) = build();
        // DataSculpt generates ~70-120 LFs on Youtube (Table 2); the pool of
        // distinct indicative grams must support that diversity.
        assert!(
            model.indicative_grams().len() >= 100,
            "{}",
            model.indicative_grams().len()
        );
        let spam = model.class_grams(1).count();
        let ham = model.class_grams(0).count();
        assert!(spam >= 40 && ham >= 40, "spam {spam} ham {ham}");
    }

    #[test]
    fn spammy_keyword_has_spammy_affinity() {
        let (_, model) = build();
        let a = model
            .affinity("subscribe")
            .expect("subscribe is indicative");
        assert!(a[1] > a[0]);
        let b = model
            .affinity("childhood")
            .expect("childhood is indicative");
        assert!(b[0] > b[1]);
    }
}
