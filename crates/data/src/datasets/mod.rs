//! Per-dataset synthetic generators.
//!
//! Each submodule defines one of the six evaluation datasets (Table 1): its
//! [`crate::DatasetSpec`] and the [`crate::GenerativeModel`] lexicon — class-conditional
//! indicative n-grams with hand-chosen strength tiers plus a shared Zipfian
//! background vocabulary. Strengths are derived deterministically from the
//! n-gram's hash so the "world" is identical across runs and seeds.

pub mod agnews;
pub mod imdb;
pub mod sms;
pub mod spouse;
pub mod yelp;
pub mod youtube;

use crate::generative::IndicativeNgram;
use datasculpt_text::rng::hash_str;

/// Strength tier of an indicative n-gram.
///
/// `own` is the appearance probability in the dominant class; `leak` is the
/// total probability mass leaked to the other classes (split equally), as a
/// fraction of `own`. Tiers control both LF coverage (own) and LF accuracy
/// (leak): experts pick Strong grams, the LLM surfaces whatever tier appears
/// in the query instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// High coverage, low leak — the keywords a domain expert would pick.
    Strong,
    /// Moderate coverage and leak.
    Medium,
    /// Rare and noisier — the long tail DataSculpt mines from instances.
    Weak,
}

impl Tier {
    fn own_range(self) -> (f64, f64) {
        match self {
            Tier::Strong => (0.07, 0.14),
            Tier::Medium => (0.025, 0.06),
            Tier::Weak => (0.008, 0.022),
        }
    }

    fn leak_range(self) -> (f64, f64) {
        match self {
            Tier::Strong => (0.04, 0.12),
            Tier::Medium => (0.08, 0.22),
            Tier::Weak => (0.12, 0.40),
        }
    }
}

/// Builder for a dataset's indicative-n-gram lexicon.
#[derive(Debug)]
pub(crate) struct Lexicon {
    n_classes: usize,
    grams: Vec<IndicativeNgram>,
    seen: std::collections::BTreeSet<String>,
}

impl Lexicon {
    pub(crate) fn new(n_classes: usize) -> Self {
        Self {
            n_classes,
            grams: Vec::new(),
            seen: std::collections::BTreeSet::new(),
        }
    }

    /// Deterministic pseudo-random value in `[lo, hi)` keyed by the gram.
    fn keyed(gram: &str, salt: u64, (lo, hi): (f64, f64)) -> f64 {
        let h = hash_str(gram).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }

    /// Add one n-gram for `class` at the given tier. Duplicate grams are
    /// ignored (first definition wins), so overlapping word lists are safe.
    pub(crate) fn add(&mut self, class: usize, gram: &str, tier: Tier) {
        self.add_scaled(class, gram, tier, 1.0);
    }

    /// Like [`add`](Self::add) with the own-probability multiplied by
    /// `scale` (used for derived variants like intensified adjectives).
    pub(crate) fn add_scaled(&mut self, class: usize, gram: &str, tier: Tier, scale: f64) {
        assert!(class < self.n_classes);
        let gram = gram.to_string();
        if !self.seen.insert(gram.clone()) {
            return;
        }
        let own = Self::keyed(&gram, 0xA1, tier.own_range()) * scale;
        let leak = Self::keyed(&gram, 0xB2, tier.leak_range());
        let other = own * leak / (self.n_classes - 1).max(1) as f64;
        let mut probs = vec![other; self.n_classes];
        if let Some(slot) = probs.get_mut(class) {
            *slot = own;
        }
        self.grams.push(IndicativeNgram { gram, probs });
    }

    /// Add a batch of grams at one tier.
    pub(crate) fn add_all(&mut self, class: usize, tier: Tier, grams: &[&str]) {
        for g in grams {
            self.add(class, g, tier);
        }
    }

    /// Add adjectives plus intensified bigram variants (`"really X"`,
    /// `"so X"`), the long-tail phrases sentiment LLM queries surface.
    pub(crate) fn add_adjectives(&mut self, class: usize, tier: Tier, adjectives: &[&str]) {
        for a in adjectives {
            self.add(class, a, tier);
            self.add_scaled(class, &format!("really {a}"), Tier::Weak, 0.8);
            self.add_scaled(class, &format!("so {a}"), Tier::Weak, 0.8);
        }
    }

    /// Add an n-gram with explicit own/leak values (for special cases such
    /// as imbalanced datasets needing very low leak on minority keywords).
    pub(crate) fn add_exact(&mut self, class: usize, gram: &str, own: f64, leak: f64) {
        assert!(class < self.n_classes);
        let gram = gram.to_string();
        if !self.seen.insert(gram.clone()) {
            return;
        }
        let other = own * leak / (self.n_classes - 1).max(1) as f64;
        let mut probs = vec![other; self.n_classes];
        if let Some(slot) = probs.get_mut(class) {
            *slot = own;
        }
        self.grams.push(IndicativeNgram { gram, probs });
    }

    pub(crate) fn into_grams(self) -> Vec<IndicativeNgram> {
        self.grams
    }
}

/// Shared common-English background vocabulary (Zipf-ranked by position).
pub(crate) const BACKGROUND_COMMON: &[&str] = &[
    "the",
    "to",
    "and",
    "a",
    "of",
    "i",
    "it",
    "is",
    "that",
    "in",
    "you",
    "this",
    "for",
    "was",
    "on",
    "with",
    "my",
    "but",
    "have",
    "not",
    "are",
    "be",
    "at",
    "as",
    "they",
    "we",
    "so",
    "just",
    "all",
    "like",
    "do",
    "me",
    "what",
    "when",
    "there",
    "from",
    "out",
    "up",
    "about",
    "get",
    "one",
    "if",
    "can",
    "her",
    "his",
    "he",
    "she",
    "will",
    "or",
    "an",
    "had",
    "by",
    "been",
    "were",
    "their",
    "them",
    "then",
    "some",
    "would",
    "who",
    "him",
    "time",
    "because",
    "very",
    "here",
    "now",
    "after",
    "before",
    "more",
    "much",
    "than",
    "also",
    "into",
    "over",
    "only",
    "other",
    "could",
    "did",
    "your",
    "see",
    "know",
    "think",
    "got",
    "going",
    "really",
    "way",
    "people",
    "day",
    "make",
    "still",
    "even",
    "back",
    "well",
    "want",
    "never",
    "say",
    "said",
    "go",
    "went",
    "come",
    "made",
    "look",
    "first",
    "two",
    "new",
    "where",
    "how",
    "most",
    "any",
    "these",
    "no",
    "yes",
    "us",
    "our",
    "being",
    "has",
    "its",
    "which",
    "while",
    "down",
    "off",
    "again",
    "too",
    "thing",
    "things",
    "little",
    "big",
    "lot",
    "right",
    "left",
    "take",
    "give",
    "something",
    "nothing",
    "everything",
    "someone",
    "around",
    "through",
    "during",
    "another",
    "same",
    "last",
    "next",
    "each",
    "few",
    "many",
    "those",
    "such",
    "own",
    "both",
    "between",
    "under",
    "why",
    "does",
    "every",
    "once",
    "since",
    "found",
    "part",
    "place",
    "long",
    "seem",
];

/// Render tokens into display text: capitalize the first token, add a final
/// period. The rendering round-trips through `tokenize` back to the same
/// token sequence (guaranteed because generated tokens are lowercase
/// alphanumerics/apostrophes).
pub(crate) fn render_text(tokens: &[String]) -> String {
    let mut s = String::with_capacity(tokens.len() * 6);
    for (i, t) in tokens.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        if i == 0 {
            let mut chars = t.chars();
            if let Some(c) = chars.next() {
                s.extend(c.to_uppercase());
                s.push_str(chars.as_str());
            }
        } else {
            s.push_str(t);
        }
    }
    s.push('.');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicon_dedupes() {
        let mut lx = Lexicon::new(2);
        lx.add(0, "free", Tier::Strong);
        lx.add(1, "free", Tier::Strong); // ignored
        let grams = lx.into_grams();
        assert_eq!(grams.len(), 1);
        assert_eq!(grams[0].dominant_class(), 0);
    }

    #[test]
    fn strengths_are_deterministic() {
        let mut a = Lexicon::new(2);
        a.add(1, "great", Tier::Medium);
        let mut b = Lexicon::new(2);
        b.add(1, "great", Tier::Medium);
        assert_eq!(a.into_grams()[0].probs, b.into_grams()[0].probs);
    }

    #[test]
    fn tiers_order_coverage() {
        let mut lx = Lexicon::new(2);
        lx.add(1, "strongword", Tier::Strong);
        lx.add(1, "weakword", Tier::Weak);
        let grams = lx.into_grams();
        assert!(grams[0].probs[1] > grams[1].probs[1]);
    }

    #[test]
    fn adjectives_expand_to_variants() {
        let mut lx = Lexicon::new(2);
        lx.add_adjectives(1, Tier::Medium, &["funny"]);
        let grams = lx.into_grams();
        let names: Vec<_> = grams.iter().map(|g| g.gram.as_str()).collect();
        assert_eq!(names, vec!["funny", "really funny", "so funny"]);
    }

    #[test]
    fn add_exact_controls_leak() {
        let mut lx = Lexicon::new(2);
        lx.add_exact(1, "prize", 0.1, 0.02);
        let g = &lx.into_grams()[0];
        assert!((g.probs[1] - 0.1).abs() < 1e-12);
        assert!((g.probs[0] - 0.002).abs() < 1e-12);
    }

    #[test]
    fn render_round_trips_through_tokenize() {
        let tokens: Vec<String> = ["check", "out", "my", "channel"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let text = render_text(&tokens);
        assert_eq!(text, "Check out my channel.");
        assert_eq!(datasculpt_text::tokenize(&text), tokens);
    }

    #[test]
    fn background_vocab_is_nontrivial_and_unique() {
        let set: std::collections::HashSet<_> = BACKGROUND_COMMON.iter().collect();
        assert_eq!(
            set.len(),
            BACKGROUND_COMMON.len(),
            "duplicate background word"
        );
        assert!(BACKGROUND_COMMON.len() >= 100);
    }
}
