//! IMDB movie-review sentiment. 2 classes: 0 = negative, 1 = positive.

use super::{Lexicon, Tier, BACKGROUND_COMMON};
use crate::generative::GenerativeModel;
use crate::spec::{DatasetSpec, Metric, SplitSizes};

const DOMAIN_FILLER: &[&str] = &[
    "movie",
    "film",
    "scene",
    "scenes",
    "character",
    "characters",
    "plot",
    "story",
    "actor",
    "actress",
    "director",
    "cast",
    "screen",
    "watch",
    "watched",
    "watching",
    "ending",
    "beginning",
    "minutes",
    "hollywood",
    "cinema",
    "dvd",
    "series",
    "episode",
    "sequel",
    "script",
    "dialogue",
    "acting",
    "performance",
    "role",
    "camera",
];

/// Spec + generative model for the synthetic IMDB dataset.
pub fn build() -> (DatasetSpec, GenerativeModel) {
    let spec = DatasetSpec {
        name: "imdb",
        domain: "Movie",
        task_description: "a sentiment analysis task. In each iteration, the user will provide a movie review. Please decide whether the review is positive or negative. (0 for negative, 1 for positive)",
        instance_noun: "a movie review",
        class_names: vec!["negative", "positive"],
        default_class: None,
        relation: false,
        metric: Metric::Accuracy,
        train_labels_available: true,
        sizes: SplitSizes {
            train: 20_000,
            valid: 2_500,
            test: 2_500,
        },
    };

    let mut lx = Lexicon::new(2);

    // Positive (class 1).
    lx.add_adjectives(1, Tier::Strong, &["great", "excellent", "wonderful"]);
    lx.add_adjectives(
        1,
        Tier::Medium,
        &[
            "funny",
            "heartwarming",
            "brilliant",
            "beautiful",
            "amazing",
            "superb",
            "touching",
            "charming",
            "delightful",
            "gripping",
            "powerful",
            "stunning",
            "hilarious",
            "memorable",
            "masterful",
            "compelling",
            "captivating",
            "enjoyable",
            "entertaining",
        ],
    );
    lx.add_all(
        1,
        Tier::Medium,
        &[
            "masterpiece",
            "loved it",
            "must see",
            "highly recommend",
            "well worth",
            "best movie",
            "one of the best",
            "loved every",
            "a gem",
            "oscar worthy",
            "flawless",
            "perfection",
        ],
    );
    lx.add_all(
        1,
        Tier::Weak,
        &[
            "laughed out loud",
            "edge of my seat",
            "tour de force",
            "instant classic",
            "rewatch",
            "watch it again",
            "blown away",
            "exceeded expectations",
            "pleasant surprise",
            "beautifully shot",
            "great chemistry",
            "strong performances",
            "career best",
            "stole the show",
            "breath of fresh",
            "fresh air",
            "heartfelt",
            "uplifting",
            "feel good",
            "crowd pleaser",
            "never a dull",
            "dull moment",
            "kept me hooked",
            "hooked from",
            "top notch",
            "second to none",
            "rings true",
            "pitch perfect",
            "worth every minute",
            "ten out of ten",
            "five stars",
            "bravo",
            "kudos",
            "standing ovation",
            "a triumph",
            "pure joy",
            "absolute delight",
            "cinematic gold",
        ],
    );

    // Negative (class 0).
    lx.add_adjectives(0, Tier::Strong, &["horrible", "terrible", "boring"]);
    lx.add_adjectives(
        0,
        Tier::Medium,
        &[
            "awful",
            "dreadful",
            "bland",
            "dull",
            "lame",
            "weak",
            "silly",
            "stupid",
            "annoying",
            "painful",
            "forgettable",
            "predictable",
            "cheesy",
            "cheap",
            "messy",
            "pointless",
            "laughable",
            "clumsy",
            "tedious",
        ],
    );
    lx.add_all(
        0,
        Tier::Medium,
        &[
            "worst movie",
            "waste of time",
            "the worst",
            "fell asleep",
            "walked out",
            "avoid",
            "dont bother",
            "not worth",
            "skip this",
            "a mess",
            "so bad",
            "bad movies",
        ],
    );
    lx.add_all(
        0,
        Tier::Weak,
        &[
            "wooden acting",
            "plot holes",
            "makes no sense",
            "made no sense",
            "poorly written",
            "poorly acted",
            "badly directed",
            "low budget",
            "b movie",
            "straight to dvd",
            "cash grab",
            "no redeeming",
            "redeeming qualities",
            "fast forward",
            "turned it off",
            "want my money",
            "money back",
            "two hours i",
            "never get back",
            "cringe",
            "cringe worthy",
            "paper thin",
            "one dimensional",
            "overacted",
            "miscast",
            "nonsensical",
            "incoherent",
            "a chore",
            "utterly bored",
            "snooze fest",
            "train wreck",
            "dumpster fire",
            "zero stars",
            "one star",
            "insult to",
            "ruined the",
            "butchered",
            "disaster",
            "flop",
            "unwatchable",
            "cgi was horrible",
            "horrible cgi",
            "bad cgi",
        ],
    );

    let mut background: Vec<String> = BACKGROUND_COMMON.iter().map(|s| s.to_string()).collect();
    background.extend(DOMAIN_FILLER.iter().map(|s| s.to_string()));

    let model = GenerativeModel::new(
        2,
        vec![0.5, 0.5],
        background,
        lx.into_grams(),
        120.0,
        40.0,
        30,
        0.05,
        None,
    );
    (spec, model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_table1() {
        let (spec, _) = build();
        assert_eq!(
            (spec.sizes.train, spec.sizes.valid, spec.sizes.test),
            (20_000, 2_500, 2_500)
        );
    }

    #[test]
    fn reviews_are_long() {
        let (_, model) = build();
        let d = model.sample_document(1, 1, 0);
        assert!(d.tokens.len() >= 30);
    }

    #[test]
    fn large_lexicon_for_large_lf_sets() {
        let (_, model) = build();
        // DataSculpt-KATE reaches 329 LFs on IMDB (Table 2).
        assert!(
            model.indicative_grams().len() >= 180,
            "{}",
            model.indicative_grams().len()
        );
    }
}
