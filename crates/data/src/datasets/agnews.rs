//! AG News topic classification. 4 classes: 0 = World, 1 = Sports,
//! 2 = Business, 3 = Sci/Tech.

use super::{Lexicon, Tier, BACKGROUND_COMMON};
use crate::generative::GenerativeModel;
use crate::spec::{DatasetSpec, Metric, SplitSizes};

const DOMAIN_FILLER: &[&str] = &[
    "reuters",
    "ap",
    "reported",
    "report",
    "officials",
    "according",
    "yesterday",
    "monday",
    "tuesday",
    "wednesday",
    "thursday",
    "friday",
    "week",
    "month",
    "announced",
    "statement",
    "press",
    "news",
    "country",
    "city",
    "national",
    "group",
    "percent",
    "million",
    "billion",
    "year",
    "years",
    "world",
    "says",
    "say",
    "told",
    "three",
    "five",
    "second",
    "third",
];

/// Spec + generative model for the synthetic AG News dataset.
pub fn build() -> (DatasetSpec, GenerativeModel) {
    let spec = DatasetSpec {
        name: "agnews",
        domain: "News",
        task_description: "a news topic classification task. In each iteration, the user will provide a news article. Please decide the topic of the article. (0 for world news, 1 for sports, 2 for business, 3 for science and technology)",
        instance_noun: "a news article",
        class_names: vec!["world", "sports", "business", "sci/tech"],
        default_class: None,
        relation: false,
        metric: Metric::Accuracy,
        train_labels_available: true,
        sizes: SplitSizes {
            train: 96_000,
            valid: 12_000,
            test: 12_000,
        },
    };

    let mut lx = Lexicon::new(4);

    // World (class 0).
    lx.add_all(0, Tier::Strong, &["president", "minister", "election"]);
    lx.add_all(
        0,
        Tier::Medium,
        &[
            "war",
            "troops",
            "military",
            "government",
            "parliament",
            "treaty",
            "embassy",
            "diplomat",
            "sanctions",
            "rebels",
            "protest",
            "protesters",
            "ceasefire",
            "peace talks",
            "prime minister",
            "united nations",
            "foreign minister",
            "refugees",
            "border",
            "hostage",
            "coup",
            "regime",
            "summit",
        ],
    );
    lx.add_all(
        0,
        Tier::Weak,
        &[
            "airstrike",
            "insurgents",
            "militants",
            "peacekeepers",
            "amnesty",
            "asylum",
            "extradition",
            "humanitarian",
            "genocide",
            "tribunal",
            "warlord",
            "dictator",
            "opposition leader",
            "state visit",
            "bilateral talks",
            "nuclear program",
            "security council",
            "general assembly",
            "human rights",
            "election results",
            "exit polls",
            "ballots",
            "referendum",
            "constitution",
            "martial law",
            "curfew",
            "uprising",
            "occupied territories",
            "demilitarized",
            "envoy",
            "consulate",
        ],
    );

    // Sports (class 1).
    lx.add_all(1, Tier::Strong, &["team", "season", "coach"]);
    lx.add_all(
        1,
        Tier::Medium,
        &[
            "game",
            "championship",
            "league",
            "playoffs",
            "tournament",
            "finals",
            "score",
            "scored",
            "win",
            "victory",
            "defeat",
            "match",
            "stadium",
            "fans",
            "olympic",
            "world cup",
            "grand slam",
            "home run",
            "touchdown",
            "quarterback",
            "striker",
            "goalkeeper",
            "innings",
        ],
    );
    lx.add_all(
        1,
        Tier::Weak,
        &[
            "halftime",
            "overtime",
            "penalty kick",
            "free throw",
            "three pointer",
            "slam dunk",
            "hat trick",
            "shutout",
            "no hitter",
            "pole position",
            "grand prix",
            "medal",
            "gold medal",
            "record holder",
            "personal best",
            "transfer fee",
            "draft pick",
            "rookie",
            "veteran player",
            "injury list",
            "hamstring",
            "suspension",
            "doping",
            "head coach",
            "locker room",
            "season opener",
            "title race",
            "relegation",
            "qualifier",
            "semifinal",
            "underdog",
            "comeback win",
            "buzzer beater",
        ],
    );

    // Business (class 2).
    lx.add_all(2, Tier::Strong, &["shares", "profit", "market"]);
    lx.add_all(
        2,
        Tier::Medium,
        &[
            "stocks",
            "stock market",
            "earnings",
            "revenue",
            "investors",
            "quarterly",
            "shares fell",
            "shares rose",
            "wall street",
            "merger",
            "acquisition",
            "ipo",
            "bankruptcy",
            "ceo",
            "oil prices",
            "interest rates",
            "inflation",
            "federal reserve",
            "economy",
            "economic",
            "trade deficit",
            "exports",
            "dividend",
        ],
    );
    lx.add_all(
        2,
        Tier::Weak,
        &[
            "hedge fund",
            "mutual fund",
            "bondholders",
            "shareholders",
            "stakeholders",
            "layoffs",
            "restructuring",
            "cost cutting",
            "profit warning",
            "guidance raised",
            "forecast cut",
            "analysts expect",
            "beat estimates",
            "missed estimates",
            "market cap",
            "valuation",
            "stock split",
            "buyback",
            "takeover bid",
            "hostile takeover",
            "antitrust",
            "regulators approved",
            "quarterly results",
            "fiscal year",
            "balance sheet",
            "gross margin",
            "retail sales",
            "consumer spending",
            "housing market",
            "crude futures",
            "opec",
            "nasdaq",
            "dow jones",
        ],
    );

    // Sci/Tech (class 3).
    lx.add_all(3, Tier::Strong, &["software", "internet", "research"]);
    lx.add_all(
        3,
        Tier::Medium,
        &[
            "computer",
            "technology",
            "scientists",
            "researchers",
            "space",
            "nasa",
            "satellite",
            "microsoft",
            "google",
            "apple",
            "chip",
            "processor",
            "web",
            "website",
            "online",
            "security flaw",
            "hackers",
            "virus",
            "operating system",
            "broadband",
            "wireless",
            "telescope",
            "spacecraft",
        ],
    );
    lx.add_all(
        3,
        Tier::Weak,
        &[
            "open source",
            "linux",
            "browser",
            "search engine",
            "e commerce",
            "silicon valley",
            "startup",
            "beta version",
            "source code",
            "encryption",
            "firewall",
            "malware",
            "phishing",
            "data breach",
            "patch released",
            "vulnerability",
            "server farm",
            "cloud computing",
            "artificial intelligence",
            "machine learning",
            "robotics",
            "gene therapy",
            "stem cells",
            "dna sequence",
            "clinical trial",
            "vaccine research",
            "particle physics",
            "mars rover",
            "space station",
            "launch pad",
            "orbit",
            "asteroid",
            "climate study",
            "fossil record",
            "quantum",
        ],
    );

    let mut background: Vec<String> = BACKGROUND_COMMON.iter().map(|s| s.to_string()).collect();
    background.extend(DOMAIN_FILLER.iter().map(|s| s.to_string()));

    let model = GenerativeModel::new(
        4,
        vec![0.25, 0.25, 0.25, 0.25],
        background,
        lx.into_grams(),
        38.0,
        10.0,
        15,
        0.04,
        None,
    );
    (spec, model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_table1() {
        let (spec, model) = build();
        assert_eq!(
            (spec.sizes.train, spec.sizes.valid, spec.sizes.test),
            (96_000, 12_000, 12_000)
        );
        assert_eq!(spec.n_classes(), 4);
        assert_eq!(model.n_classes(), 4);
    }

    #[test]
    fn each_class_has_a_pool() {
        let (_, model) = build();
        for c in 0..4 {
            assert!(
                model.class_grams(c).count() >= 40,
                "class {c} pool too small"
            );
        }
    }

    #[test]
    fn four_class_affinity_leak_is_split() {
        let (_, model) = build();
        let a = model.affinity("president").expect("president");
        assert!(a[0] > a[1] && a[0] > a[2] && a[0] > a[3]);
        // Leak equal among the three other classes.
        assert!((a[1] - a[2]).abs() < 1e-12 && (a[2] - a[3]).abs() < 1e-12);
    }
}
