//! Class-conditional generative model of a synthetic corpus.
//!
//! A [`GenerativeModel`] holds per-class *indicative n-grams* (each with a
//! per-class appearance probability), a Zipfian background vocabulary, and a
//! document-length distribution. Documents are sampled by filling background
//! tokens and splicing in indicative n-grams whose counts follow the
//! appearance probabilities, plus optional label noise (content generated
//! from the wrong class) so no LF can be perfect.
//!
//! The same model is the "world" that the simulated LLM has (noisy) knowledge
//! of: [`GenerativeModel::affinity`] returns the per-class appearance
//! probabilities of an n-gram, which the simulator corrupts with Gaussian
//! noise before using (see the `datasculpt-llm` crate).

use datasculpt_text::rng::{derive_seed, Gaussian};
use datasculpt_text::{Categorical, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// An indicative n-gram with per-class appearance probabilities.
#[derive(Debug, Clone)]
pub struct IndicativeNgram {
    /// Canonical space-joined lowercase n-gram.
    pub gram: String,
    /// `probs[c]` = probability the n-gram appears in a class-`c` document.
    pub probs: Vec<f64>,
}

impl IndicativeNgram {
    /// The class this n-gram most indicates (argmax of appearance probs).
    pub fn dominant_class(&self) -> usize {
        self.probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Bayes-optimal accuracy of the keyword LF `(gram → dominant class)`
    /// under the given class priors: `P(y = ĉ | gram present)`.
    pub fn lf_accuracy(&self, priors: &[f64]) -> f64 {
        let c = self.dominant_class();
        let num = priors.get(c).copied().unwrap_or(0.0) * self.probs.get(c).copied().unwrap_or(0.0);
        let den: f64 = priors.iter().zip(&self.probs).map(|(pi, p)| pi * p).sum();
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// Marginal coverage of the n-gram under the given priors.
    pub fn coverage(&self, priors: &[f64]) -> f64 {
        priors.iter().zip(&self.probs).map(|(pi, p)| pi * p).sum()
    }
}

/// A document produced by [`GenerativeModel::sample_document`].
#[derive(Debug, Clone)]
pub struct GeneratedDoc {
    /// Plain tokens (entity names substituted for relation tasks).
    pub tokens: Vec<String>,
    /// Marked tokens with `[a]`/`[b]` placeholders (relation tasks only).
    pub marked: Option<Vec<String>>,
    /// Entity pair (relation tasks only).
    pub entities: Option<(String, String)>,
}

/// The full generative model of one synthetic dataset.
#[derive(Debug, Clone)]
pub struct GenerativeModel {
    n_classes: usize,
    priors: Vec<f64>,
    background: Vec<String>,
    zipf: Zipf,
    indicative: Vec<IndicativeNgram>,
    affinity: BTreeMap<String, usize>,
    /// Affinities for n-grams that are not lexicon entries but still carry
    /// class signal — the relation connector patterns inserted by
    /// [`RelationConfig`] (e.g. `"married"` in Spouse positives).
    extra_affinity: BTreeMap<String, Vec<f64>>,
    by_class: Vec<Vec<usize>>,
    class_cat: Vec<Categorical>,
    class_lambda: Vec<f64>,
    doc_len: Gaussian,
    doc_len_min: usize,
    label_noise: f64,
    /// Relation-task scaffolding (None for plain classification).
    relation: Option<RelationConfig>,
}

/// Entity scaffolding for relation datasets.
#[derive(Debug, Clone)]
pub struct RelationConfig {
    /// First-name pool.
    pub first_names: Vec<&'static str>,
    /// Last-name pool.
    pub last_names: Vec<&'static str>,
    /// Connector patterns placed between the two entity markers in positive
    /// documents, e.g. `"and his wife"`. Tokens, space-joined.
    pub positive_connectors: Vec<&'static str>,
    /// Connectors placed near a *third* person in distractor negatives,
    /// e.g. `"married"` — the relation word is present but does not link the
    /// queried pair.
    pub distractor_rate: f64,
}

impl GenerativeModel {
    /// Build a model.
    ///
    /// # Panics
    /// Panics if priors don't match `n_classes`, don't sum to ~1, or any
    /// indicative n-gram's prob vector has the wrong length.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n_classes: usize,
        priors: Vec<f64>,
        background: Vec<String>,
        indicative: Vec<IndicativeNgram>,
        doc_len_mean: f64,
        doc_len_std: f64,
        doc_len_min: usize,
        label_noise: f64,
        relation: Option<RelationConfig>,
    ) -> Self {
        assert_eq!(priors.len(), n_classes, "prior length mismatch");
        let sum: f64 = priors.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "priors sum to {sum}");
        assert!(!background.is_empty(), "empty background vocabulary");
        assert!(
            (0.0..0.5).contains(&label_noise),
            "label noise {label_noise}"
        );
        let mut affinity = BTreeMap::new();
        let mut by_class = vec![Vec::new(); n_classes];
        for (i, g) in indicative.iter().enumerate() {
            assert_eq!(g.probs.len(), n_classes, "probs mismatch for {}", g.gram);
            assert!(
                g.probs.iter().all(|p| (0.0..=1.0).contains(p)),
                "bad prob for {}",
                g.gram
            );
            let prev = affinity.insert(g.gram.clone(), i);
            assert!(prev.is_none(), "duplicate indicative n-gram {}", g.gram);
            if let Some(bucket) = by_class.get_mut(g.dominant_class()) {
                bucket.push(i);
            }
        }
        let mut class_cat = Vec::with_capacity(n_classes);
        let mut class_lambda = Vec::with_capacity(n_classes);
        for c in 0..n_classes {
            let weights: Vec<f64> = indicative
                .iter()
                .map(|g| g.probs.get(c).copied().unwrap_or(0.0))
                .collect();
            let lambda: f64 = weights.iter().sum();
            assert!(lambda > 0.0, "class {c} has no indicative mass");
            class_cat.push(Categorical::new(&weights));
            class_lambda.push(lambda);
        }
        let zipf = Zipf::new(background.len(), 1.05);
        // Relation connectors carry strong class signal but are inserted by
        // the entity scaffolding rather than the lexicon; expose them to
        // `affinity` lookups so the simulated LLM can "know" them.
        let mut extra_affinity = BTreeMap::new();
        if let Some(rel) = &relation {
            assert_eq!(n_classes, 2, "relation tasks are binary");
            let n_conn = rel.positive_connectors.len() as f64;
            let pos_rate = 1.0 / n_conn;
            let neg_rate = rel.distractor_rate / n_conn;
            const GLUE: [&str; 7] = ["and", "his", "her", "is", "to", "the", "with"];
            for conn in &rel.positive_connectors {
                let words: Vec<&str> = conn.split(' ').collect();
                if words.len() <= 3 && !affinity.contains_key(*conn) {
                    extra_affinity
                        .entry(conn.to_string())
                        .or_insert_with(|| vec![neg_rate, pos_rate]);
                }
                for w in words {
                    if w.len() > 2 && !GLUE.contains(&w) && !affinity.contains_key(w) {
                        extra_affinity
                            .entry(w.to_string())
                            .or_insert_with(|| vec![neg_rate, pos_rate]);
                    }
                }
            }
        }
        Self {
            n_classes,
            priors,
            background,
            zipf,
            indicative,
            affinity,
            extra_affinity,
            by_class,
            class_cat,
            class_lambda,
            doc_len: Gaussian::new(doc_len_mean, doc_len_std),
            doc_len_min,
            label_noise,
            relation,
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Class priors.
    pub fn priors(&self) -> &[f64] {
        &self.priors
    }

    /// All indicative n-grams.
    pub fn indicative_grams(&self) -> &[IndicativeNgram] {
        &self.indicative
    }

    /// Indicative n-grams whose dominant class is `c`.
    pub fn class_grams(&self, c: usize) -> impl Iterator<Item = &IndicativeNgram> + '_ {
        self.by_class
            .get(c)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .filter_map(move |&i| self.indicative.get(i))
    }

    /// Per-class appearance probabilities of an n-gram, if it is indicative.
    ///
    /// Background words and unknown n-grams return `None` — they carry no
    /// class signal.
    pub fn affinity(&self, gram: &str) -> Option<&[f64]> {
        self.affinity
            .get(gram)
            .and_then(|&i| self.indicative.get(i))
            .map(|g| g.probs.as_slice())
            .or_else(|| self.extra_affinity.get(gram).map(Vec::as_slice))
    }

    /// True if this is a relation (entity-pair) task.
    pub fn is_relation(&self) -> bool {
        self.relation.is_some()
    }

    /// The background vocabulary, most frequent first (Zipf rank order).
    pub fn background_words(&self) -> &[String] {
        &self.background
    }

    /// The positive connector patterns of a relation task (empty for plain
    /// classification). These are the phrases that actually link the
    /// entity pair, i.e. what anchored expert LFs should match.
    pub fn relation_connectors(&self) -> Vec<&'static str> {
        self.relation
            .as_ref()
            .map(|r| r.positive_connectors.clone())
            .unwrap_or_default()
    }

    /// Sample a label from the class priors.
    pub fn sample_label<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (c, p) in self.priors.iter().enumerate() {
            acc += p;
            if u < acc {
                return c;
            }
        }
        self.n_classes - 1
    }

    /// Sample a document of class `label`, deterministically keyed by
    /// `(seed, stream)` so corpus generation order doesn't matter.
    pub fn sample_document(&self, label: usize, seed: u64, stream: u64) -> GeneratedDoc {
        assert!(label < self.n_classes, "label {label} out of range");
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, stream));

        // Label noise: content occasionally generated from the wrong class.
        let content_class = if self.n_classes > 1 && rng.gen::<f64>() < self.label_noise {
            let mut c = rng.gen_range(0..self.n_classes - 1);
            if c >= label {
                c += 1;
            }
            c
        } else {
            label
        };

        // Background tokens.
        let len =
            (self.doc_len.sample(&mut rng).round() as i64).max(self.doc_len_min as i64) as usize;
        let mut tokens: Vec<String> = (0..len)
            .map(|_| {
                let bi = self.zipf.sample(&mut rng);
                self.background.get(bi).cloned().unwrap_or_default()
            })
            .collect();

        // Indicative n-grams: Poisson(λ_c) draws from the class categorical,
        // preserving per-gram marginal appearance probabilities.
        let lambda = self.class_lambda.get(content_class).copied().unwrap_or(0.0);
        let k = sample_poisson(lambda, &mut rng);
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        if let Some(cat) = self.class_cat.get(content_class) {
            for _ in 0..k {
                chosen.push(cat.sample(&mut rng));
            }
        }
        chosen.sort_unstable();
        chosen.dedup();
        for gi in &chosen {
            let Some(g) = self.indicative.get(*gi) else {
                continue;
            };
            let pos = rng.gen_range(0..=tokens.len());
            let parts: Vec<String> = g.gram.split(' ').map(str::to_string).collect();
            tokens.splice(pos..pos, parts);
        }

        match &self.relation {
            None => GeneratedDoc {
                tokens,
                marked: None,
                entities: None,
            },
            Some(rel) => self.finish_relation_doc(tokens, label, rel, &mut rng),
        }
    }

    /// Place entity markers and render names for a relation-task document.
    fn finish_relation_doc(
        &self,
        mut tokens: Vec<String>,
        label: usize,
        rel: &RelationConfig,
        rng: &mut StdRng,
    ) -> GeneratedDoc {
        let name = |rng: &mut StdRng| -> String {
            let fi = rng.gen_range(0..rel.first_names.len());
            let li = rng.gen_range(0..rel.last_names.len());
            format!(
                "{} {}",
                rel.first_names.get(fi).copied().unwrap_or(""),
                rel.last_names.get(li).copied().unwrap_or("")
            )
        };
        let ent_a = name(rng);
        let mut ent_b = name(rng);
        while ent_b == ent_a {
            ent_b = name(rng);
        }

        if label == 1 {
            // Positive: a connector pattern directly links [a] and [b].
            let ci = rng.gen_range(0..rel.positive_connectors.len());
            let conn = rel.positive_connectors.get(ci).copied().unwrap_or("");
            let mut pat: Vec<String> = vec!["[a]".to_string()];
            pat.extend(conn.split(' ').map(str::to_string));
            pat.push("[b]".to_string());
            let pos = rng.gen_range(0..=tokens.len());
            tokens.splice(pos..pos, pat);
        } else {
            // Negative: both entities mentioned, apart from each other.
            let pos_a = rng.gen_range(0..=tokens.len());
            tokens.insert(pos_a, "[a]".to_string());
            let pos_b = rng.gen_range(0..=tokens.len());
            tokens.insert(pos_b, "[b]".to_string());
            // Distractor: a relation connector about a *third* person, so
            // plain keyword LFs fire but the pair is not related.
            if rng.gen::<f64>() < rel.distractor_rate {
                let third = name(rng);
                let ci = rng.gen_range(0..rel.positive_connectors.len());
                let conn = rel.positive_connectors.get(ci).copied().unwrap_or("");
                let mut pat: Vec<String> = third.split(' ').map(str::to_string).collect();
                pat.extend(conn.split(' ').map(str::to_string));
                pat.extend(name(rng).split(' ').map(str::to_string));
                let pos = rng.gen_range(0..=tokens.len());
                tokens.splice(pos..pos, pat);
            }
        }

        // Plain view: substitute names for markers.
        let mut plain = Vec::with_capacity(tokens.len() + 2);
        for t in &tokens {
            match t.as_str() {
                "[a]" => plain.extend(ent_a.split(' ').map(str::to_string)),
                "[b]" => plain.extend(ent_b.split(' ').map(str::to_string)),
                _ => plain.push(t.clone()),
            }
        }
        GeneratedDoc {
            tokens: plain,
            marked: Some(tokens),
            entities: Some((ent_a, ent_b)),
        }
    }
}

/// Knuth's Poisson sampler (fine for the small λ used here).
fn sample_poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> GenerativeModel {
        GenerativeModel::new(
            2,
            vec![0.5, 0.5],
            vec![
                "the".into(),
                "a".into(),
                "of".into(),
                "and".into(),
                "to".into(),
            ],
            vec![
                IndicativeNgram {
                    gram: "great".into(),
                    probs: vec![0.02, 0.30],
                },
                IndicativeNgram {
                    gram: "terrible".into(),
                    probs: vec![0.30, 0.02],
                },
                IndicativeNgram {
                    gram: "waste of time".into(),
                    probs: vec![0.15, 0.01],
                },
            ],
            20.0,
            4.0,
            5,
            0.03,
            None,
        )
    }

    #[test]
    fn dominant_class_and_accuracy() {
        let g = IndicativeNgram {
            gram: "great".into(),
            probs: vec![0.02, 0.30],
        };
        assert_eq!(g.dominant_class(), 1);
        let acc = g.lf_accuracy(&[0.5, 0.5]);
        assert!((acc - 0.30 / 0.32).abs() < 1e-9);
        assert!((g.coverage(&[0.5, 0.5]) - 0.16).abs() < 1e-9);
    }

    #[test]
    fn affinity_lookup() {
        let m = tiny_model();
        assert!(m.affinity("great").is_some());
        assert!(m.affinity("the").is_none());
        assert!(m.affinity("nonexistent").is_none());
        assert_eq!(m.affinity("waste of time").unwrap(), &[0.15, 0.01]);
    }

    #[test]
    fn class_grams_partition() {
        let m = tiny_model();
        let neg: Vec<_> = m.class_grams(0).map(|g| g.gram.as_str()).collect();
        let pos: Vec<_> = m.class_grams(1).map(|g| g.gram.as_str()).collect();
        assert_eq!(pos, vec!["great"]);
        assert!(neg.contains(&"terrible") && neg.contains(&"waste of time"));
    }

    #[test]
    fn documents_are_deterministic_per_stream() {
        let m = tiny_model();
        let d1 = m.sample_document(1, 42, 7);
        let d2 = m.sample_document(1, 42, 7);
        let d3 = m.sample_document(1, 42, 8);
        assert_eq!(d1.tokens, d2.tokens);
        assert_ne!(d1.tokens, d3.tokens);
    }

    #[test]
    fn class_indicative_words_appear_with_right_rate() {
        let m = tiny_model();
        let n = 3000;
        let mut great_pos = 0;
        let mut great_neg = 0;
        for s in 0..n {
            let pos = m.sample_document(1, 1, s);
            let neg = m.sample_document(0, 1, s + n);
            if pos.tokens.iter().any(|t| t == "great") {
                great_pos += 1;
            }
            if neg.tokens.iter().any(|t| t == "great") {
                great_neg += 1;
            }
        }
        let rate_pos = great_pos as f64 / n as f64;
        let rate_neg = great_neg as f64 / n as f64;
        // ~0.30 in positives (minus Poisson dedup slack + label noise),
        // ~0.02 (+noise) in negatives.
        assert!(rate_pos > 0.20 && rate_pos < 0.38, "pos rate {rate_pos}");
        assert!(rate_neg < 0.07, "neg rate {rate_neg}");
    }

    #[test]
    fn multiword_grams_spliced_contiguously() {
        let m = tiny_model();
        for s in 0..300 {
            let d = m.sample_document(0, 3, s);
            if let Some(i) = d.tokens.iter().position(|t| t == "waste") {
                assert_eq!(d.tokens.get(i + 1).map(String::as_str), Some("of"));
                assert_eq!(d.tokens.get(i + 2).map(String::as_str), Some("time"));
                return;
            }
        }
        panic!("trigram never appeared in 300 negative docs");
    }

    #[test]
    fn doc_length_respects_min() {
        let m = GenerativeModel::new(
            2,
            vec![0.5, 0.5],
            vec!["x".into()],
            vec![IndicativeNgram {
                gram: "g".into(),
                probs: vec![0.5, 0.01],
            }],
            2.0,
            5.0,
            3,
            0.0,
            None,
        );
        for s in 0..100 {
            assert!(m.sample_document(0, 9, s).tokens.len() >= 3);
        }
    }

    #[test]
    fn relation_docs_have_markers_and_entities() {
        let rel = RelationConfig {
            first_names: vec!["john", "mary", "li", "sara"],
            last_names: vec!["smith", "jones", "chen"],
            positive_connectors: vec!["married", "and his wife"],
            distractor_rate: 0.5,
        };
        let m = GenerativeModel::new(
            2,
            vec![0.9, 0.1],
            vec!["the".into(), "news".into(), "said".into(), "today".into()],
            vec![
                IndicativeNgram {
                    gram: "wedding".into(),
                    probs: vec![0.01, 0.3],
                },
                IndicativeNgram {
                    gram: "colleague".into(),
                    probs: vec![0.2, 0.01],
                },
            ],
            25.0,
            5.0,
            8,
            0.02,
            Some(rel),
        );
        let pos = m.sample_document(1, 5, 0);
        let marked = pos.marked.as_ref().expect("marked view");
        assert!(marked.iter().any(|t| t == "[a]"));
        assert!(marked.iter().any(|t| t == "[b]"));
        let (a, b) = pos.entities.as_ref().expect("entities");
        assert_ne!(a, b);
        // Plain view substitutes names and has no markers.
        assert!(!pos.tokens.iter().any(|t| t.starts_with('[')));
        let first_of_a = a.split(' ').next().expect("first name");
        assert!(pos.tokens.iter().any(|t| t == first_of_a));
        // Positive: [a] <connector> [b] contiguous.
        let ia = marked.iter().position(|t| t == "[a]").expect("[a]");
        let ib = marked.iter().position(|t| t == "[b]").expect("[b]");
        assert!(ib > ia && ib - ia <= 4, "connector should link the pair");
    }

    #[test]
    fn sample_label_follows_priors() {
        let m = tiny_model();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let ones: usize = (0..n).map(|_| m.sample_label(&mut rng)).sum();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "priors sum")]
    fn bad_priors_panic() {
        let _ = GenerativeModel::new(
            2,
            vec![0.5, 0.6],
            vec!["x".into()],
            vec![IndicativeNgram {
                gram: "g".into(),
                probs: vec![0.5, 0.01],
            }],
            10.0,
            1.0,
            5,
            0.0,
            None,
        );
    }

    #[test]
    #[should_panic(expected = "duplicate indicative")]
    fn duplicate_grams_panic() {
        let g = IndicativeNgram {
            gram: "dup".into(),
            probs: vec![0.5, 0.01],
        };
        let _ = GenerativeModel::new(
            2,
            vec![0.5, 0.5],
            vec!["x".into()],
            vec![g.clone(), g],
            10.0,
            1.0,
            5,
            0.0,
            None,
        );
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let total: usize = (0..n).map(|_| sample_poisson(3.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }
}
