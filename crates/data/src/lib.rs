//! Dataset substrate for the DataSculpt reproduction.
//!
//! The paper evaluates on six text-classification datasets from the WRENCH
//! benchmark (Youtube, SMS, IMDB, Yelp, AgNews, Spouse — Table 1). Those
//! corpora are not available offline, so this crate provides *synthetic
//! generators* that reproduce the properties the experiments depend on:
//!
//! * the exact split sizes and class counts of Table 1,
//! * class-conditional indicative n-grams (so keyword LFs exist and their
//!   accuracy/coverage distributions look like real data),
//! * Zipfian background vocabulary and label noise (so LFs are imperfect),
//! * class imbalance where the original is imbalanced (SMS, Spouse),
//! * entity-pair structure with distractor mentions for the Spouse relation
//!   task (so entity-anchored LFs beat plain keyword LFs, §3.1).
//!
//! Each dataset also exposes its [`GenerativeModel`] — the ground-truth
//! keyword↔class affinities used to synthesize documents. The simulated LLM
//! reads a *noise-corrupted* view of this model (its "world knowledge"), and
//! oracle baselines mine it directly. Real-corpus replacements would only
//! need to implement the same `TextDataset` surface.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod dataset;
pub mod datasets;
pub mod generative;
pub mod instance;
pub mod spec;

pub use dataset::{DatasetName, TextDataset};
pub use generative::{GenerativeModel, IndicativeNgram};
pub use instance::{Instance, Label, Split};
pub use spec::{DatasetSpec, Metric, SplitSizes};
