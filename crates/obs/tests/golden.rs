//! Golden-file test pinning the JSONL trace wire format (schema v1).
//!
//! If this test fails because the encoding changed on purpose, bump
//! `TRACE_SCHEMA_VERSION`, regenerate the golden file from the printed
//! actual output, and update `docs/trace-schema.md`.

#![allow(clippy::unwrap_used)]

use datasculpt_obs::{
    schema, Counter, Event, JsonlTraceSink, ManualClock, RunObserver, Stage, Tracer,
};

const GOLDEN: &str = include_str!("golden/trace_v1.jsonl");

/// One event of every kind, in a validly-nested order (note the select
/// stage span completing *before* `iter_begin` — the pipeline's shape).
fn golden_events() -> Vec<Event> {
    vec![
        Event::RunBegin {
            label: "golden".into(),
            dataset: "youtube".into(),
            model: "sim-gpt".into(),
            queries: 2,
            seed: 7,
        },
        Event::StageBegin {
            iter: 0,
            stage: Stage::Select,
        },
        Event::StageEnd {
            iter: 0,
            stage: Stage::Select,
        },
        Event::IterationBegin {
            iter: 0,
            instance: 42,
        },
        Event::StageBegin {
            iter: 0,
            stage: Stage::Generate,
        },
        Event::Counter {
            counter: Counter::CacheMiss,
            delta: 1,
        },
        Event::Usage {
            model: "sim-gpt".into(),
            prompt_tokens: 120,
            completion_tokens: 16,
            cost_nanousd: 204_000,
        },
        Event::Message {
            text: "hello \"trace\"".into(),
        },
        Event::StageEnd {
            iter: 0,
            stage: Stage::Generate,
        },
        Event::IterationEnd {
            iter: 0,
            accepted: 1,
            rejected: 0,
            failed: false,
        },
        Event::RunEnd {
            iterations: 1,
            failed: 0,
            lfs: 1,
        },
    ]
}

/// A writer whose buffer stays readable after the sink is boxed into the
/// tracer.
#[derive(Clone, Default)]
struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn render_golden_trace() -> String {
    let buf = SharedBuf::default();
    let mut tracer = Tracer::new(Box::new(ManualClock::new(100)))
        .with_sink(Box::new(JsonlTraceSink::new(buf.clone())));
    for event in golden_events() {
        tracer.on_event(&event);
    }
    tracer.finish().unwrap();
    let bytes = buf.0.lock().unwrap().clone();
    String::from_utf8(bytes).unwrap()
}

#[test]
fn trace_encoding_matches_golden_file() {
    let actual = render_golden_trace();
    assert_eq!(
        actual, GOLDEN,
        "trace encoding drifted from tests/golden/trace_v1.jsonl;\nactual:\n{actual}"
    );
}

#[test]
fn golden_trace_passes_the_validator() {
    let summary = schema::validate_trace(GOLDEN).unwrap();
    assert_eq!(summary.events, 11);
    assert_eq!(summary.iterations, 1);
    assert_eq!(summary.cost_nanousd, 204_000);
    assert_eq!(summary.stages, vec!["select", "generate"]);
    // Every event kind appears exactly once — except stage spans, twice.
    for kind in Event::KINDS {
        assert!(summary.kinds.contains_key(kind), "kind {kind} missing");
    }
}
