//! The JSONL trace sink: one self-describing JSON object per event.
//!
//! Wire format (schema v1, see `docs/trace-schema.md`): every line starts
//! with the common header fields `v`, `seq`, `t_ns`, `kind`, followed by
//! `dur_ns` on span-end kinds, followed by the kind-specific fields —
//! always in that order, so traces diff cleanly and the golden-file test
//! can pin the byte-exact encoding.
//!
//! Write errors never panic and never disturb the observed run: the first
//! error is stored, later records become no-ops, and
//! [`finish`](JsonlTraceSink::finish) surfaces it.

use crate::event::Event;
use crate::tracer::{Record, TraceSink};
use crate::TRACE_SCHEMA_VERSION;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Escape a string for a JSON string literal (quotes, backslashes,
/// control characters).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render one stamped record as its JSONL line (without the newline).
pub fn render_line(record: &Record<'_>) -> String {
    let mut line = format!(
        "{{\"v\":{},\"seq\":{},\"t_ns\":{},\"kind\":\"{}\"",
        TRACE_SCHEMA_VERSION,
        record.seq,
        record.t_ns,
        record.event.kind()
    );
    if let Some(d) = record.dur_ns {
        line.push_str(&format!(",\"dur_ns\":{d}"));
    }
    match record.event {
        Event::RunBegin {
            label,
            dataset,
            model,
            queries,
            seed,
        } => {
            line.push_str(&format!(
                ",\"label\":\"{}\",\"dataset\":\"{}\",\"model\":\"{}\",\"queries\":{queries},\"seed\":{seed}",
                escape_json(label),
                escape_json(dataset),
                escape_json(model)
            ));
        }
        Event::RunEnd {
            iterations,
            failed,
            lfs,
        } => {
            line.push_str(&format!(
                ",\"iterations\":{iterations},\"failed\":{failed},\"lfs\":{lfs}"
            ));
        }
        Event::IterationBegin { iter, instance } => {
            line.push_str(&format!(",\"iter\":{iter},\"instance\":{instance}"));
        }
        Event::IterationEnd {
            iter,
            accepted,
            rejected,
            failed,
        } => {
            line.push_str(&format!(
                ",\"iter\":{iter},\"accepted\":{accepted},\"rejected\":{rejected},\"failed\":{failed}"
            ));
        }
        Event::StageBegin { iter, stage } | Event::StageEnd { iter, stage } => {
            line.push_str(&format!(",\"iter\":{iter},\"stage\":\"{}\"", stage.name()));
        }
        Event::Counter { counter, delta } => {
            line.push_str(&format!(
                ",\"counter\":\"{}\",\"delta\":{delta}",
                counter.name()
            ));
        }
        Event::Usage {
            model,
            prompt_tokens,
            completion_tokens,
            cost_nanousd,
        } => {
            line.push_str(&format!(
                ",\"model\":\"{}\",\"prompt_tokens\":{prompt_tokens},\"completion_tokens\":{completion_tokens},\"cost_nanousd\":{cost_nanousd}",
                escape_json(model)
            ));
        }
        Event::Message { text } => {
            line.push_str(&format!(",\"text\":\"{}\"", escape_json(text)));
        }
    }
    line.push('}');
    line
}

/// A [`TraceSink`] that writes one JSON object per record to any
/// [`Write`] target.
pub struct JsonlTraceSink<W: Write> {
    out: W,
    error: Option<io::Error>,
}

impl<W: Write> JsonlTraceSink<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> Self {
        JsonlTraceSink { out, error: None }
    }

    /// The wrapped writer (e.g. to inspect an in-memory buffer in tests).
    pub fn get_ref(&self) -> &W {
        &self.out
    }

    /// Unwrap, discarding any stored error.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl JsonlTraceSink<BufWriter<std::fs::File>> {
    /// A sink writing to a (created/truncated) file, buffered.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlTraceSink::new(BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write> TraceSink for JsonlTraceSink<W> {
    fn record(&mut self, record: &Record<'_>) {
        if self.error.is_some() {
            return;
        }
        let line = render_line(record);
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Counter, Stage};

    fn record(event: &Event) -> String {
        render_line(&Record {
            seq: 7,
            t_ns: 1234,
            dur_ns: None,
            event,
        })
    }

    #[test]
    fn header_fields_come_first_in_stable_order() {
        let line = record(&Event::Message { text: "hi".into() });
        assert_eq!(
            line,
            "{\"v\":1,\"seq\":7,\"t_ns\":1234,\"kind\":\"message\",\"text\":\"hi\"}"
        );
    }

    #[test]
    fn span_end_carries_duration() {
        let line = render_line(&Record {
            seq: 2,
            t_ns: 500,
            dur_ns: Some(400),
            event: &Event::StageEnd {
                iter: 1,
                stage: Stage::Generate,
            },
        });
        assert_eq!(
            line,
            "{\"v\":1,\"seq\":2,\"t_ns\":500,\"kind\":\"stage_end\",\"dur_ns\":400,\"iter\":1,\"stage\":\"generate\"}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let line = record(&Event::Message {
            text: "a\"b\\c\nd\u{1}".into(),
        });
        assert!(line.contains("a\\\"b\\\\c\\nd\\u0001"));
    }

    #[test]
    fn usage_renders_exact_integers() {
        let line = record(&Event::Usage {
            model: "gpt-4-0613".into(),
            prompt_tokens: 10,
            completion_tokens: 3,
            cost_nanousd: 480_000_u128,
        });
        assert!(line.ends_with(
            "\"model\":\"gpt-4-0613\",\"prompt_tokens\":10,\"completion_tokens\":3,\"cost_nanousd\":480000}"
        ));
    }

    #[test]
    fn write_errors_are_stored_not_panicked() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("boom"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlTraceSink::new(Broken);
        sink.record(&Record {
            seq: 0,
            t_ns: 0,
            dur_ns: None,
            event: &Event::Counter {
                counter: Counter::Retry,
                delta: 1,
            },
        });
        assert!(sink.finish().is_err());
    }

    #[test]
    fn sink_writes_one_line_per_record() {
        let mut sink = JsonlTraceSink::new(Vec::new());
        for seq in 0..3u64 {
            sink.record(&Record {
                seq,
                t_ns: seq * 10,
                dur_ns: None,
                event: &Event::Counter {
                    counter: Counter::CacheMiss,
                    delta: 1,
                },
            });
        }
        assert!(sink.finish().is_ok());
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().all(|l| l.starts_with("{\"v\":1,")));
    }
}
