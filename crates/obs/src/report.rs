//! Rendering and diffing of [`TraceAnalysis`] results: the human-readable
//! `trace analyze` report, its stable `--json` form (golden-fixture
//! tested), the folded-stacks flamegraph export, and the structural
//! `trace diff`.
//!
//! Everything here is deterministic: maps are `BTreeMap`-ordered, tree
//! children keep first-encounter order, and the diff compares only
//! timing-free fields unless explicitly asked (`timing: true`) — so two
//! same-seed runs diff empty at any thread count or machine speed.

use crate::cost::{format_ns, format_usd};
use crate::hist::LatencyHistogram;
use crate::jsonl::escape_json;
use crate::spantree::{FlatSpan, SpanNode, TraceAnalysis};
use crate::TRACE_SCHEMA_VERSION;
use std::collections::BTreeMap;

fn ns_u64(ns: u128) -> u64 {
    u64::try_from(ns).unwrap_or(u64::MAX)
}

/// Hot paths: flattened spans sorted by exclusive (self) time, heaviest
/// first, ties broken by path so the order is total.
pub fn hot_paths(analysis: &TraceAnalysis, top_n: usize) -> Vec<FlatSpan> {
    let mut flat = analysis.root.flatten();
    flat.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
    flat.truncate(top_n);
    flat
}

/// Folded-stacks export: one `path;to;node <self_ns>` line per span-tree
/// node, depth-first — the format `flamegraph.pl` and speedscope ingest
/// directly (sample weight = exclusive nanoseconds).
pub fn folded_stacks(analysis: &TraceAnalysis) -> String {
    let mut out = String::new();
    for f in analysis.root.flatten() {
        out.push_str(&format!("{} {}\n", f.path, ns_u64(f.self_ns)));
    }
    out
}

fn render_tree_into(node: &SpanNode, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    out.push_str(&format!(
        "{:<40} {:>6} {:>10} {:>10} {:>6} {:>12}\n",
        format!("{indent}{}", node.label),
        node.count,
        format_ns(ns_u64(node.total_ns)),
        format_ns(ns_u64(node.self_ns())),
        node.calls,
        format_usd(node.cost_nanousd)
    ));
    for child in &node.children {
        render_tree_into(child, depth + 1, out);
    }
}

fn render_hists(hists: &BTreeMap<String, LatencyHistogram>, out: &mut String) {
    for (name, h) in hists {
        out.push_str(&format!(
            "  {name}: count={} mean={} p50<={} p99<={} max={}\n",
            h.count(),
            format_ns(ns_u64(h.mean_ns())),
            format_ns(h.quantile_upper_ns(50).unwrap_or(0)),
            format_ns(h.quantile_upper_ns(99).unwrap_or(0)),
            format_ns(h.max_ns().unwrap_or(0)),
        ));
        out.push_str(&h.render_rows("    "));
    }
}

/// The full human-readable `trace analyze` report.
pub fn render_analyze(analysis: &TraceAnalysis) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "trace: label={:?} dataset={:?} model={:?} queries={} seed={}\n",
        analysis.label, analysis.dataset, analysis.model, analysis.queries, analysis.seed
    ));
    out.push_str(&format!(
        "events: {}  iterations: {} ({} failed)  structural digest: {:016x}\n",
        analysis.events,
        analysis.iterations,
        analysis.failed_iterations,
        analysis.structural_digest
    ));
    out.push_str(&format!(
        "total cost: {} ({} nano-USD, tree-attributed exactly)\n\n",
        format_usd(analysis.total_cost_nanousd()),
        analysis.total_cost_nanousd()
    ));

    out.push_str(&format!(
        "{:<40} {:>6} {:>10} {:>10} {:>6} {:>12}\n",
        "span tree", "count", "total", "self", "calls", "cost"
    ));
    render_tree_into(&analysis.root, 0, &mut out);

    out.push_str("\nhot paths (by self time):\n");
    for f in hot_paths(analysis, 10) {
        out.push_str(&format!(
            "  {:<46} {:>10} {:>12}\n",
            f.path,
            format_ns(ns_u64(f.self_ns)),
            format_usd(f.cost_nanousd)
        ));
    }

    if !analysis.span_hists.is_empty() {
        out.push_str("\nspan latency histograms:\n");
        render_hists(&analysis.span_hists, &mut out);
    }
    if !analysis.model_call_hists.is_empty() {
        out.push_str("\nmodel call latency histograms (innermost enclosing span):\n");
        render_hists(&analysis.model_call_hists, &mut out);
    }

    if !analysis.counters.is_empty() {
        out.push_str("\ncounters:\n");
        for (name, v) in &analysis.counters {
            out.push_str(&format!("  {name:<24} {v:>10}\n"));
        }
    }
    if !analysis.models.is_empty() {
        out.push_str("\nmodels:\n");
        for (name, m) in &analysis.models {
            out.push_str(&format!(
                "  {:<24} calls={} prompt={} completion={} cost={}\n",
                name,
                m.calls,
                m.prompt_tokens,
                m.completion_tokens,
                format_usd(m.cost_nanousd)
            ));
        }
    }
    out
}

fn node_json(node: &SpanNode) -> String {
    let mut out = format!(
        "{{\"label\":\"{}\",\"count\":{},\"total_ns\":{},\"self_ns\":{},\"calls\":{},\"cost_nanousd\":{},\"children\":[",
        escape_json(&node.label),
        node.count,
        node.total_ns,
        node.self_ns(),
        node.calls,
        node.cost_nanousd
    );
    for (i, child) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&node_json(child));
    }
    out.push_str("]}");
    out
}

fn map_json<V, F: Fn(&V) -> String>(map: &BTreeMap<String, V>, render: F) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape_json(k), render(v)));
    }
    out.push('}');
    out
}

/// The stable JSON form of the analysis (`trace analyze --json`): one
/// object, fixed field order, `BTreeMap` key order — byte-identical for
/// identical traces, which is what the golden-fixture smoke in
/// `scripts/check.sh` pins.
pub fn render_analyze_json(analysis: &TraceAnalysis) -> String {
    let mut out = format!(
        "{{\"v\":{TRACE_SCHEMA_VERSION},\"label\":\"{}\",\"dataset\":\"{}\",\"model\":\"{}\",\"queries\":{},\"seed\":{}",
        escape_json(&analysis.label),
        escape_json(&analysis.dataset),
        escape_json(&analysis.model),
        analysis.queries,
        analysis.seed
    );
    out.push_str(&format!(
        ",\"events\":{},\"iterations\":{},\"failed_iterations\":{},\"structural_digest\":\"{:016x}\",\"total_cost_nanousd\":{}",
        analysis.events,
        analysis.iterations,
        analysis.failed_iterations,
        analysis.structural_digest,
        analysis.total_cost_nanousd()
    ));
    out.push_str(&format!(
        ",\"kinds\":{}",
        map_json(&analysis.kinds, u64::to_string)
    ));
    out.push_str(&format!(
        ",\"counters\":{}",
        map_json(&analysis.counters, u64::to_string)
    ));
    out.push_str(&format!(
        ",\"models\":{}",
        map_json(&analysis.models, |m| format!(
            "{{\"calls\":{},\"prompt_tokens\":{},\"completion_tokens\":{},\"cost_nanousd\":{}}}",
            m.calls, m.prompt_tokens, m.completion_tokens, m.cost_nanousd
        ))
    ));
    out.push_str(&format!(",\"tree\":{}", node_json(&analysis.root)));
    out.push_str(&format!(
        ",\"span_hists\":{}",
        map_json(&analysis.span_hists, LatencyHistogram::to_json)
    ));
    out.push_str(&format!(
        ",\"model_call_hists\":{}",
        map_json(&analysis.model_call_hists, LatencyHistogram::to_json)
    ));
    out.push('}');
    out
}

/// One difference found by [`diff`], as a rendered line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffEntry {
    /// What differs, e.g. `counter lf_accepted` or `span trace;run cost`.
    pub field: String,
    /// Value in the first trace.
    pub a: String,
    /// Value in the second trace.
    pub b: String,
}

impl std::fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {} != {}", self.field, self.a, self.b)
    }
}

fn diff_maps<V: PartialEq, F: Fn(&V) -> String>(
    out: &mut Vec<DiffEntry>,
    prefix: &str,
    a: &BTreeMap<String, V>,
    b: &BTreeMap<String, V>,
    render: F,
) {
    let keys: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    for key in keys {
        let (va, vb) = (a.get(key.as_str()), b.get(key.as_str()));
        if va != vb {
            out.push(DiffEntry {
                field: format!("{prefix} {key}"),
                a: va.map_or_else(|| "absent".into(), &render),
                b: vb.map_or_else(|| "absent".into(), &render),
            });
        }
    }
}

fn push_if_ne<T: PartialEq + std::fmt::Display>(out: &mut Vec<DiffEntry>, field: &str, a: T, b: T) {
    if a != b {
        out.push(DiffEntry {
            field: field.to_string(),
            a: a.to_string(),
            b: b.to_string(),
        });
    }
}

/// Structural diff of two analyses. Timing-free by default: compares the
/// structural digest, event/kind/counter totals, per-model usage and
/// exact costs, and the span tree's shape/counts/cost attribution — all
/// fields that are deterministic for a same-seed run at any thread count.
/// With `timing: true` it also compares span durations and histograms
/// (only meaningful for replayed or manual-clock traces).
pub fn diff(a: &TraceAnalysis, b: &TraceAnalysis, timing: bool) -> Vec<DiffEntry> {
    let mut out = Vec::new();
    push_if_ne(
        &mut out,
        "structural_digest",
        format!("{:016x}", a.structural_digest),
        format!("{:016x}", b.structural_digest),
    );
    push_if_ne(&mut out, "label", &a.label, &b.label);
    push_if_ne(&mut out, "dataset", &a.dataset, &b.dataset);
    push_if_ne(&mut out, "model", &a.model, &b.model);
    push_if_ne(&mut out, "queries", a.queries, b.queries);
    push_if_ne(&mut out, "seed", a.seed, b.seed);
    push_if_ne(&mut out, "events", a.events, b.events);
    push_if_ne(&mut out, "iterations", a.iterations, b.iterations);
    push_if_ne(
        &mut out,
        "failed_iterations",
        a.failed_iterations,
        b.failed_iterations,
    );
    push_if_ne(
        &mut out,
        "total_cost_nanousd",
        a.total_cost_nanousd(),
        b.total_cost_nanousd(),
    );
    diff_maps(&mut out, "kind", &a.kinds, &b.kinds, u64::to_string);
    diff_maps(
        &mut out,
        "counter",
        &a.counters,
        &b.counters,
        u64::to_string,
    );
    diff_maps(&mut out, "model", &a.models, &b.models, |m| {
        format!(
            "calls={} prompt={} completion={} cost={}",
            m.calls, m.prompt_tokens, m.completion_tokens, m.cost_nanousd
        )
    });

    // Tree comparison over flattened paths: structure (the paths
    // themselves), span counts, and cost attribution are timing-free;
    // durations only under `timing`.
    let index = |root: &SpanNode| -> BTreeMap<String, FlatSpan> {
        root.flatten()
            .into_iter()
            .map(|f| (f.path.clone(), f))
            .collect()
    };
    let (fa, fb) = (index(&a.root), index(&b.root));
    let keys: std::collections::BTreeSet<&String> = fa.keys().chain(fb.keys()).collect();
    for key in keys {
        match (fa.get(key.as_str()), fb.get(key.as_str())) {
            (Some(x), Some(y)) => {
                push_if_ne(&mut out, &format!("span {key} count"), x.count, y.count);
                push_if_ne(&mut out, &format!("span {key} calls"), x.calls, y.calls);
                push_if_ne(
                    &mut out,
                    &format!("span {key} cost_nanousd"),
                    x.cost_nanousd,
                    y.cost_nanousd,
                );
                if timing {
                    push_if_ne(
                        &mut out,
                        &format!("span {key} total_ns"),
                        x.total_ns,
                        y.total_ns,
                    );
                    push_if_ne(
                        &mut out,
                        &format!("span {key} self_ns"),
                        x.self_ns,
                        y.self_ns,
                    );
                }
            }
            (x, y) => out.push(DiffEntry {
                field: format!("span {key}"),
                a: if x.is_some() { "present" } else { "absent" }.into(),
                b: if y.is_some() { "present" } else { "absent" }.into(),
            }),
        }
    }

    if timing {
        diff_maps(
            &mut out,
            "span_hist",
            &a.span_hists,
            &b.span_hists,
            LatencyHistogram::to_json,
        );
        diff_maps(
            &mut out,
            "model_call_hist",
            &a.model_call_hists,
            &b.model_call_hists,
            LatencyHistogram::to_json,
        );
    }
    out
}

/// Render a diff result: `identical` marker or one line per difference.
pub fn render_diff(entries: &[DiffEntry]) -> String {
    if entries.is_empty() {
        return "traces are structurally identical\n".to_string();
    }
    let mut out = format!("{} difference(s):\n", entries.len());
    for e in entries {
        out.push_str(&format!("  {e}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Counter, Event, Stage};
    use crate::{ManualClock, RunObserver, Tracer};
    use std::sync::{Arc, Mutex};

    fn trace_with(tick: u64, counter_delta: u64) -> String {
        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Buf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf::default();
        let mut tracer = Tracer::new(Box::new(ManualClock::new(tick)));
        tracer.add_sink(Box::new(crate::JsonlTraceSink::new(buf.clone())));
        let events = [
            Event::RunBegin {
                label: "base".into(),
                dataset: "youtube".into(),
                model: "sim".into(),
                queries: 1,
                seed: 42,
            },
            Event::IterationBegin {
                iter: 0,
                instance: 0,
            },
            Event::StageBegin {
                iter: 0,
                stage: Stage::Generate,
            },
            Event::Usage {
                model: "sim".into(),
                prompt_tokens: 10,
                completion_tokens: 2,
                cost_nanousd: 5_000,
            },
            Event::StageEnd {
                iter: 0,
                stage: Stage::Generate,
            },
            Event::Counter {
                counter: Counter::LfAccepted,
                delta: counter_delta,
            },
            Event::IterationEnd {
                iter: 0,
                accepted: 1,
                rejected: 0,
                failed: false,
            },
            Event::RunEnd {
                iterations: 1,
                failed: 0,
                lfs: 1,
            },
        ];
        for e in &events {
            tracer.on_event(e);
        }
        tracer.finish().unwrap();
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn same_structure_different_timing_diffs_empty() {
        let a = TraceAnalysis::from_trace(&trace_with(100, 2)).unwrap();
        let b = TraceAnalysis::from_trace(&trace_with(9_999, 2)).unwrap();
        assert_eq!(diff(&a, &b, false), vec![]);
        assert!(render_diff(&diff(&a, &b, false)).contains("identical"));
        // Under --timing the clock difference shows up.
        assert!(!diff(&a, &b, true).is_empty());
    }

    #[test]
    fn structural_change_is_reported() {
        let a = TraceAnalysis::from_trace(&trace_with(100, 2)).unwrap();
        let b = TraceAnalysis::from_trace(&trace_with(100, 3)).unwrap();
        let d = diff(&a, &b, false);
        assert!(d.iter().any(|e| e.field == "counter lf_accepted"));
        assert!(d.iter().any(|e| e.field == "structural_digest"));
        assert!(render_diff(&d).contains("counter lf_accepted: 2 != 3"));
    }

    #[test]
    fn analyze_json_is_stable_and_flame_covers_all_paths() {
        let a = TraceAnalysis::from_trace(&trace_with(100, 2)).unwrap();
        let b = TraceAnalysis::from_trace(&trace_with(100, 2)).unwrap();
        assert_eq!(render_analyze_json(&a), render_analyze_json(&b));
        let json = render_analyze_json(&a);
        assert!(json.starts_with("{\"v\":1,\"label\":\"base\",\"dataset\":\"youtube\""));
        assert!(json.contains("\"total_cost_nanousd\":5000"));
        assert!(json.contains("\"tree\":{\"label\":\"trace\""));

        let flame = folded_stacks(&a);
        assert!(flame.contains("trace;run;iteration;generate "));
        for line in flame.lines() {
            let (path, value) = line.rsplit_once(' ').unwrap();
            assert!(!path.is_empty());
            value.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn report_renders_tree_hot_paths_and_hists() {
        let a = TraceAnalysis::from_trace(&trace_with(100, 2)).unwrap();
        let text = render_analyze(&a);
        assert!(text.contains("span tree"));
        assert!(text.contains("generate"));
        assert!(text.contains("hot paths"));
        assert!(text.contains("model call latency histograms"));
        assert!(text.contains("lf_accepted"));
        assert!(text.contains(&format!("{} nano-USD", 5_000)));
    }
}
