//! The typed event taxonomy (trace schema v1).
//!
//! Every observable thing that happens during a run is one [`Event`].
//! Producers (the pipeline, the LLM middleware, the baselines, the bench
//! drivers) emit events through a [`RunObserver`](crate::RunObserver);
//! sinks serialize or aggregate them. The JSONL wire form of each variant
//! is documented in `docs/trace-schema.md` and pinned by a golden-file
//! test.

/// A pipeline stage, used to label span begin/end pairs.
///
/// The five DataSculpt stages of one query iteration (`select` → `prompt`
/// → `generate` → `integrate` → `revise`) plus the spans emitted by other
/// producers: `annotate` (one PromptedLF template pass), `fit` (a
/// label-model fit), and `bench` (one dataset cell of a bench driver).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Stage 1: pick the next query instance (§3.4).
    Select,
    /// Stage 2: choose in-context examples and render the prompt (§3.3).
    Prompt,
    /// Stage 3: chat completion + parsing + self-consistency (§4.1).
    Generate,
    /// Stage 4: candidate LFs through the filters (§3.5).
    Integrate,
    /// Stage 5: re-prompt for accuracy-rejected candidates (§5).
    Revise,
    /// One PromptedLF template annotated over the whole train split.
    Annotate,
    /// One label-model fit.
    Fit,
    /// One dataset cell of a bench driver.
    Bench,
    /// One durable-run checkpoint written to disk.
    Checkpoint,
    /// Restoring durable-run state from disk (store open + checkpoint
    /// load + verified replay).
    Restore,
    /// One tenant job processed by the serving daemon (submit → terminal
    /// state); usage events inside the span attribute the job's exact
    /// nano-USD cost to it.
    Job,
}

impl Stage {
    /// Every stage, in reporting order.
    pub const ALL: [Stage; 11] = [
        Stage::Select,
        Stage::Prompt,
        Stage::Generate,
        Stage::Integrate,
        Stage::Revise,
        Stage::Annotate,
        Stage::Fit,
        Stage::Bench,
        Stage::Checkpoint,
        Stage::Restore,
        Stage::Job,
    ];

    /// Stable wire name (the JSONL `stage` field).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Select => "select",
            Stage::Prompt => "prompt",
            Stage::Generate => "generate",
            Stage::Integrate => "integrate",
            Stage::Revise => "revise",
            Stage::Annotate => "annotate",
            Stage::Fit => "fit",
            Stage::Bench => "bench",
            Stage::Checkpoint => "checkpoint",
            Stage::Restore => "restore",
            Stage::Job => "job",
        }
    }

    /// Parse a wire name back into a stage.
    pub fn parse(name: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|s| s.name() == name)
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A named monotone counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Counter {
    /// Candidate LF accepted into the set.
    LfAccepted,
    /// Candidate was an exact duplicate of an accepted LF.
    LfDuplicate,
    /// Candidate rejected by the validity filter.
    LfRejectedValidity,
    /// Candidate rejected by the accuracy filter.
    LfRejectedAccuracy,
    /// Candidate rejected by the redundancy filter.
    LfRejectedRedundancy,
    /// An LLM response sample that yielded no usable `(label, keywords)`.
    ParseFailure,
    /// One §5 revision round-trip issued.
    Revision,
    /// Request served from the response cache.
    CacheHit,
    /// Request forwarded to the backend by the cache.
    CacheMiss,
    /// Cache entry dropped to respect the capacity bound.
    CacheEviction,
    /// A failed call re-issued by the retry middleware.
    Retry,
    /// An LLM call that failed with an error.
    LlmError,
    /// Request served from the on-disk response store.
    StoreHit,
    /// Request forwarded to the backend by the disk store.
    StoreMiss,
    /// One checkpoint record appended to the checkpoint log.
    CheckpointWrite,
    /// One already-checkpointed iteration verified during a resume replay.
    RestoreReplay,
    /// A tenant job admitted (scheduled onto the pool) by the serving
    /// daemon's budget admission control.
    JobAdmit,
    /// A tenant job rejected at admission: the tenant's remaining budget
    /// cannot cover the job's projected cost.
    JobRejectBudget,
    /// A running job paused mid-run: its next iteration's projected cost
    /// would overdraw the tenant's budget. State is checkpointed; a
    /// budget top-up resumes it bit-identically.
    JobPause,
    /// A tenant job that ran to completion.
    JobComplete,
}

impl Counter {
    /// Every counter, in reporting order.
    pub const ALL: [Counter; 20] = [
        Counter::LfAccepted,
        Counter::LfDuplicate,
        Counter::LfRejectedValidity,
        Counter::LfRejectedAccuracy,
        Counter::LfRejectedRedundancy,
        Counter::ParseFailure,
        Counter::Revision,
        Counter::CacheHit,
        Counter::CacheMiss,
        Counter::CacheEviction,
        Counter::Retry,
        Counter::LlmError,
        Counter::StoreHit,
        Counter::StoreMiss,
        Counter::CheckpointWrite,
        Counter::RestoreReplay,
        Counter::JobAdmit,
        Counter::JobRejectBudget,
        Counter::JobPause,
        Counter::JobComplete,
    ];

    /// Stable wire name (the JSONL `counter` field).
    pub fn name(&self) -> &'static str {
        match self {
            Counter::LfAccepted => "lf_accepted",
            Counter::LfDuplicate => "lf_duplicate",
            Counter::LfRejectedValidity => "lf_rejected_validity",
            Counter::LfRejectedAccuracy => "lf_rejected_accuracy",
            Counter::LfRejectedRedundancy => "lf_rejected_redundancy",
            Counter::ParseFailure => "parse_failure",
            Counter::Revision => "revision",
            Counter::CacheHit => "cache_hit",
            Counter::CacheMiss => "cache_miss",
            Counter::CacheEviction => "cache_eviction",
            Counter::Retry => "retry",
            Counter::LlmError => "llm_error",
            Counter::StoreHit => "store_hit",
            Counter::StoreMiss => "store_miss",
            Counter::CheckpointWrite => "checkpoint_write",
            Counter::RestoreReplay => "restore_replay",
            Counter::JobAdmit => "job_admit",
            Counter::JobRejectBudget => "job_reject_budget",
            Counter::JobPause => "job_pause",
            Counter::JobComplete => "job_complete",
        }
    }

    /// Parse a wire name back into a counter.
    pub fn parse(name: &str) -> Option<Counter> {
        Counter::ALL.iter().copied().find(|c| c.name() == name)
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One observable occurrence during a run.
///
/// `iter` fields are 0-based query-iteration indices. Token counts are
/// exact `u64`s and costs are exact integer nano-USD, mirroring the
/// [`UsageLedger`](../../llm) accounting invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A run started.
    RunBegin {
        /// Method display label (e.g. `DataSculpt-SC`, `PromptedLF`).
        label: String,
        /// Dataset name.
        dataset: String,
        /// Backend model API name.
        model: String,
        /// Configured query-iteration budget (or template count).
        queries: u64,
        /// Run seed.
        seed: u64,
    },
    /// The run finished (also emitted when a run aborts with an error).
    RunEnd {
        /// Iterations actually executed.
        iterations: u64,
        /// Iterations that failed with an LLM error.
        failed: u64,
        /// Accepted LFs (or weak-label columns) at the end.
        lfs: u64,
    },
    /// A query iteration started (its instance is known after `select`).
    IterationBegin {
        /// 0-based iteration index.
        iter: u64,
        /// Train-split index of the queried instance.
        instance: u64,
    },
    /// A query iteration finished.
    IterationEnd {
        /// 0-based iteration index.
        iter: u64,
        /// Candidate LFs accepted this iteration.
        accepted: u64,
        /// Candidate LFs rejected this iteration.
        rejected: u64,
        /// Whether the iteration was cut short by an LLM error.
        failed: bool,
    },
    /// A stage span opened.
    StageBegin {
        /// Iteration the stage belongs to.
        iter: u64,
        /// The stage.
        stage: Stage,
    },
    /// A stage span closed. The [`Tracer`](crate::Tracer) stamps the
    /// duration from its clock when forwarding to sinks.
    StageEnd {
        /// Iteration the stage belongs to.
        iter: u64,
        /// The stage.
        stage: Stage,
    },
    /// A counter increment.
    Counter {
        /// Which counter.
        counter: Counter,
        /// Increment (≥ 1).
        delta: u64,
    },
    /// Token/cost delta for one recorded LLM call (or a merged batch).
    Usage {
        /// Model API name.
        model: String,
        /// Prompt tokens billed.
        prompt_tokens: u64,
        /// Completion tokens billed.
        completion_tokens: u64,
        /// Exact cost in nano-USD at the pricing-table rates.
        cost_nanousd: u128,
    },
    /// A human-readable progress line (free text).
    Message {
        /// The text.
        text: String,
    },
}

impl Event {
    /// Stable wire name (the JSONL `kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunBegin { .. } => "run_begin",
            Event::RunEnd { .. } => "run_end",
            Event::IterationBegin { .. } => "iter_begin",
            Event::IterationEnd { .. } => "iter_end",
            Event::StageBegin { .. } => "stage_begin",
            Event::StageEnd { .. } => "stage_end",
            Event::Counter { .. } => "counter",
            Event::Usage { .. } => "usage",
            Event::Message { .. } => "message",
        }
    }

    /// Every wire kind, in schema order.
    pub const KINDS: [&'static str; 9] = [
        "run_begin",
        "run_end",
        "iter_begin",
        "iter_end",
        "stage_begin",
        "stage_end",
        "counter",
        "usage",
        "message",
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for s in Stage::ALL {
            assert_eq!(Stage::parse(s.name()), Some(s));
        }
        assert_eq!(Stage::parse("nope"), None);
    }

    #[test]
    fn counter_names_round_trip() {
        for c in Counter::ALL {
            assert_eq!(Counter::parse(c.name()), Some(c));
        }
        assert_eq!(Counter::parse("nope"), None);
    }

    #[test]
    fn kinds_cover_every_variant() {
        let samples = [
            Event::RunBegin {
                label: String::new(),
                dataset: String::new(),
                model: String::new(),
                queries: 0,
                seed: 0,
            },
            Event::RunEnd {
                iterations: 0,
                failed: 0,
                lfs: 0,
            },
            Event::IterationBegin {
                iter: 0,
                instance: 0,
            },
            Event::IterationEnd {
                iter: 0,
                accepted: 0,
                rejected: 0,
                failed: false,
            },
            Event::StageBegin {
                iter: 0,
                stage: Stage::Select,
            },
            Event::StageEnd {
                iter: 0,
                stage: Stage::Select,
            },
            Event::Counter {
                counter: Counter::CacheHit,
                delta: 1,
            },
            Event::Usage {
                model: String::new(),
                prompt_tokens: 0,
                completion_tokens: 0,
                cost_nanousd: 0,
            },
            Event::Message {
                text: String::new(),
            },
        ];
        for (e, kind) in samples.iter().zip(Event::KINDS) {
            assert_eq!(e.kind(), kind);
        }
    }
}
