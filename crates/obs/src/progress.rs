//! Human-readable progress lines on stderr.
//!
//! This observer replaces the ad-hoc `eprintln!` calls that used to live in
//! the CLI and examples: producers emit the same typed events whether a
//! human is watching or a trace is being written, and *this* sink decides
//! what a human wants to see. Write failures on stderr are ignored — losing
//! a progress line must never disturb the run.

use crate::cost::format_usd;
use crate::event::Event;
use crate::RunObserver;
use std::io::Write;

/// Renders selected events as progress lines on stderr.
///
/// Quiet by default about per-stage detail; per-iteration lines can be
/// enabled with [`verbose`](Self::verbose).
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrProgressSink {
    verbose: bool,
}

impl StderrProgressSink {
    /// A sink printing run begin/end, messages, and usage totals.
    pub fn new() -> Self {
        StderrProgressSink::default()
    }

    /// Also print one line per finished iteration.
    pub fn verbose(mut self, verbose: bool) -> Self {
        self.verbose = verbose;
        self
    }

    fn line(&self, text: &str) {
        // Losing a progress line is acceptable; disturbing the run is not.
        // ds-lint: allow(discarded-result): stderr progress is best-effort
        let _ = writeln!(std::io::stderr(), "{text}");
    }
}

impl RunObserver for StderrProgressSink {
    fn on_event(&mut self, event: &Event) {
        match event {
            Event::RunBegin {
                label,
                dataset,
                model,
                queries,
                seed,
            } => {
                self.line(&format!(
                    "[{label}] dataset={dataset} model={model} queries={queries} seed={seed}"
                ));
            }
            Event::RunEnd {
                iterations,
                failed,
                lfs,
            } => {
                self.line(&format!(
                    "[done] iterations={iterations} failed={failed} lfs={lfs}"
                ));
            }
            Event::IterationEnd {
                iter,
                accepted,
                rejected,
                failed,
            } if self.verbose => {
                let status = if *failed { " FAILED" } else { "" };
                self.line(&format!(
                    "  iter {iter}: +{accepted} lf, -{rejected} rejected{status}"
                ));
            }
            Event::Usage {
                model,
                prompt_tokens,
                completion_tokens,
                cost_nanousd,
            } if self.verbose => {
                self.line(&format!(
                    "  usage {model}: {prompt_tokens}+{completion_tokens} tok, {}",
                    format_usd(*cost_nanousd)
                ));
            }
            Event::Message { text } => self.line(text),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_accepts_every_event_kind_without_panicking() {
        let mut sink = StderrProgressSink::new().verbose(true);
        // Progress output goes to stderr (not captured for assertion); the
        // contract under test is only that no event kind panics.
        for event in [
            Event::RunBegin {
                label: "run".into(),
                dataset: "youtube".into(),
                model: "sim".into(),
                queries: 1,
                seed: 0,
            },
            Event::IterationEnd {
                iter: 0,
                accepted: 1,
                rejected: 0,
                failed: false,
            },
            Event::Usage {
                model: "sim".into(),
                prompt_tokens: 1,
                completion_tokens: 1,
                cost_nanousd: 1,
            },
            Event::Message { text: "hi".into() },
            Event::RunEnd {
                iterations: 1,
                failed: 0,
                lfs: 1,
            },
        ] {
            sink.on_event(&event);
        }
        assert!(sink.finish().is_ok());
    }
}
