//! Observability substrate for the DataSculpt reproduction.
//!
//! The paper's headline claim is a cost/accuracy trade-off; reproducing it
//! at production scale needs per-iteration, per-stage visibility into where
//! tokens, cache hits, filter rejections, and wall-time go. This crate is
//! that measurement substrate — zero external dependencies, and built so
//! that *observation can never perturb a run*: observers are write-only,
//! and all time flows through an injectable [`Clock`] so the determinism
//! contract (`same seed → same digest`, see ds-lint's `wall-clock` rule)
//! stays intact.
//!
//! # Layers
//!
//! * **Producers** emit typed [`Event`]s into a [`RunObserver`] — the
//!   pipeline's five stages, the LLM cache/retry middleware, the PromptedLF
//!   baseline, the bench drivers.
//! * [`Tracer`] is the timing layer: it stamps each event with a sequence
//!   number and a clock reading, matches span begin/end pairs to compute
//!   durations, and fans the resulting [`Record`]s out to [`TraceSink`]s.
//! * **Sinks**: [`JsonlTraceSink`] writes one self-describing JSON object
//!   per event (schema in `docs/trace-schema.md`, validated by
//!   [`schema::validate_trace`]); [`MetricsRecorder`] aggregates in memory
//!   and renders a per-stage latency/count/cost summary table;
//!   [`StderrProgressSink`] renders human-readable progress lines.
//!
//! # Composition
//!
//! [`Multi`] fans one event stream out to several observers;
//! [`SharedObserver`] makes a single observer shareable between the
//! pipeline and the model middleware (both need to emit into the same
//! trace during one run).
//!
//! ```
//! use datasculpt_obs::{
//!     Event, JsonlTraceSink, ManualClock, MetricsRecorder, RunObserver, Stage, Tracer,
//! };
//!
//! let metrics = MetricsRecorder::new();
//! let mut tracer = Tracer::new(Box::new(ManualClock::new(1_000)));
//! tracer.add_sink(Box::new(JsonlTraceSink::new(Vec::new())));
//! tracer.add_sink(Box::new(metrics.clone()));
//! tracer.on_event(&Event::StageBegin { iter: 0, stage: Stage::Generate });
//! tracer.on_event(&Event::StageEnd { iter: 0, stage: Stage::Generate });
//! assert_eq!(metrics.snapshot().stages["generate"].count, 1);
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod clock;
pub mod cost;
pub mod event;
pub mod expo;
pub mod hist;
pub mod jsonl;
pub mod metrics;
pub mod progress;
pub mod report;
pub mod schema;
pub mod spantree;
pub mod tracer;

pub use clock::{Clock, ManualClock, SystemClock};
pub use event::{Counter, Event, Stage};
pub use expo::render_prometheus;
pub use hist::LatencyHistogram;
pub use jsonl::JsonlTraceSink;
pub use metrics::{MetricsRecorder, MetricsSnapshot};
pub use progress::StderrProgressSink;
pub use spantree::{SpanNode, SpanTreeBuilder, TraceAnalysis};
pub use tracer::{Record, TraceSink, Tracer};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Version of the JSONL trace schema emitted by this crate.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Receives typed run events.
///
/// Observers are strictly write-only: nothing an observer does may feed
/// back into the observed run, which is what keeps an observed run
/// digest-identical to an unobserved one.
pub trait RunObserver {
    /// Handle one event.
    fn on_event(&mut self, event: &Event);

    /// Flush/close any underlying resources. Called once, after the run.
    fn finish(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The no-op observer: the default when tracing is off.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl RunObserver for NoopObserver {
    fn on_event(&mut self, _event: &Event) {}
}

/// Fan-out: forwards every event to each child observer, in order.
///
/// Children are `Send` so a `Multi` can sit behind a [`SharedObserver`]
/// that worker threads emit into.
#[derive(Default)]
pub struct Multi {
    children: Vec<Box<dyn RunObserver + Send>>,
}

impl Multi {
    /// An empty fan-out (observing into it is a no-op).
    pub fn new() -> Self {
        Multi::default()
    }

    /// Add a child observer.
    pub fn push(&mut self, child: impl RunObserver + Send + 'static) {
        self.children.push(Box::new(child));
    }

    /// Builder form of [`push`](Self::push).
    pub fn with(mut self, child: impl RunObserver + Send + 'static) -> Self {
        self.push(child);
        self
    }

    /// Number of child observers.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Whether there are no children.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

impl RunObserver for Multi {
    fn on_event(&mut self, event: &Event) {
        for child in &mut self.children {
            child.on_event(event);
        }
    }

    fn finish(&mut self) -> std::io::Result<()> {
        let mut first_err = None;
        for child in &mut self.children {
            if let Err(e) = child.finish() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// A cloneable, thread-safe handle to one observer, so the pipeline, the
/// model middleware (cache, retry), and `exec`-pool workers can all emit
/// into the same trace during a single run.
///
/// Cross-thread emission serializes through a mutex: concurrent events are
/// never dropped, they are delivered one at a time in lock-acquisition
/// order. Re-entrant emission (an observer emitting while *the same
/// thread* is already handling an event) is silently dropped rather than
/// deadlocking, preserving the old single-threaded contract.
#[derive(Clone)]
pub struct SharedObserver {
    inner: Arc<SharedInner>,
}

struct SharedInner {
    observer: Mutex<Box<dyn RunObserver + Send>>,
    /// Token of the thread currently inside the observer (0 = none), used
    /// to tell same-thread re-entrancy apart from cross-thread contention.
    holder: AtomicU64,
}

/// A nonzero per-thread token (hashed [`std::thread::ThreadId`]).
fn thread_token() -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    h.finish() | 1
}

/// Clears the holder token even if the wrapped observer panics.
struct HolderReset<'a>(&'a AtomicU64);

impl Drop for HolderReset<'_> {
    fn drop(&mut self) {
        self.0.store(0, Ordering::Release);
    }
}

impl SharedObserver {
    /// Wrap an observer in a shareable handle.
    pub fn new(observer: impl RunObserver + Send + 'static) -> Self {
        SharedObserver {
            inner: Arc::new(SharedInner {
                observer: Mutex::new(Box::new(observer)),
                holder: AtomicU64::new(0),
            }),
        }
    }

    /// Run `f` on the inner observer unless this thread is already inside
    /// it (re-entrancy), in which case `f` is skipped and `fallback`
    /// returned. Poisoning is ignored: a panicking observer must not take
    /// the run down with it.
    fn with_inner<R>(&self, fallback: R, f: impl FnOnce(&mut dyn RunObserver) -> R) -> R {
        let me = thread_token();
        if self.inner.holder.load(Ordering::Acquire) == me {
            return fallback;
        }
        let mut guard = self
            .inner
            .observer
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.inner.holder.store(me, Ordering::Release);
        let _reset = HolderReset(&self.inner.holder);
        f(guard.as_mut())
    }
}

impl std::fmt::Debug for SharedObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SharedObserver")
    }
}

impl RunObserver for SharedObserver {
    fn on_event(&mut self, event: &Event) {
        self.with_inner((), |inner| inner.on_event(event));
    }

    fn finish(&mut self) -> std::io::Result<()> {
        self.with_inner(Ok(()), |inner| inner.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingObserver(u64);

    impl RunObserver for CountingObserver {
        fn on_event(&mut self, _event: &Event) {
            self.0 += 1;
        }
    }

    #[test]
    fn noop_ignores_everything() {
        let mut n = NoopObserver;
        n.on_event(&Event::Message { text: "x".into() });
        assert!(n.finish().is_ok());
    }

    #[test]
    fn multi_fans_out_to_all_children() {
        let a = SharedObserver::new(CountingObserver(0));
        let metrics = MetricsRecorder::new();
        let mut tracer = Tracer::new(Box::new(ManualClock::new(1)));
        tracer.add_sink(Box::new(metrics.clone()));
        let mut multi = Multi::new().with(a).with(tracer);
        assert_eq!(multi.len(), 2);
        multi.on_event(&Event::Counter {
            counter: Counter::CacheHit,
            delta: 2,
        });
        assert!(multi.finish().is_ok());
        assert_eq!(metrics.snapshot().counters["cache_hit"], 2);
    }

    #[test]
    fn shared_observer_clones_emit_into_one_target() {
        let shared = SharedObserver::new(CountingObserver(0));
        let mut a = shared.clone();
        let mut b = shared.clone();
        a.on_event(&Event::Message { text: "1".into() });
        b.on_event(&Event::Message { text: "2".into() });
        // Both events reached the single inner observer; verified indirectly
        // through a MetricsRecorder in the multi test above — here we just
        // check the handle survives cloning and finishing.
        assert!(a.finish().is_ok());
    }
}
