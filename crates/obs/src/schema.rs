//! Trace validation: checks that a JSONL trace conforms to schema v1.
//!
//! Used by the `datasculpt trace-check` subcommand and by `scripts/check.sh`
//! to prove that every emitted trace line-parses, carries only known event
//! kinds/stages/counters with their required fields, keeps `seq`/`t_ns`
//! monotone, and nests spans strictly (every end event closes the innermost
//! open span; nothing left open at EOF).
//!
//! The parser here is deliberately tiny: traces are flat JSON objects whose
//! values are strings, unsigned integers, or booleans — exactly what
//! [`crate::jsonl::render_line`] emits — so a full JSON implementation
//! (and the external dependency it would drag in) is unnecessary.

use crate::event::{Counter, Event, Stage};
use crate::TRACE_SCHEMA_VERSION;
use std::collections::BTreeMap;
use std::fmt;

/// A value in a trace line: the flat subset of JSON the writer emits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// A string literal.
    Str(String),
    /// An unsigned integer (covers `cost_nanousd` up to u128).
    UInt(u128),
    /// A boolean.
    Bool(bool),
}

impl JsonValue {
    fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Str(_) => "string",
            JsonValue::UInt(_) => "integer",
            JsonValue::Bool(_) => "boolean",
        }
    }
}

/// A validation failure, with the 1-based line it occurred on (0 = EOF).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// 1-based trace line, or 0 for end-of-trace errors.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "trace: {}", self.message)
        } else {
            write!(f, "trace line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ValidateError {}

fn err(line: usize, message: impl Into<String>) -> ValidateError {
    ValidateError {
        line,
        message: message.into(),
    }
}

/// Parse one flat JSON object, preserving key order.
///
/// Accepts exactly the subset [`crate::jsonl::render_line`] emits: string,
/// unsigned-integer, and boolean values; no nesting, no floats, no null.
pub fn parse_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while matches!(bytes.get(*pos), Some(&(b' ' | b'\t'))) {
            *pos += 1;
        }
    }

    fn parse_string(line: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected '\"' at byte {}", *pos));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = line.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("invalid codepoint \\u{hex}"))?,
                            );
                            *pos += 4;
                        }
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 character, not one byte.
                    let rest = line.get(*pos..).unwrap_or("");
                    let ch = rest.chars().next().ok_or("invalid utf-8 position")?;
                    out.push(ch);
                    *pos += ch.len_utf8();
                }
            }
        }
    }

    skip_ws(bytes, &mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return Err("expected '{'".into());
    }
    pos += 1;
    let mut fields = Vec::new();
    skip_ws(bytes, &mut pos);
    if bytes.get(pos) == Some(&b'}') {
        pos += 1;
    } else {
        loop {
            skip_ws(bytes, &mut pos);
            let key = parse_string(line, bytes, &mut pos)?;
            skip_ws(bytes, &mut pos);
            if bytes.get(pos) != Some(&b':') {
                return Err(format!("expected ':' after key '{key}'"));
            }
            pos += 1;
            skip_ws(bytes, &mut pos);
            let value = match bytes.get(pos) {
                Some(b'"') => JsonValue::Str(parse_string(line, bytes, &mut pos)?),
                Some(b't') if line.get(pos..).is_some_and(|r| r.starts_with("true")) => {
                    pos += 4;
                    JsonValue::Bool(true)
                }
                Some(b'f') if line.get(pos..).is_some_and(|r| r.starts_with("false")) => {
                    pos += 5;
                    JsonValue::Bool(false)
                }
                Some(c) if c.is_ascii_digit() => {
                    let start = pos;
                    while bytes.get(pos).is_some_and(|b| b.is_ascii_digit()) {
                        pos += 1;
                    }
                    let n: u128 = line
                        .get(start..pos)
                        .unwrap_or("")
                        .parse()
                        .map_err(|_| format!("integer out of range at byte {start}"))?;
                    JsonValue::UInt(n)
                }
                other => {
                    return Err(format!(
                        "unsupported value {other:?} for key '{key}' (flat traces only)"
                    ))
                }
            };
            fields.push((key, value));
            skip_ws(bytes, &mut pos);
            match bytes.get(pos) {
                Some(b',') => pos += 1,
                Some(b'}') => {
                    pos += 1;
                    break;
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content after object at byte {pos}"));
    }
    Ok(fields)
}

/// What a validated trace contained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total lines (= events).
    pub events: u64,
    /// Events per kind.
    pub kinds: BTreeMap<String, u64>,
    /// Distinct stages that completed at least one span.
    pub stages: Vec<String>,
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Iterations completed.
    pub iterations: u64,
    /// Total cost across usage events, exact nano-USD.
    pub cost_nanousd: u128,
}

/// Required non-header fields per kind, with expected types.
fn required_fields(kind: &str) -> &'static [(&'static str, &'static str)] {
    match kind {
        "run_begin" => &[
            ("label", "string"),
            ("dataset", "string"),
            ("model", "string"),
            ("queries", "integer"),
            ("seed", "integer"),
        ],
        "run_end" => &[
            ("iterations", "integer"),
            ("failed", "integer"),
            ("lfs", "integer"),
        ],
        "iter_begin" => &[("iter", "integer"), ("instance", "integer")],
        "iter_end" => &[
            ("iter", "integer"),
            ("accepted", "integer"),
            ("rejected", "integer"),
            ("failed", "boolean"),
        ],
        "stage_begin" | "stage_end" => &[("iter", "integer"), ("stage", "string")],
        "counter" => &[("counter", "string"), ("delta", "integer")],
        "usage" => &[
            ("model", "string"),
            ("prompt_tokens", "integer"),
            ("completion_tokens", "integer"),
            ("cost_nanousd", "integer"),
        ],
        "message" => &[("text", "string")],
        _ => &[],
    }
}

#[derive(Debug, PartialEq, Eq)]
enum OpenSpan {
    Run,
    Iteration(u128),
    Stage(u128, String),
}

impl fmt::Display for OpenSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpenSpan::Run => write!(f, "run"),
            OpenSpan::Iteration(i) => write!(f, "iteration {i}"),
            OpenSpan::Stage(i, s) => write!(f, "stage {s} (iter {i})"),
        }
    }
}

struct LineView<'a> {
    no: usize,
    fields: &'a [(String, JsonValue)],
}

impl LineView<'_> {
    fn get(&self, key: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn uint(&self, key: &str) -> Result<u128, ValidateError> {
        match self.get(key) {
            Some(JsonValue::UInt(n)) => Ok(*n),
            _ => Err(err(self.no, format!("missing integer field '{key}'"))),
        }
    }

    fn str(&self, key: &str) -> Result<&str, ValidateError> {
        match self.get(key) {
            Some(JsonValue::Str(s)) => Ok(s),
            _ => Err(err(self.no, format!("missing string field '{key}'"))),
        }
    }
}

/// Validate a whole trace (the concatenated JSONL text).
///
/// Checks, per line: it parses as a flat JSON object; the header fields
/// `v`, `seq`, `t_ns`, `kind` lead in that order; `v` matches
/// [`TRACE_SCHEMA_VERSION`]; `seq` increments from 0; `t_ns` never
/// decreases; the kind, any stage, and any counter name are known; every
/// required field is present with the right type; `dur_ns` appears on end
/// kinds and only there. Across lines: every end event closes the
/// *innermost* open span (strict nesting) and no span is left open at EOF.
pub fn validate_trace(text: &str) -> Result<TraceSummary, ValidateError> {
    let mut summary = TraceSummary::default();
    let mut stack: Vec<OpenSpan> = Vec::new();
    let mut last_t_ns: u128 = 0;
    let mut stages_seen: Vec<String> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let no = idx + 1;
        if raw.trim().is_empty() {
            return Err(err(no, "blank line in trace"));
        }
        let fields = parse_object(raw).map_err(|e| err(no, e))?;
        let line = LineView {
            no,
            fields: &fields,
        };

        // Header: v, seq, t_ns, kind — present, typed, and leading in order.
        let header: Vec<&str> = fields.iter().take(4).map(|(k, _)| k.as_str()).collect();
        if header != ["v", "seq", "t_ns", "kind"] {
            return Err(err(
                no,
                format!("header must start with v,seq,t_ns,kind (got {header:?})"),
            ));
        }
        let v = line.uint("v")?;
        if v != u128::from(TRACE_SCHEMA_VERSION) {
            return Err(err(no, format!("unsupported schema version {v}")));
        }
        let seq = line.uint("seq")?;
        let expected = idx as u128;
        if seq != expected {
            return Err(err(no, format!("seq {seq}, expected {expected}")));
        }
        let t_ns = line.uint("t_ns")?;
        if t_ns < last_t_ns {
            return Err(err(
                no,
                format!("t_ns went backwards ({t_ns} after {last_t_ns})"),
            ));
        }
        last_t_ns = t_ns;

        let kind = line.str("kind")?.to_string();
        if !Event::KINDS.contains(&kind.as_str()) {
            return Err(err(no, format!("unknown event kind '{kind}'")));
        }

        // dur_ns on end kinds, and only there.
        let is_end = matches!(kind.as_str(), "run_end" | "iter_end" | "stage_end");
        match (is_end, line.get("dur_ns")) {
            (true, Some(JsonValue::UInt(_))) | (false, None) => {}
            (true, _) => return Err(err(no, format!("'{kind}' requires integer dur_ns"))),
            (false, Some(_)) => return Err(err(no, format!("'{kind}' must not carry dur_ns"))),
        }

        for (field, ty) in required_fields(&kind) {
            match line.get(field) {
                Some(v) if v.type_name() == *ty => {}
                Some(v) => {
                    return Err(err(
                        no,
                        format!("field '{field}' must be {ty}, got {}", v.type_name()),
                    ))
                }
                None => return Err(err(no, format!("'{kind}' missing field '{field}'"))),
            }
        }

        // Domain checks + span nesting.
        match kind.as_str() {
            "run_begin" => stack.push(OpenSpan::Run),
            "iter_begin" => stack.push(OpenSpan::Iteration(line.uint("iter")?)),
            "stage_begin" | "stage_end" => {
                let stage = line.str("stage")?;
                if Stage::parse(stage).is_none() {
                    return Err(err(no, format!("unknown stage '{stage}'")));
                }
                let iter = line.uint("iter")?;
                if kind == "stage_begin" {
                    stack.push(OpenSpan::Stage(iter, stage.to_string()));
                } else {
                    let expected = OpenSpan::Stage(iter, stage.to_string());
                    match stack.pop() {
                        Some(top) if top == expected => {}
                        Some(top) => {
                            return Err(err(
                                no,
                                format!("stage_end for {expected} while {top} is innermost"),
                            ))
                        }
                        None => {
                            return Err(err(
                                no,
                                format!("stage_end for {expected} with no open span"),
                            ))
                        }
                    }
                    if !stages_seen.iter().any(|s| s == stage) {
                        stages_seen.push(stage.to_string());
                    }
                }
            }
            "iter_end" => {
                let expected = OpenSpan::Iteration(line.uint("iter")?);
                match stack.pop() {
                    Some(top) if top == expected => {}
                    Some(top) => {
                        return Err(err(
                            no,
                            format!("iter_end for {expected} while {top} is innermost"),
                        ))
                    }
                    None => return Err(err(no, "iter_end with no open span".to_string())),
                }
                summary.iterations += 1;
            }
            "run_end" => match stack.pop() {
                Some(OpenSpan::Run) => {}
                Some(top) => return Err(err(no, format!("run_end while {top} is innermost"))),
                None => return Err(err(no, "run_end with no open span".to_string())),
            },
            "counter" => {
                let counter = line.str("counter")?;
                if Counter::parse(counter).is_none() {
                    return Err(err(no, format!("unknown counter '{counter}'")));
                }
                let delta = line.uint("delta")?;
                *summary.counters.entry(counter.to_string()).or_default() +=
                    u64::try_from(delta).map_err(|_| err(no, "delta out of range"))?;
            }
            "usage" => {
                summary.cost_nanousd += line.uint("cost_nanousd")?;
            }
            _ => {}
        }

        *summary.kinds.entry(kind).or_default() += 1;
        summary.events += 1;
    }

    if let Some(top) = stack.last() {
        return Err(err(0, format!("unclosed span at end of trace: {top}")));
    }
    summary.stages = stages_seen;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = concat!(
        "{\"v\":1,\"seq\":0,\"t_ns\":0,\"kind\":\"run_begin\",\"label\":\"run\",\"dataset\":\"youtube\",\"model\":\"sim\",\"queries\":1,\"seed\":7}\n",
        "{\"v\":1,\"seq\":1,\"t_ns\":10,\"kind\":\"stage_begin\",\"iter\":0,\"stage\":\"select\"}\n",
        "{\"v\":1,\"seq\":2,\"t_ns\":20,\"kind\":\"stage_end\",\"dur_ns\":10,\"iter\":0,\"stage\":\"select\"}\n",
        "{\"v\":1,\"seq\":3,\"t_ns\":30,\"kind\":\"iter_begin\",\"iter\":0,\"instance\":42}\n",
        "{\"v\":1,\"seq\":4,\"t_ns\":40,\"kind\":\"stage_begin\",\"iter\":0,\"stage\":\"generate\"}\n",
        "{\"v\":1,\"seq\":5,\"t_ns\":50,\"kind\":\"counter\",\"counter\":\"cache_miss\",\"delta\":1}\n",
        "{\"v\":1,\"seq\":6,\"t_ns\":60,\"kind\":\"usage\",\"model\":\"sim\",\"prompt_tokens\":10,\"completion_tokens\":2,\"cost_nanousd\":190000}\n",
        "{\"v\":1,\"seq\":7,\"t_ns\":70,\"kind\":\"stage_end\",\"dur_ns\":30,\"iter\":0,\"stage\":\"generate\"}\n",
        "{\"v\":1,\"seq\":8,\"t_ns\":80,\"kind\":\"iter_end\",\"dur_ns\":50,\"iter\":0,\"accepted\":1,\"rejected\":0,\"failed\":false}\n",
        "{\"v\":1,\"seq\":9,\"t_ns\":90,\"kind\":\"run_end\",\"dur_ns\":90,\"iterations\":1,\"failed\":0,\"lfs\":1}\n",
    );

    #[test]
    fn accepts_a_well_formed_trace() {
        let summary = validate_trace(GOOD).unwrap();
        assert_eq!(summary.events, 10);
        assert_eq!(summary.iterations, 1);
        assert_eq!(summary.kinds["stage_begin"], 2);
        assert_eq!(summary.counters["cache_miss"], 1);
        assert_eq!(summary.cost_nanousd, 190_000);
        assert_eq!(summary.stages, vec!["select", "generate"]);
    }

    #[test]
    fn select_before_iteration_is_valid_nesting() {
        // The pipeline opens/closes the select span before iter_begin (the
        // instance is unknown until selection returns); the validator must
        // accept that shape — GOOD encodes it.
        assert!(validate_trace(GOOD).is_ok());
    }

    #[test]
    fn rejects_bad_seq() {
        let bad = GOOD.replace("\"seq\":3", "\"seq\":9");
        let e = validate_trace(&bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("seq"));
    }

    #[test]
    fn rejects_time_going_backwards() {
        let bad = GOOD.replace("\"t_ns\":90", "\"t_ns\":5");
        assert!(validate_trace(&bad)
            .unwrap_err()
            .message
            .contains("backwards"));
    }

    #[test]
    fn rejects_unknown_kind_stage_and_counter() {
        let bad = GOOD.replace("\"kind\":\"counter\"", "\"kind\":\"telemetry\"");
        assert!(validate_trace(&bad).unwrap_err().message.contains("kind"));
        let bad = GOOD.replace("\"stage\":\"select\"", "\"stage\":\"warmup\"");
        assert!(validate_trace(&bad).unwrap_err().message.contains("stage"));
        let bad = GOOD.replace("\"counter\":\"cache_miss\"", "\"counter\":\"frobs\"");
        assert!(validate_trace(&bad)
            .unwrap_err()
            .message
            .contains("counter"));
    }

    #[test]
    fn rejects_broken_nesting_and_unclosed_spans() {
        // Close the run while the select stage is still open.
        let broken = concat!(
            "{\"v\":1,\"seq\":0,\"t_ns\":0,\"kind\":\"run_begin\",\"label\":\"r\",\"dataset\":\"d\",\"model\":\"m\",\"queries\":1,\"seed\":0}\n",
            "{\"v\":1,\"seq\":1,\"t_ns\":10,\"kind\":\"stage_begin\",\"iter\":0,\"stage\":\"select\"}\n",
            "{\"v\":1,\"seq\":2,\"t_ns\":20,\"kind\":\"run_end\",\"dur_ns\":20,\"iterations\":0,\"failed\":0,\"lfs\":0}\n",
        );
        let e = validate_trace(broken).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("innermost"), "{}", e.message);

        let lines: Vec<&str> = GOOD.lines().collect();
        let unclosed = [lines[0], lines[1]].join("\n");
        let e = validate_trace(&unclosed).unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("unclosed"));
    }

    #[test]
    fn rejects_missing_required_field_and_wrong_type() {
        let bad = GOOD.replace(",\"instance\":42", "");
        assert!(validate_trace(&bad)
            .unwrap_err()
            .message
            .contains("instance"));
        let bad = GOOD.replace("\"failed\":false", "\"failed\":0");
        assert!(validate_trace(&bad)
            .unwrap_err()
            .message
            .contains("boolean"));
    }

    #[test]
    fn rejects_dur_ns_misuse() {
        let bad = GOOD.replace(",\"dur_ns\":90", "");
        assert!(validate_trace(&bad).unwrap_err().message.contains("dur_ns"));
        let bad = GOOD.replace(
            "\"kind\":\"iter_begin\",",
            "\"kind\":\"iter_begin\",\"dur_ns\":1,",
        );
        assert!(validate_trace(&bad)
            .unwrap_err()
            .message
            .contains("must not carry dur_ns"));
    }

    #[test]
    fn parser_round_trips_escapes() {
        let fields =
            parse_object("{\"text\":\"a\\\"b\\\\c\\nd\\u0041\",\"n\":12,\"ok\":true}").unwrap();
        assert_eq!(fields[0].1, JsonValue::Str("a\"b\\c\ndA".into()));
        assert_eq!(fields[1].1, JsonValue::UInt(12));
        assert_eq!(fields[2].1, JsonValue::Bool(true));
    }

    #[test]
    fn parser_rejects_nested_and_trailing_content() {
        assert!(parse_object("{\"a\":{}}").is_err());
        assert!(parse_object("{\"a\":1} extra").is_err());
        assert!(parse_object("{\"a\":-1}").is_err());
    }
}
