//! The single nano-USD → USD display boundary.
//!
//! All cost *accounting* in the workspace is exact integer nano-USD (see
//! `datasculpt-llm::pricing` and ds-lint's `lossy-cast` rule). Rendering a
//! cost as a floating-point dollar amount is inherently lossy, so that
//! conversion lives in exactly one place — here — and every display site
//! (ledger totals, pricing helpers, the Figure 4 binary, the metrics
//! table) goes through it.

/// Nano-USD per USD.
pub const NANO_PER_USD: f64 = 1e9;

/// Convert an exact nano-USD amount to a display USD value.
///
/// Exact below ~$9M (2^53 nano-USD); display-only by contract.
pub fn nanousd_to_usd(nanousd: u128) -> f64 {
    // ds-lint: allow(lossy-cast): the one sanctioned display-boundary cast
    nanousd as f64 / NANO_PER_USD
}

/// Render an exact nano-USD amount as `$x.xxxx`.
pub fn format_usd(nanousd: u128) -> String {
    format!("${:.4}", nanousd_to_usd(nanousd))
}

/// Render a nanosecond duration in a human unit (ns/µs/ms/s).
pub fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        // ds-lint: allow(lossy-cast): display boundary
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        // ds-lint: allow(lossy-cast): display boundary
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        // ds-lint: allow(lossy-cast): display boundary
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_is_exact_for_small_amounts() {
        assert_eq!(nanousd_to_usd(0), 0.0);
        assert_eq!(nanousd_to_usd(1_500_000_000), 1.5);
        assert_eq!(format_usd(12_345_000_000), "$12.3450");
    }

    #[test]
    fn durations_pick_the_right_unit() {
        assert_eq!(format_ns(999), "999ns");
        assert_eq!(format_ns(1_500), "1.5µs");
        assert_eq!(format_ns(2_500_000), "2.5ms");
        assert_eq!(format_ns(3_210_000_000), "3.21s");
    }
}
