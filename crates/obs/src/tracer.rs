//! The timing layer: stamps events, matches spans, fans out to sinks.

use crate::clock::Clock;
use crate::event::{Event, Stage};

/// One stamped event as delivered to a [`TraceSink`].
#[derive(Debug, Clone, Copy)]
pub struct Record<'a> {
    /// 0-based position in the trace (strictly increasing).
    pub seq: u64,
    /// Clock reading when the event was observed (monotone).
    pub t_ns: u64,
    /// For `run_end` / `iter_end` / `stage_end`: nanoseconds since the
    /// matching begin event. `None` for non-span events.
    pub dur_ns: Option<u64>,
    /// The event itself.
    pub event: &'a Event,
}

/// Consumes stamped records (a serializer, an aggregator, …).
pub trait TraceSink {
    /// Handle one record.
    fn record(&mut self, record: &Record<'_>);

    /// Flush/close any underlying resources. Called once, after the run.
    fn finish(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Identity of an open span, for matching end events to their begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpanKey {
    Run,
    Iteration(u64),
    Stage(u64, Stage),
}

/// Stamps each incoming [`Event`] with a sequence number and a clock
/// reading, computes span durations by matching begin/end pairs, and
/// forwards the resulting [`Record`] to every attached [`TraceSink`].
///
/// The clock is injected: [`SystemClock`](crate::SystemClock) for real
/// runs, [`ManualClock`](crate::ManualClock) for deterministic tests and
/// golden traces.
///
/// Clock and sinks are `Send` so a tracer can live behind a
/// [`SharedObserver`](crate::SharedObserver) that worker threads emit
/// into; sequence numbers are assigned under that handle's lock, so `seq`
/// stays strictly sequential even under concurrent emission.
pub struct Tracer {
    clock: Box<dyn Clock + Send>,
    sinks: Vec<Box<dyn TraceSink + Send>>,
    seq: u64,
    open: Vec<(SpanKey, u64)>,
}

impl Tracer {
    /// A tracer with no sinks (attach them with [`add_sink`](Self::add_sink)).
    pub fn new(clock: Box<dyn Clock + Send>) -> Self {
        Tracer {
            clock,
            sinks: Vec::new(),
            seq: 0,
            open: Vec::new(),
        }
    }

    /// Attach a sink.
    pub fn add_sink(&mut self, sink: Box<dyn TraceSink + Send>) {
        self.sinks.push(sink);
    }

    /// Builder form of [`add_sink`](Self::add_sink).
    pub fn with_sink(mut self, sink: Box<dyn TraceSink + Send>) -> Self {
        self.add_sink(sink);
        self
    }

    /// Events observed so far.
    pub fn events(&self) -> u64 {
        self.seq
    }

    /// Close the most recent open span matching `key` and return its begin
    /// time.
    fn close_span(&mut self, key: SpanKey) -> Option<u64> {
        let pos = self.open.iter().rposition(|(k, _)| *k == key)?;
        Some(self.open.remove(pos).1)
    }
}

impl crate::RunObserver for Tracer {
    fn on_event(&mut self, event: &Event) {
        let t_ns = self.clock.now_ns();
        let dur_ns = match event {
            Event::RunBegin { .. } => {
                self.open.push((SpanKey::Run, t_ns));
                None
            }
            Event::IterationBegin { iter, .. } => {
                self.open.push((SpanKey::Iteration(*iter), t_ns));
                None
            }
            Event::StageBegin { iter, stage } => {
                self.open.push((SpanKey::Stage(*iter, *stage), t_ns));
                None
            }
            // An unmatched end (producer bug) gets duration 0 rather than
            // being dropped: the trace stays complete and the validator
            // will flag the broken nesting.
            Event::RunEnd { .. } => Some(
                self.close_span(SpanKey::Run)
                    .map_or(0, |begin| t_ns.saturating_sub(begin)),
            ),
            Event::IterationEnd { iter, .. } => Some(
                self.close_span(SpanKey::Iteration(*iter))
                    .map_or(0, |begin| t_ns.saturating_sub(begin)),
            ),
            Event::StageEnd { iter, stage } => Some(
                self.close_span(SpanKey::Stage(*iter, *stage))
                    .map_or(0, |begin| t_ns.saturating_sub(begin)),
            ),
            Event::Counter { .. } | Event::Usage { .. } | Event::Message { .. } => None,
        };
        let record = Record {
            seq: self.seq,
            t_ns,
            dur_ns,
            event,
        };
        self.seq += 1;
        for sink in &mut self.sinks {
            sink.record(&record);
        }
    }

    fn finish(&mut self) -> std::io::Result<()> {
        let mut first_err = None;
        for sink in &mut self.sinks {
            if let Err(e) = sink.finish() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::RunObserver;
    use std::sync::{Arc, Mutex};

    #[derive(Default)]
    struct Captured(Vec<(u64, u64, Option<u64>, String)>);

    #[derive(Clone, Default)]
    struct CaptureSink(Arc<Mutex<Captured>>);

    impl TraceSink for CaptureSink {
        fn record(&mut self, r: &Record<'_>) {
            self.0
                .lock()
                .unwrap()
                .0
                .push((r.seq, r.t_ns, r.dur_ns, r.event.kind().to_string()));
        }
    }

    #[test]
    fn spans_get_durations_from_the_clock() {
        let cap = CaptureSink::default();
        let mut t = Tracer::new(Box::new(ManualClock::new(100)));
        t.add_sink(Box::new(cap.clone()));
        t.on_event(&Event::StageBegin {
            iter: 0,
            stage: Stage::Select,
        }); // t = 0
        t.on_event(&Event::Counter {
            counter: crate::Counter::CacheHit,
            delta: 1,
        }); // t = 100
        t.on_event(&Event::StageEnd {
            iter: 0,
            stage: Stage::Select,
        }); // t = 200, dur = 200
        let got = cap.0.lock().unwrap();
        assert_eq!(got.0[0], (0, 0, None, "stage_begin".into()));
        assert_eq!(got.0[1], (1, 100, None, "counter".into()));
        assert_eq!(got.0[2], (2, 200, Some(200), "stage_end".into()));
    }

    #[test]
    fn nested_spans_match_innermost_first() {
        let cap = CaptureSink::default();
        let mut t = Tracer::new(Box::new(ManualClock::new(10)));
        t.add_sink(Box::new(cap.clone()));
        t.on_event(&Event::IterationBegin {
            iter: 3,
            instance: 7,
        }); // t=0
        t.on_event(&Event::StageBegin {
            iter: 3,
            stage: Stage::Generate,
        }); // t=10
        t.on_event(&Event::StageEnd {
            iter: 3,
            stage: Stage::Generate,
        }); // t=20 dur=10
        t.on_event(&Event::IterationEnd {
            iter: 3,
            accepted: 0,
            rejected: 0,
            failed: false,
        }); // t=30 dur=30
        let got = cap.0.lock().unwrap();
        assert_eq!(got.0[2].2, Some(10));
        assert_eq!(got.0[3].2, Some(30));
    }

    #[test]
    fn unmatched_end_gets_zero_duration() {
        let cap = CaptureSink::default();
        let mut t = Tracer::new(Box::new(ManualClock::new(10)));
        t.add_sink(Box::new(cap.clone()));
        t.on_event(&Event::StageEnd {
            iter: 9,
            stage: Stage::Revise,
        });
        assert_eq!(cap.0.lock().unwrap().0[0].2, Some(0));
    }
}
