//! Deterministic log-bucketed latency histograms.
//!
//! Buckets are fixed powers of two over integer nanoseconds: bucket `k`
//! covers `[2^(k-1), 2^k - 1]` (bucket 0 holds exactly 0, bucket 64 tops
//! out at `u64::MAX`). The boundaries are a schema constant — they never
//! depend on the data — so two histograms are mergeable bucket-for-bucket
//! and the merge is commutative and associative (it is integer addition
//! per bucket plus min/max/sum folds). Fed by the injectable
//! [`Clock`](crate::Clock), a [`ManualClock`](crate::ManualClock) test
//! pins every count exactly.
//!
//! Serialization ([`to_json`](LatencyHistogram::to_json)) is stable: only
//! non-empty buckets are emitted, keyed by their inclusive upper bound in
//! ascending order, so identical inputs yield identical bytes.

use crate::cost::format_ns;

/// Number of buckets: one for zero plus one per bit width of a `u64`.
pub const BUCKETS: usize = 65;

/// A fixed-boundary, log2-bucketed histogram of `u64` durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

/// Bucket index of a value: 0 for 0, otherwise the value's bit width.
pub fn bucket_index(value_ns: u64) -> usize {
    (u64::BITS - value_ns.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `index` (`2^index - 1`; bucket 0 is
/// exactly 0, bucket 64 is `u64::MAX`).
pub fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= 64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Record one duration.
    pub fn record(&mut self, value_ns: u64) {
        if let Some(b) = self.buckets.get_mut(bucket_index(value_ns)) {
            *b += 1;
        }
        self.count += 1;
        self.sum_ns += u128::from(value_ns);
        self.min_ns = self.min_ns.min(value_ns);
        self.max_ns = self.max_ns.max(value_ns);
    }

    /// Fold another histogram into this one, bucket-for-bucket.
    ///
    /// Commutative and associative: `merge(a, b) == merge(b, a)` for every
    /// bucket, count, sum, min, and max.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations, nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Smallest recorded duration (`None` when empty).
    pub fn min_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_ns)
    }

    /// Largest recorded duration (`None` when empty).
    pub fn max_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_ns)
    }

    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u128 {
        self.sum_ns.checked_div(u128::from(self.count)).unwrap_or(0)
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
    }

    /// Non-empty buckets as `(inclusive upper bound, cumulative count)`,
    /// ascending — the shape a Prometheus exposition needs.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut cum = 0u64;
        self.nonzero_buckets()
            .map(|(upper, c)| {
                cum += c;
                (upper, cum)
            })
            .collect()
    }

    /// Smallest recorded-bucket upper bound that covers at least `q`
    /// (0..=100) percent of the samples — a deterministic, bucket-resolution
    /// quantile estimate. `None` when empty.
    pub fn quantile_upper_ns(&self, q: u8) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let need = (u128::from(self.count) * u128::from(q.min(100))).div_ceil(100);
        let mut cum = 0u128;
        for (upper, c) in self.nonzero_buckets() {
            cum += u128::from(c);
            if cum >= need {
                return Some(upper);
            }
        }
        self.max_ns().map(|_| u64::MAX)
    }

    /// Stable JSON rendering: summary fields plus the non-empty buckets
    /// keyed by inclusive upper bound, ascending.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"buckets\":{{",
            self.count,
            self.sum_ns,
            self.min_ns().unwrap_or(0),
            self.max_ns().unwrap_or(0)
        );
        for (i, (upper, c)) in self.nonzero_buckets().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{upper}\":{c}"));
        }
        out.push_str("}}");
        out
    }

    /// Human-readable bucket rows, one `≤ <bound>  <count>  <bar>` line per
    /// non-empty bucket, for the analyze report.
    pub fn render_rows(&self, indent: &str) -> String {
        let mut out = String::new();
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (upper, c) in self.nonzero_buckets() {
            let bar = "#".repeat(((c * 24).div_ceil(peak)) as usize);
            out.push_str(&format!(
                "{indent}<= {:>9} {:>8}  {bar}\n",
                format_ns(upper),
                c
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_fixed_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value falls inside its bucket's range.
        for v in [0u64, 1, 2, 3, 7, 8, 1_000_000, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i));
            if i > 0 {
                assert!(v > bucket_upper(i - 1));
            }
        }
    }

    #[test]
    fn records_aggregate_exactly() {
        let mut h = LatencyHistogram::new();
        for v in [0, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_ns(), 106);
        assert_eq!(h.min_ns(), Some(0));
        assert_eq!(h.max_ns(), Some(100));
        assert_eq!(h.mean_ns(), 21);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (3, 2), (127, 1)]);
        assert_eq!(
            h.cumulative_buckets(),
            vec![(0, 1), (1, 2), (3, 4), (127, 5)]
        );
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        let mut h = LatencyHistogram::new();
        for v in [1, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(v);
        }
        assert_eq!(h.quantile_upper_ns(50), Some(1));
        assert_eq!(h.quantile_upper_ns(90), Some(1));
        assert_eq!(h.quantile_upper_ns(100), Some(1023));
        assert_eq!(LatencyHistogram::new().quantile_upper_ns(50), None);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for v in [1u64, 5, 5, 1 << 20] {
            a.record(v);
        }
        for v in [0u64, 3, u64::MAX] {
            b.record(v);
        }
        for v in [7u64, 7, 7, 9000] {
            c.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative bucket-for-bucket");

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must be associative bucket-for-bucket");
        assert_eq!(ab_c.count(), 11);
    }

    #[test]
    fn json_is_stable_and_sparse() {
        let mut h = LatencyHistogram::new();
        h.record(2);
        h.record(3);
        h.record(900);
        assert_eq!(
            h.to_json(),
            concat!(
                "{\"count\":3,\"sum_ns\":905,\"min_ns\":2,\"max_ns\":900,",
                "\"buckets\":{\"3\":2,\"1023\":1}}"
            )
        );
        assert_eq!(
            LatencyHistogram::new().to_json(),
            "{\"count\":0,\"sum_ns\":0,\"min_ns\":0,\"max_ns\":0,\"buckets\":{}}"
        );
    }

    #[test]
    fn render_rows_lists_nonzero_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(10);
        h.record(12);
        let rows = h.render_rows("  ");
        assert_eq!(rows.lines().count(), 1);
        assert!(rows.contains("15ns"));
        assert!(rows.contains('#'));
    }
}
