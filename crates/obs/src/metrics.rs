//! In-memory metrics aggregation: per-stage latency/count, counters,
//! per-model token/cost totals.
//!
//! [`MetricsRecorder`] is a cheaply-cloneable handle (all clones share one
//! accumulator), so a composition root can attach it to a
//! [`Tracer`](crate::Tracer) as a sink *and* keep a handle to render the
//! summary after the run.

use crate::cost::{format_ns, format_usd};
use crate::event::Event;
use crate::hist::LatencyHistogram;
use crate::tracer::{Record, TraceSink};
use crate::TRACE_SCHEMA_VERSION;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Aggregates for one stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageMetrics {
    /// Completed spans.
    pub count: u64,
    /// Total duration across spans, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

impl StageMetrics {
    /// Mean span duration in nanoseconds (0 when no spans completed).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Aggregates for one model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelMetrics {
    /// Usage events recorded.
    pub calls: u64,
    /// Prompt tokens billed.
    pub prompt_tokens: u64,
    /// Completion tokens billed.
    pub completion_tokens: u64,
    /// Exact cost in nano-USD.
    pub cost_nanousd: u128,
}

/// A point-in-time copy of everything a [`MetricsRecorder`] has seen.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Per-stage span aggregates, keyed by stage wire name.
    pub stages: BTreeMap<&'static str, StageMetrics>,
    /// Counter totals, keyed by counter wire name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Per-model usage, keyed by model API name.
    pub models: BTreeMap<String, ModelMetrics>,
    /// Iterations completed (`iter_end` events).
    pub iterations: u64,
    /// Iterations that failed.
    pub failed_iterations: u64,
    /// Total events recorded.
    pub events: u64,
    /// Latency histogram per span kind (`run`, `iteration`, stage names).
    pub span_hists: BTreeMap<String, LatencyHistogram>,
    /// Latency histogram per model: the duration of the innermost span
    /// enclosing each billed call.
    pub model_call_hists: BTreeMap<String, LatencyHistogram>,
}

impl MetricsSnapshot {
    /// Total cost across models, exact nano-USD.
    pub fn total_cost_nanousd(&self) -> u128 {
        self.models.values().map(|m| m.cost_nanousd).sum()
    }

    /// Total tokens across models.
    pub fn total_tokens(&self) -> u64 {
        self.models
            .values()
            .map(|m| m.prompt_tokens + m.completion_tokens)
            .sum()
    }

    /// Render the per-stage / counter / usage summary as an aligned text
    /// table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>7} {:>10} {:>10} {:>10}\n",
            "stage", "count", "total", "mean", "max"
        ));
        for (name, s) in &self.stages {
            out.push_str(&format!(
                "{:<12} {:>7} {:>10} {:>10} {:>10}\n",
                name,
                s.count,
                format_ns(s.total_ns),
                format_ns(s.mean_ns()),
                format_ns(s.max_ns)
            ));
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<24} {:>10}\n", "counter", "value"));
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<24} {v:>10}\n"));
            }
        }
        if !self.models.is_empty() {
            out.push_str(&format!(
                "{:<24} {:>7} {:>10} {:>11} {:>10}\n",
                "model", "calls", "prompt", "completion", "cost"
            ));
            for (name, m) in &self.models {
                out.push_str(&format!(
                    "{:<24} {:>7} {:>10} {:>11} {:>10}\n",
                    name,
                    m.calls,
                    m.prompt_tokens,
                    m.completion_tokens,
                    format_usd(m.cost_nanousd)
                ));
            }
        }
        out.push_str(&format!(
            "iterations: {} ({} failed), events: {}\n",
            self.iterations, self.failed_iterations, self.events
        ));
        out
    }

    /// Render the snapshot as one stable-ordered JSON object (the metrics
    /// file dropped by bench binaries).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"v\":{TRACE_SCHEMA_VERSION},\"stages\":{{");
        for (i, (name, s)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
                s.count, s.total_ns, s.max_ns
            ));
        }
        out.push_str("},\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str("},\"models\":{");
        for (i, (name, m)) in self.models.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"calls\":{},\"prompt_tokens\":{},\"completion_tokens\":{},\"cost_nanousd\":{}}}",
                crate::jsonl::escape_json(name),
                m.calls,
                m.prompt_tokens,
                m.completion_tokens,
                m.cost_nanousd
            ));
        }
        out.push_str("},\"span_hists\":{");
        for (i, (name, h)) in self.span_hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{}",
                crate::jsonl::escape_json(name),
                h.to_json()
            ));
        }
        out.push_str("},\"model_call_hists\":{");
        for (i, (name, h)) in self.model_call_hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{}",
                crate::jsonl::escape_json(name),
                h.to_json()
            ));
        }
        out.push_str(&format!(
            "}},\"iterations\":{},\"failed_iterations\":{},\"events\":{}}}",
            self.iterations, self.failed_iterations, self.events
        ));
        out
    }
}

/// Shared recorder state: the snapshot being built plus the span stack
/// used to attribute each `usage` event to the innermost open span (model
/// calls carry no span of their own in the v1 schema, so their latency is
/// the duration of the span they run under — typically `generate`).
#[derive(Debug, Default)]
struct RecorderState {
    snapshot: MetricsSnapshot,
    /// Usage-event models pending per open span, innermost last; drained
    /// into `model_call_hists` when the span closes.
    pending_models: Vec<Vec<String>>,
}

/// A [`TraceSink`] that aggregates records in memory. Clones share the
/// accumulator, and the handle is `Send`, so one clone can sit inside a
/// worker-side tracer while another renders the summary afterwards.
#[derive(Clone, Default)]
pub struct MetricsRecorder {
    inner: Arc<Mutex<RecorderState>>,
}

impl MetricsRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        MetricsRecorder::default()
    }

    /// Copy out everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.lock().snapshot.clone()
    }

    /// Lock the shared accumulator, ignoring poisoning: a panicking
    /// recorder thread must not lose the metrics gathered so far.
    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderState> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Shorthand: render the summary table of the current snapshot.
    pub fn render_table(&self) -> String {
        self.snapshot().render_table()
    }

    /// Shorthand: render the current snapshot as JSON.
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

impl std::fmt::Debug for MetricsRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MetricsRecorder")
    }
}

impl RecorderState {
    /// A span closed with duration `dur`: sample the span-kind histogram
    /// and attribute any usage events it enclosed to the model-call
    /// histograms.
    fn close_span(&mut self, label: &str, dur: u64) {
        self.snapshot
            .span_hists
            .entry(label.to_string())
            .or_default()
            .record(dur);
        if let Some(pending) = self.pending_models.pop() {
            for model in pending {
                self.snapshot
                    .model_call_hists
                    .entry(model)
                    .or_default()
                    .record(dur);
            }
        }
    }
}

impl TraceSink for MetricsRecorder {
    fn record(&mut self, record: &Record<'_>) {
        let mut state = self.lock();
        state.snapshot.events += 1;
        match record.event {
            Event::RunBegin { .. } | Event::IterationBegin { .. } | Event::StageBegin { .. } => {
                state.pending_models.push(Vec::new());
            }
            Event::RunEnd { .. } => {
                state.close_span(crate::spantree::RUN_LABEL, record.dur_ns.unwrap_or(0));
            }
            Event::StageEnd { stage, .. } => {
                let dur = record.dur_ns.unwrap_or(0);
                let s = state.snapshot.stages.entry(stage.name()).or_default();
                s.count += 1;
                s.total_ns += dur;
                s.max_ns = s.max_ns.max(dur);
                state.close_span(stage.name(), dur);
            }
            Event::IterationEnd { failed, .. } => {
                state.snapshot.iterations += 1;
                if *failed {
                    state.snapshot.failed_iterations += 1;
                }
                state.close_span(crate::spantree::ITERATION_LABEL, record.dur_ns.unwrap_or(0));
            }
            Event::Counter { counter, delta } => {
                *state.snapshot.counters.entry(counter.name()).or_default() += delta;
            }
            Event::Usage {
                model,
                prompt_tokens,
                completion_tokens,
                cost_nanousd,
            } => {
                let u = state.snapshot.models.entry(model.clone()).or_default();
                u.calls += 1;
                u.prompt_tokens += prompt_tokens;
                u.completion_tokens += completion_tokens;
                u.cost_nanousd += cost_nanousd;
                if let Some(pending) = state.pending_models.last_mut() {
                    pending.push(model.clone());
                }
            }
            Event::Message { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Counter, Stage};
    use crate::{ManualClock, RunObserver, Tracer};

    fn traced(events: &[Event]) -> MetricsRecorder {
        let metrics = MetricsRecorder::new();
        let mut tracer = Tracer::new(Box::new(ManualClock::new(1_000)));
        tracer.add_sink(Box::new(metrics.clone()));
        for e in events {
            tracer.on_event(e);
        }
        metrics
    }

    #[test]
    fn aggregates_stages_counters_and_usage() {
        let m = traced(&[
            Event::StageBegin {
                iter: 0,
                stage: Stage::Generate,
            },
            Event::StageEnd {
                iter: 0,
                stage: Stage::Generate,
            },
            Event::StageBegin {
                iter: 1,
                stage: Stage::Generate,
            },
            Event::Counter {
                counter: Counter::CacheHit,
                delta: 3,
            },
            Event::StageEnd {
                iter: 1,
                stage: Stage::Generate,
            },
            Event::Usage {
                model: "gpt-3.5-turbo-0613".into(),
                prompt_tokens: 100,
                completion_tokens: 20,
                cost_nanousd: 190_000,
            },
            Event::Usage {
                model: "gpt-3.5-turbo-0613".into(),
                prompt_tokens: 50,
                completion_tokens: 10,
                cost_nanousd: 95_000,
            },
            Event::IterationEnd {
                iter: 0,
                accepted: 2,
                rejected: 1,
                failed: false,
            },
        ]);
        let s = m.snapshot();
        let gen = s.stages["generate"];
        assert_eq!(gen.count, 2);
        assert_eq!(gen.total_ns, 1_000 + 2_000);
        assert_eq!(gen.max_ns, 2_000);
        assert_eq!(gen.mean_ns(), 1_500);
        assert_eq!(s.counters["cache_hit"], 3);
        let model = &s.models["gpt-3.5-turbo-0613"];
        assert_eq!(model.calls, 2);
        assert_eq!(model.prompt_tokens, 150);
        assert_eq!(s.total_cost_nanousd(), 285_000);
        assert_eq!(s.total_tokens(), 180);
        assert_eq!(s.iterations, 1);
        assert_eq!(s.failed_iterations, 0);
    }

    #[test]
    fn table_and_json_render_stably() {
        let m = traced(&[
            Event::StageBegin {
                iter: 0,
                stage: Stage::Select,
            },
            Event::StageEnd {
                iter: 0,
                stage: Stage::Select,
            },
            Event::Counter {
                counter: Counter::LfAccepted,
                delta: 4,
            },
        ]);
        let table = m.render_table();
        assert!(table.contains("select"));
        assert!(table.contains("lf_accepted"));
        let json = m.to_json();
        assert!(json.starts_with("{\"v\":1,\"stages\":{\"select\":{\"count\":1,"));
        assert!(json.contains("\"counters\":{\"lf_accepted\":4}"));
        assert!(json.ends_with("\"iterations\":0,\"failed_iterations\":0,\"events\":3}"));
    }

    #[test]
    fn clones_share_one_accumulator() {
        let a = MetricsRecorder::new();
        let mut b = a.clone();
        b.record(&Record {
            seq: 0,
            t_ns: 0,
            dur_ns: None,
            event: &Event::Counter {
                counter: Counter::Retry,
                delta: 1,
            },
        });
        assert_eq!(a.snapshot().counters["retry"], 1);
    }
}
