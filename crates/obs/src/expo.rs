//! Prometheus-style text exposition (version 0.0.4) over a
//! [`MetricsSnapshot`].
//!
//! The snapshot's maps are all `BTreeMap`s, so the rendered page is
//! stably ordered: identical snapshots produce identical bytes, which
//! keeps the exposition diffable and golden-testable like every other
//! serialization in this crate. Latency histograms render as native
//! Prometheus histograms (cumulative `le` buckets plus `_sum`/`_count`),
//! using the fixed power-of-two bucket bounds from
//! [`hist`](crate::hist).
//!
//! This is the `/metrics` payload for the future serve daemon (ROADMAP
//! item 2); nothing here does I/O — the caller writes the returned
//! string wherever it likes.

use crate::hist::LatencyHistogram;
use crate::metrics::MetricsSnapshot;

/// Escape a Prometheus label value (backslash, quote, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

fn histogram(out: &mut String, name: &str, label: &str, value: &str, h: &LatencyHistogram) {
    let labels = format!("{label}=\"{}\"", escape_label(value));
    for (upper, cumulative) in h.cumulative_buckets() {
        out.push_str(&format!(
            "{name}_bucket{{{labels},le=\"{upper}\"}} {cumulative}\n"
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{{{labels},le=\"+Inf\"}} {}\n",
        h.count()
    ));
    out.push_str(&format!("{name}_sum{{{labels}}} {}\n", h.sum_ns()));
    out.push_str(&format!("{name}_count{{{labels}}} {}\n", h.count()));
}

/// Render the snapshot as a Prometheus text-format page. Stable order:
/// byte-identical output for identical snapshots.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();

    if !snapshot.stages.is_empty() {
        header(
            &mut out,
            "datasculpt_stage_duration_ns_total",
            "Total nanoseconds spent per pipeline stage",
            "counter",
        );
        for (name, s) in &snapshot.stages {
            out.push_str(&format!(
                "datasculpt_stage_duration_ns_total{{stage=\"{}\"}} {}\n",
                escape_label(name),
                s.total_ns
            ));
        }
        header(
            &mut out,
            "datasculpt_stage_spans_total",
            "Completed spans per pipeline stage",
            "counter",
        );
        for (name, s) in &snapshot.stages {
            out.push_str(&format!(
                "datasculpt_stage_spans_total{{stage=\"{}\"}} {}\n",
                escape_label(name),
                s.count
            ));
        }
    }

    if !snapshot.counters.is_empty() {
        header(
            &mut out,
            "datasculpt_counter_total",
            "Pipeline event counters",
            "counter",
        );
        for (name, v) in &snapshot.counters {
            out.push_str(&format!(
                "datasculpt_counter_total{{counter=\"{}\"}} {v}\n",
                escape_label(name)
            ));
        }
    }

    if !snapshot.models.is_empty() {
        header(
            &mut out,
            "datasculpt_model_calls_total",
            "Billed model calls per backend model",
            "counter",
        );
        for (name, m) in &snapshot.models {
            out.push_str(&format!(
                "datasculpt_model_calls_total{{model=\"{}\"}} {}\n",
                escape_label(name),
                m.calls
            ));
        }
        header(
            &mut out,
            "datasculpt_model_tokens_total",
            "Billed tokens per backend model and direction",
            "counter",
        );
        for (name, m) in &snapshot.models {
            let model = escape_label(name);
            out.push_str(&format!(
                "datasculpt_model_tokens_total{{model=\"{model}\",direction=\"prompt\"}} {}\n",
                m.prompt_tokens
            ));
            out.push_str(&format!(
                "datasculpt_model_tokens_total{{model=\"{model}\",direction=\"completion\"}} {}\n",
                m.completion_tokens
            ));
        }
        header(
            &mut out,
            "datasculpt_model_cost_nanousd_total",
            "Exact cost per backend model in nano-USD",
            "counter",
        );
        for (name, m) in &snapshot.models {
            out.push_str(&format!(
                "datasculpt_model_cost_nanousd_total{{model=\"{}\"}} {}\n",
                escape_label(name),
                m.cost_nanousd
            ));
        }
    }

    if !snapshot.span_hists.is_empty() {
        header(
            &mut out,
            "datasculpt_span_duration_ns",
            "Span duration per span kind, log2 nanosecond buckets",
            "histogram",
        );
        for (name, h) in &snapshot.span_hists {
            histogram(&mut out, "datasculpt_span_duration_ns", "span", name, h);
        }
    }
    if !snapshot.model_call_hists.is_empty() {
        header(
            &mut out,
            "datasculpt_model_call_duration_ns",
            "Innermost enclosing span duration per billed model call",
            "histogram",
        );
        for (name, h) in &snapshot.model_call_hists {
            histogram(
                &mut out,
                "datasculpt_model_call_duration_ns",
                "model",
                name,
                h,
            );
        }
    }

    header(
        &mut out,
        "datasculpt_iterations_total",
        "Iterations completed",
        "counter",
    );
    out.push_str(&format!(
        "datasculpt_iterations_total {}\n",
        snapshot.iterations
    ));
    header(
        &mut out,
        "datasculpt_failed_iterations_total",
        "Iterations that failed",
        "counter",
    );
    out.push_str(&format!(
        "datasculpt_failed_iterations_total {}\n",
        snapshot.failed_iterations
    ));
    header(
        &mut out,
        "datasculpt_events_total",
        "Observer events recorded",
        "counter",
    );
    out.push_str(&format!("datasculpt_events_total {}\n", snapshot.events));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Counter, Event, Stage};
    use crate::{ManualClock, MetricsRecorder, RunObserver, Tracer};

    fn snapshot() -> MetricsSnapshot {
        let metrics = MetricsRecorder::new();
        let mut tracer = Tracer::new(Box::new(ManualClock::new(1_000)));
        tracer.add_sink(Box::new(metrics.clone()));
        for e in [
            Event::StageBegin {
                iter: 0,
                stage: Stage::Generate,
            },
            Event::Usage {
                model: "si\"m".into(),
                prompt_tokens: 10,
                completion_tokens: 2,
                cost_nanousd: 5_000,
            },
            Event::StageEnd {
                iter: 0,
                stage: Stage::Generate,
            },
            Event::Counter {
                counter: Counter::CacheHit,
                delta: 3,
            },
        ] {
            tracer.on_event(&e);
        }
        metrics.snapshot()
    }

    #[test]
    fn renders_stable_prometheus_text() {
        let s = snapshot();
        let a = render_prometheus(&s);
        let b = render_prometheus(&s);
        assert_eq!(a, b, "identical snapshots must render identical bytes");
        assert!(a.contains("# TYPE datasculpt_stage_duration_ns_total counter"));
        assert!(a.contains("datasculpt_stage_duration_ns_total{stage=\"generate\"} 2000\n"));
        assert!(a.contains("datasculpt_counter_total{counter=\"cache_hit\"} 3\n"));
        assert!(a.contains("datasculpt_events_total 4\n"));
    }

    #[test]
    fn histograms_render_cumulative_buckets_with_inf() {
        let a = render_prometheus(&snapshot());
        // The generate span took 2000ns (two ticks of 1000): bucket upper
        // bound 2047, cumulative count 1, then +Inf.
        assert!(a.contains("datasculpt_span_duration_ns_bucket{span=\"generate\",le=\"2047\"} 1\n"));
        assert!(a.contains("datasculpt_span_duration_ns_bucket{span=\"generate\",le=\"+Inf\"} 1\n"));
        assert!(a.contains("datasculpt_span_duration_ns_sum{span=\"generate\"} 2000\n"));
        assert!(a.contains("datasculpt_span_duration_ns_count{span=\"generate\"} 1\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let a = render_prometheus(&snapshot());
        assert!(a.contains("datasculpt_model_calls_total{model=\"si\\\"m\"} 1\n"));
        assert!(a.contains(
            "datasculpt_model_tokens_total{model=\"si\\\"m\",direction=\"prompt\"} 10\n"
        ));
    }
}
