//! Span-tree reconstruction: from a v1 JSONL trace (or a live run) to a
//! hierarchical self/total-time and nano-USD attribution tree.
//!
//! The trace is a strictly-nested span stream (`docs/trace-schema.md`), so
//! replaying it against a stack rebuilds the call tree exactly. Spans with
//! the same label under the same parent aggregate into one node — the tree
//! answers "where did the time and money go per *kind* of work", not "what
//! did iteration 17 do". Every `usage` event is attributed to the
//! innermost open span at its position, so the tree's total cost equals
//! the run's nano-USD ledger by construction — integer equality, no
//! rounding (pinned by `tests/observability.rs`).
//!
//! Two wrinkles of the schema surface in the tree shape: the `select` span
//! closes before `iter_begin`, so `select` is a child of `run` while the
//! other pipeline stages sit under `iteration`; and a durable run's
//! `restore` span closes before `run_begin`, so `restore` hangs off the
//! synthetic `trace` root next to `run`.
//!
//! [`TraceAnalysis`] also carries per-span-kind and per-model-call latency
//! histograms, counter/usage rollups, and a timing-free structural digest
//! (FNV-1a over every event minus `seq`/`t_ns`/`dur_ns`) used by
//! `trace diff` — two same-seed runs produce the same digest at any thread
//! count and wall-clock speed.

use crate::event::{Counter, Event, Stage};
use crate::hist::LatencyHistogram;
use crate::metrics::{MetricsSnapshot, ModelMetrics, StageMetrics};
use crate::schema::{parse_object, validate_trace, JsonValue, ValidateError};
use crate::tracer::{Record, TraceSink};
use std::collections::BTreeMap;

/// Span-kind label for the run span in trees and histograms.
pub const RUN_LABEL: &str = "run";
/// Span-kind label for iteration spans in trees and histograms.
pub const ITERATION_LABEL: &str = "iteration";
/// Label of the synthetic root that holds `run` and any pre-run spans.
pub const ROOT_LABEL: &str = "trace";

/// One aggregated node of the span tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanNode {
    /// Span-kind label (`run`, `iteration`, or a stage name).
    pub label: String,
    /// Completed spans aggregated into this node.
    pub count: u64,
    /// Summed duration of those spans, nanoseconds.
    pub total_ns: u128,
    /// Nano-USD of `usage` events attributed to exactly this node
    /// (innermost-span attribution; children not included).
    pub cost_nanousd: u128,
    /// `usage` events attributed to exactly this node.
    pub calls: u64,
    /// Child nodes, in first-encounter order (deterministic per trace).
    pub children: Vec<SpanNode>,
}

/// One row of a flattened span tree (see [`SpanNode::flatten`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatSpan {
    /// `;`-joined path from the root, e.g. `trace;run;iteration;generate`.
    pub path: String,
    /// Completed spans aggregated at this path.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: u128,
    /// Exclusive duration: total minus the children's totals.
    pub self_ns: u128,
    /// Nano-USD attributed to exactly this path.
    pub cost_nanousd: u128,
    /// Usage events attributed to exactly this path.
    pub calls: u64,
}

impl SpanNode {
    /// Exclusive time: this node's total minus its children's totals
    /// (saturating — an unmatched end span carries duration 0).
    pub fn self_ns(&self) -> u128 {
        let children: u128 = self.children.iter().map(|c| c.total_ns).sum();
        self.total_ns.saturating_sub(children)
    }

    /// Total nano-USD in this subtree (this node plus all descendants).
    pub fn subtree_cost_nanousd(&self) -> u128 {
        self.cost_nanousd
            + self
                .children
                .iter()
                .map(SpanNode::subtree_cost_nanousd)
                .sum::<u128>()
    }

    /// Total usage events in this subtree.
    pub fn subtree_calls(&self) -> u64 {
        self.calls
            + self
                .children
                .iter()
                .map(SpanNode::subtree_calls)
                .sum::<u64>()
    }

    /// Depth-first flattening into `(path, …)` rows, parent before child.
    pub fn flatten(&self) -> Vec<FlatSpan> {
        let mut out = Vec::new();
        self.flatten_into("", &mut out);
        out
    }

    fn flatten_into(&self, prefix: &str, out: &mut Vec<FlatSpan>) {
        let path = if prefix.is_empty() {
            self.label.clone()
        } else {
            format!("{prefix};{}", self.label)
        };
        out.push(FlatSpan {
            path: path.clone(),
            count: self.count,
            total_ns: self.total_ns,
            self_ns: self.self_ns(),
            cost_nanousd: self.cost_nanousd,
            calls: self.calls,
        });
        for child in &self.children {
            child.flatten_into(&path, out);
        }
    }
}

/// Everything `trace analyze` / `trace diff` / `trace flame` work from:
/// the attribution tree, latency histograms, counter and usage rollups,
/// and a timing-free structural digest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceAnalysis {
    /// Run display label (from `run_begin`; empty if the trace has none).
    pub label: String,
    /// Dataset name (from `run_begin`).
    pub dataset: String,
    /// Backend model API name (from `run_begin`).
    pub model: String,
    /// Configured query budget (from `run_begin`).
    pub queries: u64,
    /// Run seed (from `run_begin`).
    pub seed: u64,
    /// Total events.
    pub events: u64,
    /// Events per kind.
    pub kinds: BTreeMap<String, u64>,
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Per-model usage rollup.
    pub models: BTreeMap<String, ModelMetrics>,
    /// Iterations completed.
    pub iterations: u64,
    /// Iterations that failed.
    pub failed_iterations: u64,
    /// The attribution tree, rooted at the synthetic [`ROOT_LABEL`] node.
    pub root: SpanNode,
    /// Latency histogram per span kind (`run`, `iteration`, stage names).
    pub span_hists: BTreeMap<String, LatencyHistogram>,
    /// Latency histogram per model: the duration of the innermost span
    /// enclosing each billed call (e.g. the `generate` span around a
    /// pipeline LLM call).
    pub model_call_hists: BTreeMap<String, LatencyHistogram>,
    /// FNV-1a 64 over every event's timing-free canonical form (everything
    /// except `seq`, `t_ns`, `dur_ns`). Identical for two runs whose event
    /// streams differ only in timing.
    pub structural_digest: u64,
}

impl TraceAnalysis {
    /// Validate `text` as a v1 JSONL trace and reconstruct its analysis.
    pub fn from_trace(text: &str) -> Result<TraceAnalysis, ValidateError> {
        validate_trace(text)?;
        let mut b = SpanTreeBuilder::new();
        for (idx, raw) in text.lines().enumerate() {
            let fields = parse_object(raw).map_err(|e| ValidateError {
                line: idx + 1,
                message: e,
            })?;
            b.apply_fields(&fields);
        }
        Ok(b.finish())
    }

    /// Total nano-USD across models (equals the tree's subtree cost).
    pub fn total_cost_nanousd(&self) -> u128 {
        self.models.values().map(|m| m.cost_nanousd).sum()
    }

    /// Project onto a [`MetricsSnapshot`] — the shape the Prometheus
    /// exposition ([`render_prometheus`](crate::render_prometheus))
    /// renders — so a stored trace can be served without replaying it.
    /// Stage aggregates are recovered from the span histograms (count,
    /// sum, max are exact histogram fields).
    pub fn to_metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            models: self.models.clone(),
            iterations: self.iterations,
            failed_iterations: self.failed_iterations,
            events: self.events,
            span_hists: self.span_hists.clone(),
            model_call_hists: self.model_call_hists.clone(),
            ..MetricsSnapshot::default()
        };
        for (name, h) in &self.span_hists {
            if let Some(stage) = Stage::parse(name) {
                snap.stages.insert(
                    stage.name(),
                    StageMetrics {
                        count: h.count(),
                        total_ns: u64::try_from(h.sum_ns()).unwrap_or(u64::MAX),
                        max_ns: h.max_ns().unwrap_or(0),
                    },
                );
            }
        }
        for (name, v) in &self.counters {
            if let Some(counter) = Counter::parse(name) {
                snap.counters.insert(counter.name(), *v);
            }
        }
        snap
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Builds a [`TraceAnalysis`] incrementally — either from parsed trace
/// lines ([`TraceAnalysis::from_trace`]) or live, as a [`TraceSink`] on a
/// [`Tracer`](crate::Tracer). The two paths produce identical analyses
/// for the same event stream (pinned by a test below).
#[derive(Debug, Clone)]
pub struct SpanTreeBuilder {
    analysis: TraceAnalysis,
    /// Arena of nodes being aggregated; index 0 is the synthetic root.
    nodes: Vec<ArenaNode>,
    /// Indices of currently open spans, outermost first.
    stack: Vec<usize>,
    /// Models of usage events attributed to each open span, parallel to
    /// `stack` — drained into the model-call histograms at span close.
    pending_models: Vec<Vec<String>>,
    digest: u64,
}

#[derive(Debug, Clone, Default)]
struct ArenaNode {
    label: String,
    count: u64,
    total_ns: u128,
    cost_nanousd: u128,
    calls: u64,
    children: Vec<usize>,
}

impl Default for SpanTreeBuilder {
    fn default() -> Self {
        SpanTreeBuilder::new()
    }
}

impl SpanTreeBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        SpanTreeBuilder {
            analysis: TraceAnalysis::default(),
            nodes: vec![ArenaNode {
                label: ROOT_LABEL.to_string(),
                ..ArenaNode::default()
            }],
            stack: Vec::new(),
            pending_models: Vec::new(),
            digest: FNV_OFFSET,
        }
    }

    /// Finish: materialize the aggregated arena into the final tree.
    pub fn finish(mut self) -> TraceAnalysis {
        self.analysis.structural_digest = self.digest;
        self.analysis.root = build_node(&self.nodes, 0);
        self.analysis.root.total_ns = self.analysis.root.children.iter().map(|c| c.total_ns).sum();
        self.analysis
    }

    /// Fold one event's timing-free canonical form into the digest. The
    /// canonical form is the kind followed by the kind's wire-field values
    /// in schema order — exactly what both the live and parsed paths see.
    fn hash_event(&mut self, canonical: &str) {
        fnv1a(&mut self.digest, canonical.as_bytes());
        fnv1a(&mut self.digest, b"\n");
    }

    fn note_kind(&mut self, kind: &str) {
        self.analysis.events += 1;
        *self.analysis.kinds.entry(kind.to_string()).or_default() += 1;
    }

    fn open(&mut self, label: &str) {
        let parent = self.stack.last().copied().unwrap_or(0);
        let existing = self
            .nodes
            .get(parent)
            .map(|p| p.children.clone())
            .unwrap_or_default()
            .into_iter()
            .find(|&c| self.nodes.get(c).is_some_and(|n| n.label == label));
        let idx = match existing {
            Some(idx) => idx,
            None => {
                let idx = self.nodes.len();
                self.nodes.push(ArenaNode {
                    label: label.to_string(),
                    ..ArenaNode::default()
                });
                if let Some(p) = self.nodes.get_mut(parent) {
                    p.children.push(idx);
                }
                idx
            }
        };
        self.stack.push(idx);
        self.pending_models.push(Vec::new());
    }

    fn close(&mut self, label: &str, dur_ns: u64) {
        self.analysis
            .span_hists
            .entry(label.to_string())
            .or_default()
            .record(dur_ns);
        let (Some(idx), Some(pending)) = (self.stack.pop(), self.pending_models.pop()) else {
            return; // unmatched end: producer bug, nothing to attribute
        };
        if let Some(node) = self.nodes.get_mut(idx) {
            node.count += 1;
            node.total_ns += u128::from(dur_ns);
        }
        for model in pending {
            self.analysis
                .model_call_hists
                .entry(model)
                .or_default()
                .record(dur_ns);
        }
    }

    fn usage(&mut self, model: &str, prompt_tokens: u64, completion_tokens: u64, cost: u128) {
        let m = self.analysis.models.entry(model.to_string()).or_default();
        m.calls += 1;
        m.prompt_tokens += prompt_tokens;
        m.completion_tokens += completion_tokens;
        m.cost_nanousd += cost;
        let idx = self.stack.last().copied().unwrap_or(0);
        if let Some(node) = self.nodes.get_mut(idx) {
            node.cost_nanousd += cost;
            node.calls += 1;
        }
        if let Some(pending) = self.pending_models.last_mut() {
            pending.push(model.to_string());
        }
    }

    /// Apply one parsed trace line (key/value fields in wire order).
    fn apply_fields(&mut self, fields: &[(String, JsonValue)]) {
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let uint = |key: &str| match get(key) {
            Some(JsonValue::UInt(n)) => *n,
            _ => 0,
        };
        let u64of = |key: &str| u64::try_from(uint(key)).unwrap_or(u64::MAX);
        let s = |key: &str| match get(key) {
            Some(JsonValue::Str(v)) => v.as_str(),
            _ => "",
        };
        let kind = s("kind").to_string();

        // Canonical form: kind + non-header, non-dur values in wire order.
        let mut canonical = kind.clone();
        for (k, v) in fields {
            if matches!(k.as_str(), "v" | "seq" | "t_ns" | "kind" | "dur_ns") {
                continue;
            }
            canonical.push('|');
            match v {
                JsonValue::Str(x) => canonical.push_str(x),
                JsonValue::UInt(n) => canonical.push_str(&n.to_string()),
                JsonValue::Bool(b) => canonical.push_str(if *b { "true" } else { "false" }),
            }
        }
        self.hash_event(&canonical);
        self.note_kind(&kind);

        let dur = u64of("dur_ns");
        match kind.as_str() {
            "run_begin" => {
                self.analysis.label = s("label").to_string();
                self.analysis.dataset = s("dataset").to_string();
                self.analysis.model = s("model").to_string();
                self.analysis.queries = u64of("queries");
                self.analysis.seed = u64of("seed");
                self.open(RUN_LABEL);
            }
            "run_end" => self.close(RUN_LABEL, dur),
            "iter_begin" => self.open(ITERATION_LABEL),
            "iter_end" => {
                self.close(ITERATION_LABEL, dur);
                self.analysis.iterations += 1;
                if get("failed") == Some(&JsonValue::Bool(true)) {
                    self.analysis.failed_iterations += 1;
                }
            }
            "stage_begin" => self.open(s("stage")),
            "stage_end" => self.close(s("stage"), dur),
            "counter" => {
                *self
                    .analysis
                    .counters
                    .entry(s("counter").to_string())
                    .or_default() += u64of("delta");
            }
            "usage" => {
                self.usage(
                    s("model"),
                    u64of("prompt_tokens"),
                    u64of("completion_tokens"),
                    uint("cost_nanousd"),
                );
            }
            _ => {}
        }
    }

    /// Apply one live event (the [`TraceSink`] path). Must mirror
    /// [`apply_fields`](Self::apply_fields) exactly — the canonical digest
    /// strings use the same wire-field order as `jsonl::render_line`.
    fn apply_event(&mut self, event: &Event, dur_ns: Option<u64>) {
        let canonical = match event {
            Event::RunBegin {
                label,
                dataset,
                model,
                queries,
                seed,
            } => format!("run_begin|{label}|{dataset}|{model}|{queries}|{seed}"),
            Event::RunEnd {
                iterations,
                failed,
                lfs,
            } => format!("run_end|{iterations}|{failed}|{lfs}"),
            Event::IterationBegin { iter, instance } => {
                format!("iter_begin|{iter}|{instance}")
            }
            Event::IterationEnd {
                iter,
                accepted,
                rejected,
                failed,
            } => format!("iter_end|{iter}|{accepted}|{rejected}|{failed}"),
            Event::StageBegin { iter, stage } => format!("stage_begin|{iter}|{stage}"),
            Event::StageEnd { iter, stage } => format!("stage_end|{iter}|{stage}"),
            Event::Counter { counter, delta } => format!("counter|{counter}|{delta}"),
            Event::Usage {
                model,
                prompt_tokens,
                completion_tokens,
                cost_nanousd,
            } => format!("usage|{model}|{prompt_tokens}|{completion_tokens}|{cost_nanousd}"),
            Event::Message { text } => format!("message|{text}"),
        };
        self.hash_event(&canonical);
        self.note_kind(event.kind());

        let dur = dur_ns.unwrap_or(0);
        match event {
            Event::RunBegin {
                label,
                dataset,
                model,
                queries,
                seed,
            } => {
                self.analysis.label = label.clone();
                self.analysis.dataset = dataset.clone();
                self.analysis.model = model.clone();
                self.analysis.queries = *queries;
                self.analysis.seed = *seed;
                self.open(RUN_LABEL);
            }
            Event::RunEnd { .. } => self.close(RUN_LABEL, dur),
            Event::IterationBegin { .. } => self.open(ITERATION_LABEL),
            Event::IterationEnd { failed, .. } => {
                self.close(ITERATION_LABEL, dur);
                self.analysis.iterations += 1;
                if *failed {
                    self.analysis.failed_iterations += 1;
                }
            }
            Event::StageBegin { stage, .. } => self.open(stage.name()),
            Event::StageEnd { stage, .. } => self.close(stage.name(), dur),
            Event::Counter { counter, delta } => {
                *self
                    .analysis
                    .counters
                    .entry(counter.name().to_string())
                    .or_default() += delta;
            }
            Event::Usage {
                model,
                prompt_tokens,
                completion_tokens,
                cost_nanousd,
            } => self.usage(model, *prompt_tokens, *completion_tokens, *cost_nanousd),
            Event::Message { .. } => {}
        }
    }
}

impl TraceSink for SpanTreeBuilder {
    fn record(&mut self, record: &Record<'_>) {
        self.apply_event(record.event, record.dur_ns);
    }
}

fn build_node(nodes: &[ArenaNode], idx: usize) -> SpanNode {
    let Some(n) = nodes.get(idx) else {
        return SpanNode::default();
    };
    SpanNode {
        label: n.label.clone(),
        count: n.count,
        total_ns: n.total_ns,
        cost_nanousd: n.cost_nanousd,
        calls: n.calls,
        children: n.children.iter().map(|&c| build_node(nodes, c)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Counter, Stage};
    use crate::{ManualClock, RunObserver, Tracer};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::StageBegin {
                iter: 0,
                stage: Stage::Restore,
            },
            Event::StageEnd {
                iter: 0,
                stage: Stage::Restore,
            },
            Event::RunBegin {
                label: "DataSculpt-Base".into(),
                dataset: "youtube".into(),
                model: "sim".into(),
                queries: 2,
                seed: 7,
            },
            Event::StageBegin {
                iter: 0,
                stage: Stage::Select,
            },
            Event::StageEnd {
                iter: 0,
                stage: Stage::Select,
            },
            Event::IterationBegin {
                iter: 0,
                instance: 3,
            },
            Event::StageBegin {
                iter: 0,
                stage: Stage::Generate,
            },
            Event::Usage {
                model: "sim".into(),
                prompt_tokens: 100,
                completion_tokens: 10,
                cost_nanousd: 190_000,
            },
            Event::StageEnd {
                iter: 0,
                stage: Stage::Generate,
            },
            Event::Counter {
                counter: Counter::LfAccepted,
                delta: 2,
            },
            Event::IterationEnd {
                iter: 0,
                accepted: 2,
                rejected: 0,
                failed: false,
            },
            Event::RunEnd {
                iterations: 1,
                failed: 0,
                lfs: 2,
            },
        ]
    }

    fn trace_of(events: &[Event]) -> String {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Buf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Buf::default();
        let mut tracer = Tracer::new(Box::new(ManualClock::new(100)));
        tracer.add_sink(Box::new(crate::JsonlTraceSink::new(buf.clone())));
        for e in events {
            tracer.on_event(e);
        }
        tracer.finish().unwrap();
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn reconstructs_the_documented_tree_shape() {
        let a = TraceAnalysis::from_trace(&trace_of(&sample_events())).unwrap();
        assert_eq!(a.root.label, ROOT_LABEL);
        // restore (pre-run) and run hang off the synthetic root; select is a
        // child of run (it closes before iter_begin); generate sits under
        // iteration.
        let top: Vec<&str> = a.root.children.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(top, vec!["restore", "run"]);
        let run = &a.root.children[1];
        let under_run: Vec<&str> = run.children.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(under_run, vec!["select", "iteration"]);
        let iteration = &run.children[1];
        assert_eq!(iteration.children[0].label, "generate");
        assert_eq!(iteration.count, 1);
        assert_eq!(a.iterations, 1);
        assert_eq!(a.dataset, "youtube");
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn cost_attributes_to_the_innermost_span_and_sums_exactly() {
        let a = TraceAnalysis::from_trace(&trace_of(&sample_events())).unwrap();
        let flat = a.root.flatten();
        let generate = flat.iter().find(|f| f.path.ends_with(";generate")).unwrap();
        assert_eq!(generate.cost_nanousd, 190_000);
        assert_eq!(generate.calls, 1);
        assert_eq!(a.root.subtree_cost_nanousd(), a.total_cost_nanousd());
        assert_eq!(a.total_cost_nanousd(), 190_000);
        // The model-call histogram sampled the generate span's duration.
        assert_eq!(a.model_call_hists["sim"].count(), 1);
        assert_eq!(a.model_call_hists["sim"].sum_ns(), generate.total_ns);
    }

    #[test]
    fn self_time_excludes_children() {
        let a = TraceAnalysis::from_trace(&trace_of(&sample_events())).unwrap();
        let flat = a.root.flatten();
        let run = flat.iter().find(|f| f.path == "trace;run").unwrap();
        let iteration = flat
            .iter()
            .find(|f| f.path == "trace;run;iteration")
            .unwrap();
        let select = flat.iter().find(|f| f.path == "trace;run;select").unwrap();
        assert_eq!(
            run.self_ns,
            run.total_ns - iteration.total_ns - select.total_ns
        );
        assert!(iteration.self_ns < iteration.total_ns);
    }

    #[test]
    fn live_sink_and_trace_parse_agree_exactly() {
        let events = sample_events();
        let parsed = TraceAnalysis::from_trace(&trace_of(&events)).unwrap();

        // Rebuild live through a tracer with the same clock so the records
        // carry identical durations to the serialized trace.
        let probe = LiveProbe(std::sync::Arc::new(std::sync::Mutex::new(
            SpanTreeBuilder::new(),
        )));
        let mut tracer = Tracer::new(Box::new(ManualClock::new(100)));
        tracer.add_sink(Box::new(probe.clone()));
        for e in &events {
            tracer.on_event(e);
        }
        let live = probe.0.lock().unwrap().clone().finish();
        assert_eq!(live, parsed);
        assert_eq!(live.structural_digest, parsed.structural_digest);
    }

    #[derive(Clone)]
    struct LiveProbe(std::sync::Arc<std::sync::Mutex<SpanTreeBuilder>>);

    impl TraceSink for LiveProbe {
        fn record(&mut self, record: &Record<'_>) {
            self.0.lock().unwrap().record(record);
        }
    }

    #[test]
    fn structural_digest_ignores_timing_but_not_structure() {
        let events = sample_events();
        let fast = trace_of(&events); // tick 100
        let a = TraceAnalysis::from_trace(&fast).unwrap();

        // Same events, different clock tick: digest identical.
        let slow = {
            use std::sync::{Arc, Mutex};
            #[derive(Clone, Default)]
            struct Buf(Arc<Mutex<Vec<u8>>>);
            impl std::io::Write for Buf {
                fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                    self.0.lock().unwrap().extend_from_slice(buf);
                    Ok(buf.len())
                }
                fn flush(&mut self) -> std::io::Result<()> {
                    Ok(())
                }
            }
            let buf = Buf::default();
            let mut tracer = Tracer::new(Box::new(ManualClock::new(7_777)));
            tracer.add_sink(Box::new(crate::JsonlTraceSink::new(buf.clone())));
            for e in &events {
                tracer.on_event(e);
            }
            let bytes = buf.0.lock().unwrap().clone();
            String::from_utf8(bytes).unwrap()
        };
        let b = TraceAnalysis::from_trace(&slow).unwrap();
        assert_eq!(a.structural_digest, b.structural_digest);

        // A different counter delta changes the digest.
        let mut changed = sample_events();
        changed[9] = Event::Counter {
            counter: Counter::LfAccepted,
            delta: 3,
        };
        let c = TraceAnalysis::from_trace(&trace_of(&changed)).unwrap();
        assert_ne!(a.structural_digest, c.structural_digest);
    }
}
