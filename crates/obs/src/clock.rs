//! Injectable time sources for span durations.
//!
//! Everything outside this file is wall-clock free: the [`Tracer`]
//! (crate::Tracer) reads time only through the [`Clock`] trait, so tests
//! and golden files run on the fully deterministic [`ManualClock`] while
//! production runs use [`SystemClock`]. This file is the **only** place in
//! the workspace outside `crates/bench` where ds-lint's `wall-clock` rule
//! is waived (see `lint.toml`) — keeping the determinism contract
//! auditable: if a seeded crate wants time, it must take a `Clock`, and the
//! caller decides whether that time is real.

use std::time::Instant;

/// A monotone nanosecond clock.
///
/// `now_ns` takes `&mut self` so deterministic implementations can advance
/// internal state per reading.
pub trait Clock {
    /// Nanoseconds since the clock's origin. Must be monotone
    /// non-decreasing across calls.
    fn now_ns(&mut self) -> u64;
}

/// Monotonic wall-clock time, measured from construction.
#[derive(Debug, Clone)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ns(&mut self) -> u64 {
        // u64 nanoseconds overflow after ~584 years of process uptime.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A deterministic clock for tests and golden traces: every reading
/// advances time by a fixed tick.
#[derive(Debug, Clone)]
pub struct ManualClock {
    now: u64,
    tick: u64,
}

impl ManualClock {
    /// A clock starting at 0 that advances `tick` nanoseconds per reading.
    pub fn new(tick: u64) -> Self {
        ManualClock { now: 0, tick }
    }

    /// Jump to an absolute time (later readings continue ticking from it).
    pub fn set(&mut self, now_ns: u64) {
        self.now = now_ns;
    }

    /// Advance by `delta` nanoseconds without consuming a reading.
    pub fn advance(&mut self, delta_ns: u64) {
        self.now = self.now.saturating_add(delta_ns);
    }
}

impl Clock for ManualClock {
    fn now_ns(&mut self) -> u64 {
        let t = self.now;
        self.now = self.now.saturating_add(self.tick);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_ticks_deterministically() {
        let mut c = ManualClock::new(10);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 10);
        c.advance(5);
        assert_eq!(c.now_ns(), 25);
        c.set(1000);
        assert_eq!(c.now_ns(), 1000);
        assert_eq!(c.now_ns(), 1010);
    }

    #[test]
    fn system_clock_is_monotone() {
        let mut c = SystemClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
