//! Debug harness for label-model convergence: fit the MeTaL model at a few
//! iteration budgets and watch the learned per-LF accuracies settle.
//!
//! All progress output flows through the observer path: one `fit` stage
//! span per budget (timed by the tracer), with the learned accuracies as
//! `message` events rendered by [`StderrProgressSink`]. Run with
//! `DS_TRACE=<path>` to also capture the spans as a JSONL trace.

// Debug harness, not a library: aborting on a bad DS_TRACE path is correct.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::prelude::*;

fn main() {
    let d = DatasetName::Spouse.load_scaled(0, 0.25);
    let lfs = wrench_expert_lfs(&d, 9);
    let mut set = LfSet::new(&d, FilterConfig::validity_only());
    for lf in lfs.iter() {
        set.try_add(lf.clone());
    }
    let vm = set.valid_matrix();

    let metrics = MetricsRecorder::new();
    let mut tracer = Tracer::new(Box::new(SystemClock::new()));
    tracer.add_sink(Box::new(metrics.clone()));
    if let Ok(path) = std::env::var("DS_TRACE") {
        let sink = JsonlTraceSink::to_file(&path).expect("open DS_TRACE file");
        tracer.add_sink(Box::new(sink));
    }
    let mut obs = Multi::new().with(StderrProgressSink::new()).with(tracer);

    for (i, iters) in [1usize, 3, 10, 50].into_iter().enumerate() {
        obs.on_event(&Event::StageBegin {
            iter: i as u64,
            stage: Stage::Fit,
        });
        let mut lm = MetalModel::new()
            .with_class_balance(d.valid.class_distribution(2))
            .with_max_iter(iters);
        lm.fit(vm, 2);
        obs.on_event(&Event::StageEnd {
            iter: i as u64,
            stage: Stage::Fit,
        });
        obs.on_event(&Event::Message {
            text: format!(
                "iters {iters}: alphas {:?}",
                lm.accuracies()
                    .iter()
                    .map(|a| (a * 100.).round() / 100.)
                    .collect::<Vec<f64>>()
            ),
        });
    }
    obs.finish().expect("flush trace sinks");
    println!("{}", metrics.render_table());
}
