use datasculpt::prelude::*;

fn main() {
    let d = DatasetName::Spouse.load_scaled(0, 0.25);
    let lfs = wrench_expert_lfs(&d, 9);
    let mut set = LfSet::new(&d, FilterConfig::validity_only());
    for lf in lfs.iter() {
        set.try_add(lf.clone());
    }
    let vm = set.valid_matrix();
    for iters in [1usize, 3, 10, 50] {
        let mut lm = MetalModel::new()
            .with_class_balance(d.valid.class_distribution(2))
            .with_max_iter(iters);
        lm.fit(&vm, 2);
        println!(
            "iters {iters}: alphas {:?}",
            lm.accuracies()
                .iter()
                .map(|a| (a * 100.).round() / 100.)
                .collect::<Vec<f64>>()
        );
    }
}
