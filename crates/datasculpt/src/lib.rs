//! DataSculpt — cost-efficient label-function design via prompting LLMs.
//!
//! A complete Rust reproduction of *DataSculpt* (Guan, Chen & Koudas,
//! EDBT 2025): an iterative programmatic-weak-supervision framework that
//! prompts an LLM with few-shot examples to synthesize keyword label
//! functions, filters them, and trains a downstream model on the
//! aggregated weak labels.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `datasculpt-core` | the DataSculpt pipeline, LF space, filters, samplers, prompts, evaluation |
//! | [`data`] | `datasculpt-data` | the six synthetic WRENCH-style datasets of Table 1 |
//! | [`llm`] | `datasculpt-llm` | chat-model surface, token/cost accounting, the simulated LLM |
//! | [`labelmodel`] | `datasculpt-labelmodel` | majority vote, MeTaL-style EM model, triplet method |
//! | [`endmodel`] | `datasculpt-endmodel` | softmax regression on soft targets, metrics |
//! | [`baselines`] | `datasculpt-baselines` | WRENCH experts, ScriptoriumWS, PromptedLF |
//! | [`obs`] | `datasculpt-obs` | run tracing: observers, span timing, JSONL trace sink, metrics |
//! | [`store`] | `datasculpt-store` | durable runs: disk response store, checkpoint/resume, crash injection |
//! | [`serve`] | `datasculpt-serve` | multi-tenant labeling service: fair scheduling, exact budget admission control |
//!
//! # Quickstart
//!
//! ```
//! use datasculpt::prelude::*;
//!
//! // A down-scaled Youtube spam dataset (full sizes: Table 1).
//! let dataset = DatasetName::Youtube.load_scaled(42, 0.1);
//!
//! // The simulated GPT-3.5 with knowledge of this corpus's domain.
//! let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), 7);
//!
//! // Run 10 iterations of DataSculpt-Base and evaluate end-to-end.
//! // `run` is fallible: a real backend can error out mid-run.
//! let mut config = DataSculptConfig::base(1);
//! config.num_queries = 10;
//! let run = DataSculpt::new(&dataset, config).run(&mut llm).expect("simulated LLM");
//! let eval = evaluate_lf_set(&dataset, &run.lf_set, &EvalConfig::default());
//!
//! assert!(run.lf_set.len() > 0);
//! assert!(eval.end_metric > 0.0);
//! println!("{} LFs, test accuracy {:.3}, cost ${:.4}",
//!          run.lf_set.len(), eval.end_metric, run.ledger.total_cost_usd());
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub use datasculpt_baselines as baselines;
pub use datasculpt_core as core;
pub use datasculpt_data as data;
pub use datasculpt_endmodel as endmodel;
pub use datasculpt_exec as exec;
pub use datasculpt_labelmodel as labelmodel;
pub use datasculpt_llm as llm;
pub use datasculpt_obs as obs;
pub use datasculpt_serve as serve;
pub use datasculpt_store as store;
pub use datasculpt_text as text;

/// The names most programs need, in one import.
pub mod prelude {
    pub use datasculpt_baselines::{
        promptedlf_run, promptedlf_run_observed, promptedlf_templates, scriptorium_run,
        wrench_expert_lfs, wrench_lf_count,
    };
    pub use datasculpt_core::{
        evaluate_lf_set, AddOutcome, DataSculpt, DataSculptConfig, EndModelKind, EvalConfig,
        FilterConfig, IclStrategy, KeywordLf, LabelModelKind, LfSet, LfStats, PipelineError,
        PromptStyle, PwsEvaluation, RunResult, SamplerKind,
    };
    pub use datasculpt_data::{DatasetName, Instance, Metric, Split, TextDataset};
    pub use datasculpt_endmodel::{SoftmaxRegression, TrainConfig};
    pub use datasculpt_exec::Pool;
    pub use datasculpt_labelmodel::{
        LabelMatrix, LabelModel, MajorityVote, MetalConfig, MetalModel, ProbLabels, TripletModel,
        ABSTAIN,
    };
    pub use datasculpt_llm::{
        CacheStats, CachedModel, ChatModel, ChatRequest, FailingModel, LlmError, ModelId,
        PricingTable, RetryModel, SimulatedLlm, TokenUsage, UsageLedger,
    };
    pub use datasculpt_obs::{
        render_prometheus, Clock, Counter, Event, JsonlTraceSink, LatencyHistogram, ManualClock,
        MetricsRecorder, MetricsSnapshot, Multi, NoopObserver, RunObserver, SharedObserver,
        SpanNode, SpanTreeBuilder, Stage, StderrProgressSink, SystemClock, TraceAnalysis,
        TraceSink, Tracer,
    };
    pub use datasculpt_serve::{
        run_daemon, BudgetGate, Endpoint, JobRequest, JobSpec, JobState, JobStatus, RoundReport,
        ServeConfig, ServeError, Service, TenantBook,
    };
    pub use datasculpt_store::{
        run_durable, run_durable_gated, CheckpointError, CheckpointLog, DiskCachedModel,
        DiskCheckpointer, DurableError, DurableOptions, DurableOutcome, IterationGate, KillAfter,
        KillSwitch, ResponseStore, RunFingerprint, StoreError,
    };
}
