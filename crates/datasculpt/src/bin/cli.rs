//! The `datasculpt` command-line interface.
//!
//! ```text
//! datasculpt inspect  <dataset> [--scale F] [--seed N]
//! datasculpt run      <dataset> [--config base|cot|sc|kate] [--model M]
//!                     [--queries N] [--sampler random|uncertain|seu|coreset]
//!                     [--scale F] [--seed N] [--revise] [--show-lfs N]
//!                     [--threads N] [--trace PATH] [--metrics] [--retries N]
//!                     [--cache N] [--verbose]
//!                     [--store DIR] [--resume DIR] [--checkpoint-every N]
//!                     [--inject-crash-after N]
//! datasculpt baseline <dataset> --system wrench|scriptorium|promptedlf
//!                     [--model M] [--scale F] [--seed N] [--trace PATH] [--metrics]
//! datasculpt trace analyze <path> [--json]
//! datasculpt trace diff <a> <b> [--timing]
//! datasculpt trace flame <path>
//! datasculpt trace expo <path>
//! datasculpt trace check <path>       (alias: datasculpt trace-check)
//! datasculpt serve start  --socket PATH|tcp:PORT --state DIR [--slots N]
//!                         [--checkpoint-every N] [--trace PATH]
//! datasculpt serve submit <dataset> --socket S --tenant T [--budget NANOUSD]
//!                         [--queries N] [--scale F] [--seed N]
//!                         [--config C] [--model M]
//! datasculpt serve status --socket S [--job N]
//! datasculpt serve cancel --socket S --job N
//! datasculpt serve drain  --socket S
//! datasculpt serve ping   --socket S
//! datasculpt models
//! ```
//!
//! Datasets: youtube, sms, imdb, yelp, agnews, spouse.
//! Models: gpt-3.5 (default), gpt-4, llama-7b, llama-13b, llama-70b.
//!
//! Every subcommand validates its full argument vector: unknown flags,
//! missing values, unparseable numbers, and invalid flag combinations
//! (e.g. `--store` with `--resume`, or `--checkpoint-every` without
//! either) are usage errors (exit 2), never silently ignored.
//!
//! Human-readable progress goes through [`StderrProgressSink`]; `--trace`
//! writes the machine-readable JSONL trace (schema: `docs/trace-schema.md`),
//! which the `trace` subcommand family analyzes (see
//! `docs/observability.md`).

use datasculpt::core::eval::evaluate_matrix;
use datasculpt::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("inspect") => inspect(args.get(1..).unwrap_or(&[])),
        Some("run") => run(args.get(1..).unwrap_or(&[])),
        Some("baseline") => baseline(args.get(1..).unwrap_or(&[])),
        Some("trace") => trace_family(args.get(1..).unwrap_or(&[])),
        // Pre-PR-9 spelling of `trace check`, kept as an alias.
        Some("trace-check") => trace_check(args.get(1..).unwrap_or(&[])),
        Some("serve") => serve_family(args.get(1..).unwrap_or(&[])),
        Some("models") => {
            for m in ModelId::ALL {
                let (inp, out) = PricingTable::rates(m);
                println!(
                    "{:<16} {:<22} ${inp:.2}/M in, ${out:.2}/M out",
                    m.label(),
                    m.api_name()
                );
            }
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | None => {
            print!("{}", HELP);
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n\n{HELP}");
            ExitCode::FAILURE
        }
    }
}

const HELP: &str = "\
datasculpt — cost-efficient LF design via prompting LLMs (EDBT 2025 reproduction)

USAGE:
  datasculpt inspect  <dataset> [--scale F] [--seed N]
  datasculpt run      <dataset> [--config base|cot|sc|kate] [--model M]
                      [--queries N] [--sampler random|uncertain|seu|coreset]
                      [--scale F] [--seed N] [--revise] [--show-lfs N]
                      [--threads N] [--trace PATH] [--metrics] [--retries N]
                      [--cache N] [--verbose]
                      [--store DIR] [--resume DIR] [--checkpoint-every N]
                      [--inject-crash-after N]
  datasculpt baseline <dataset> --system wrench|scriptorium|promptedlf
                      [--model M] [--scale F] [--seed N] [--trace PATH] [--metrics]
  datasculpt trace analyze <path> [--json]
  datasculpt trace diff <a> <b> [--timing]
  datasculpt trace flame <path>
  datasculpt trace expo <path>
  datasculpt trace check <path>
  datasculpt serve start  --socket PATH|tcp:PORT --state DIR [--slots N]
                      [--checkpoint-every N] [--trace PATH] [--metrics] [--verbose]
  datasculpt serve submit <dataset> --socket S --tenant T [--budget NANOUSD]
                      [--queries N] [--scale F] [--seed N] [--config C] [--model M]
  datasculpt serve status --socket S [--job N]
  datasculpt serve cancel --socket S --job N
  datasculpt serve drain  --socket S
  datasculpt serve ping   --socket S
  datasculpt models

Datasets: youtube sms imdb yelp agnews spouse.

Execution:
  --threads N    worker threads for vote columns, label model, and LLM
                 batches (default 1; any value yields the same run digest)

Observability:
  --trace PATH   write a JSONL trace of the run (schema: docs/trace-schema.md)
  --metrics      print a per-stage latency/count/cost table after the run
  --retries N    retry transient LLM errors up to N times per call
  --cache N      wrap the model in a response cache with capacity N
  --verbose      per-iteration progress lines on stderr

Trace analytics (docs/observability.md):
  trace analyze  attribution tree (self/total time + exact nano-USD per
                 span), hot paths, latency histograms, counter/usage
                 rollup; --json emits the stable machine-readable form
  trace diff     structural diff of two traces: counters, costs, span
                 tree, digests — empty (exit 0) for two same-seed runs at
                 any thread count; add --timing to also compare durations
  trace flame    folded-stacks export (flamegraph.pl / speedscope input)
  trace expo     Prometheus text exposition of the trace's metrics
  trace check    validate a trace file and print its summary
                 (alias: `datasculpt trace-check`, the pre-PR-9 spelling)

Durability (docs/persistence.md):
  --store DIR            run durably in DIR: every LLM response is persisted
                         before use and each iteration is checkpointed, so a
                         crashed run can be resumed with zero re-billing
                         (--cache is ignored; the disk store subsumes it)
  --resume DIR           like --store, but refuse to start fresh: DIR must
                         already hold a checkpoint from the same config
  --checkpoint-every N   checkpoint every N iterations (default 1)
  --inject-crash-after N crash-injection smoke knob: abort the process after
                         N backend LLM calls

Serving (docs/serving.md):
  serve start    run the multi-tenant labeling daemon: jobs live durably
                 under --state DIR, are scheduled fairly across tenants,
                 and are admission-controlled against exact per-tenant
                 nano-USD budgets; a killed daemon restarted on the same
                 DIR resumes every in-flight job bit-identically
  serve submit   queue a labeling job for --tenant; --budget NANOUSD tops
                 up the tenant's budget (nano-USD, 10^9 per dollar)
  serve status   one JSON line per job (or just --job N)
  serve cancel   request cancellation of a queued or running job
  serve drain    finish all runnable work, report, and shut the daemon down

Flag validation: unknown flags, missing/unparseable values, and invalid
combinations (--store with --resume; --checkpoint-every or
--inject-crash-after without --store/--resume) exit 2 with a usage error.
";

/// Minimal flag parser: `--key value` pairs plus boolean switches.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }

    /// Check the whole argument vector against this command's grammar:
    /// at most `max_positionals` bare arguments, every `--flag` either a
    /// known value flag (consuming the next token) or a known switch.
    /// Misspelled flags, stray arguments, and value flags missing their
    /// value all fail here instead of being silently ignored.
    fn validate(
        &self,
        max_positionals: usize,
        values: &[&str],
        switches: &[&str],
    ) -> Result<(), String> {
        let mut positionals = 0usize;
        let mut i = 0;
        while i < self.args.len() {
            let Some(arg) = self.args.get(i) else { break };
            if arg.starts_with("--") {
                if values.contains(&arg.as_str()) {
                    match self.args.get(i + 1) {
                        Some(v) if !v.starts_with("--") => i += 2,
                        _ => return Err(format!("flag {arg} expects a value")),
                    }
                } else if switches.contains(&arg.as_str()) {
                    i += 1;
                } else {
                    return Err(format!("unknown flag {arg}"));
                }
            } else {
                positionals += 1;
                if positionals > max_positionals {
                    return Err(format!("unexpected argument '{arg}'"));
                }
                i += 1;
            }
        }
        Ok(())
    }

    /// Strict numeric/typed flag: absent → `default`; present with an
    /// unparseable (or missing) value → an error, never a silent default.
    fn parse_strict<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        if !self.has(key) {
            return Ok(default);
        }
        let Some(value) = self.get(key) else {
            return Err(format!("flag {key} expects a value"));
        };
        value
            .parse()
            .map_err(|_| format!("flag {key} has unparseable value '{value}'"))
    }
}

/// A rejected command line: explain, point at --help, exit 2 (distinct
/// from runtime failures, which exit 1).
fn usage_error(message: &str) -> ExitCode {
    eprintln!("usage error: {message}");
    eprintln!("(see `datasculpt --help`)");
    ExitCode::from(2)
}

fn load_dataset(args: &[String]) -> Result<TextDataset, ExitCode> {
    let Some(name) = args.first().and_then(|a| DatasetName::parse(a)) else {
        eprintln!("expected a dataset name (youtube sms imdb yelp agnews spouse)");
        return Err(ExitCode::FAILURE);
    };
    let flags = Flags { args };
    let scale: f64 = match flags.parse_strict("--scale", 1.0) {
        Ok(v) => v,
        Err(m) => return Err(usage_error(&m)),
    };
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(usage_error(&format!("--scale {scale} out of range (0, 1]")));
    }
    let seed: u64 = match flags.parse_strict("--seed", 0) {
        Ok(v) => v,
        Err(m) => return Err(usage_error(&m)),
    };
    Ok(if (scale - 1.0).abs() < 1e-12 {
        name.load(seed)
    } else {
        name.load_scaled(seed, scale)
    })
}

fn parse_model(flags: &Flags) -> Result<ModelId, ExitCode> {
    match flags.get("--model").unwrap_or("gpt-3.5") {
        "gpt-3.5" => Ok(ModelId::Gpt35Turbo),
        "gpt-4" => Ok(ModelId::Gpt4),
        "llama-7b" => Ok(ModelId::Llama2Chat7b),
        "llama-13b" => Ok(ModelId::Llama2Chat13b),
        "llama-70b" => Ok(ModelId::Llama2Chat70b),
        other => Err(usage_error(&format!(
            "unknown model '{other}' (gpt-3.5 gpt-4 llama-7b llama-13b llama-70b)"
        ))),
    }
}

fn inspect(args: &[String]) -> ExitCode {
    let flags = Flags { args };
    if let Err(m) = flags.validate(1, &["--scale", "--seed"], &[]) {
        return usage_error(&m);
    }
    let dataset = match load_dataset(args) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let spec = &dataset.spec;
    println!("dataset:       {} ({})", spec.name, spec.domain);
    println!("task:          {}", spec.task_description);
    println!("classes:       {:?}", spec.class_names);
    println!(
        "splits:        {} train / {} valid / {} test",
        dataset.train.len(),
        dataset.valid.len(),
        dataset.test.len()
    );
    println!("metric:        {}", spec.metric);
    println!("relation task: {}", spec.relation);
    if let Some(dc) = spec.default_class {
        println!(
            "default class: {} ({})",
            dc,
            spec.class_names.get(dc).copied().unwrap_or("?")
        );
    }
    println!(
        "class balance (valid): {:?}",
        dataset
            .valid
            .class_distribution(spec.n_classes())
            .iter()
            .map(|p| (p * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    println!("\nsample instances:");
    for inst in dataset.train.iter().take(3) {
        let label = inst
            .label
            .and_then(|y| spec.class_names.get(y).copied())
            .unwrap_or("<hidden>");
        println!("  [{label:>9}] {}", inst.prompt_text());
    }
    ExitCode::SUCCESS
}

/// The observer stack behind one traced CLI run: human-readable progress
/// on stderr, an in-memory metrics aggregate, and (with `--trace`) a JSONL
/// file sink — all reachable through one shareable handle so the pipeline
/// and the LLM middleware emit into the same trace.
struct Observability {
    shared: SharedObserver,
    metrics: MetricsRecorder,
    want_metrics: bool,
}

impl Observability {
    fn from_flags(flags: &Flags) -> Result<Observability, ExitCode> {
        let metrics = MetricsRecorder::new();
        let mut tracer = Tracer::new(Box::new(SystemClock::new()));
        tracer.add_sink(Box::new(metrics.clone()));
        if let Some(path) = flags.get("--trace") {
            match JsonlTraceSink::to_file(path) {
                Ok(sink) => tracer.add_sink(Box::new(sink)),
                Err(e) => {
                    eprintln!("error: cannot open trace file '{path}': {e}");
                    return Err(ExitCode::FAILURE);
                }
            }
        }
        let multi = Multi::new()
            .with(StderrProgressSink::new().verbose(flags.has("--verbose")))
            .with(tracer);
        Ok(Observability {
            shared: SharedObserver::new(multi),
            metrics,
            want_metrics: flags.has("--metrics"),
        })
    }

    /// Flush the sinks and, with `--metrics`, print the summary table.
    /// Returns `false` if a sink failed to flush.
    fn close(&mut self) -> bool {
        let flushed = match self.shared.finish() {
            Ok(()) => true,
            Err(e) => {
                eprintln!("error: trace sink failed: {e}");
                false
            }
        };
        if self.want_metrics {
            println!("{}", self.metrics.render_table());
        }
        flushed
    }
}

/// Everything `datasculpt run` accepts; anything else is a usage error.
const RUN_VALUE_FLAGS: &[&str] = &[
    "--scale",
    "--seed",
    "--config",
    "--model",
    "--queries",
    "--sampler",
    "--show-lfs",
    "--threads",
    "--trace",
    "--retries",
    "--cache",
    "--store",
    "--resume",
    "--checkpoint-every",
    "--inject-crash-after",
];
const RUN_SWITCHES: &[&str] = &["--revise", "--metrics", "--verbose"];

fn run(args: &[String]) -> ExitCode {
    let flags = Flags { args };
    if let Err(m) = flags.validate(1, RUN_VALUE_FLAGS, RUN_SWITCHES) {
        return usage_error(&m);
    }
    if flags.has("--store") && flags.has("--resume") {
        return usage_error(
            "--store and --resume are mutually exclusive \
             (--store DIR may start fresh; --resume DIR must find an existing checkpoint)",
        );
    }
    let durable = flags.has("--store") || flags.has("--resume");
    if flags.has("--checkpoint-every") && !durable {
        return usage_error("--checkpoint-every requires --store DIR or --resume DIR");
    }
    if flags.has("--inject-crash-after") && !durable {
        return usage_error("--inject-crash-after requires --store DIR or --resume DIR");
    }
    let dataset = match load_dataset(args) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let seed: u64 = match flags.parse_strict("--seed", 0) {
        Ok(v) => v,
        Err(m) => return usage_error(&m),
    };
    let mut config = match flags.get("--config").unwrap_or("base") {
        "base" => DataSculptConfig::base(seed),
        "cot" => DataSculptConfig::cot(seed),
        "sc" => DataSculptConfig::sc(seed),
        "kate" => DataSculptConfig::kate(seed),
        other => return usage_error(&format!("unknown config '{other}' (base|cot|sc|kate)")),
    };
    config.num_queries = match flags.parse_strict("--queries", config.num_queries) {
        Ok(v) => v,
        Err(m) => return usage_error(&m),
    };
    config.sampler = match flags.get("--sampler").unwrap_or("random") {
        "random" => SamplerKind::Random,
        "uncertain" => SamplerKind::Uncertain,
        "seu" => SamplerKind::Seu,
        "coreset" => SamplerKind::CoreSet,
        other => {
            return usage_error(&format!(
                "unknown sampler '{other}' (random|uncertain|seu|coreset)"
            ))
        }
    };
    config.revise_rejected = flags.has("--revise");
    config.threads = match flags.parse_strict("--threads", 1usize) {
        Ok(v) => v.max(1),
        Err(m) => return usage_error(&m),
    };
    let model = match parse_model(&flags) {
        Ok(m) => m,
        Err(code) => return code,
    };

    let mut obs = match Observability::from_flags(&flags) {
        Ok(o) => o,
        Err(code) => return code,
    };
    let sim = SimulatedLlm::new(model, dataset.generative.clone(), seed)
        .with_pool(Pool::new(config.threads));
    let retries: u32 = match flags.parse_strict("--retries", 0) {
        Ok(v) => v,
        Err(m) => return usage_error(&m),
    };
    let retry = RetryModel::new(sim, retries).with_observer(obs.shared.clone());
    if durable {
        return run_durably(&dataset, config, model, seed, retry, &mut obs, &flags);
    }
    let cache: usize = match flags.parse_strict("--cache", 0usize) {
        Ok(v) => v,
        Err(m) => return usage_error(&m),
    };
    if cache > 0 {
        let mut llm = CachedModel::with_capacity(retry, cache).with_observer(obs.shared.clone());
        execute_run(&dataset, config, &mut llm, &mut obs, &flags)
    } else {
        let mut llm = retry;
        execute_run(&dataset, config, &mut llm, &mut obs, &flags)
    }
}

/// The `--store`/`--resume` path: wrap the backend in the disk store and
/// checkpointer (`docs/persistence.md`) and run via the durable runner.
fn run_durably<M: ChatModel>(
    dataset: &TextDataset,
    config: DataSculptConfig,
    model: ModelId,
    seed: u64,
    backend: M,
    obs: &mut Observability,
    flags: &Flags,
) -> ExitCode {
    let resume = flags.get("--resume");
    let dir = match resume.or(flags.get("--store")) {
        Some(dir) => std::path::PathBuf::from(dir),
        None => return ExitCode::FAILURE,
    };
    // Already validated by `run`; default is enough here.
    let scale: f64 = flags.parse_strict("--scale", 1.0).unwrap_or(1.0);
    let fingerprint = RunFingerprint {
        dataset: dataset.spec.name.to_string(),
        dataset_seed: seed,
        scale_bits: scale.to_bits(),
        model: model.api_name().to_string(),
        llm_seed: seed,
        config,
    };
    let checkpoint_every = match flags.parse_strict("--checkpoint-every", 1u64) {
        Ok(v) => v,
        Err(m) => return usage_error(&m),
    };
    let crash_after = match flags.parse_strict::<u64>("--inject-crash-after", 0) {
        Ok(v) => v,
        Err(m) => return usage_error(&m),
    };
    let opts = DurableOptions {
        checkpoint_every,
        kill: None,
        require_existing: resume.is_some(),
    };
    let observer = Some(obs.shared.clone());
    let outcome = if flags.has("--inject-crash-after") {
        let doomed = KillAfter::aborting_process(backend, crash_after);
        run_durable(dataset, &fingerprint, doomed, &dir, &opts, observer)
    } else {
        run_durable(dataset, &fingerprint, backend, &dir, &opts, observer)
    };
    let outcome = match outcome {
        Ok(outcome) => outcome,
        Err(e) => {
            obs.close();
            eprintln!("run aborted: {e}");
            return ExitCode::FAILURE;
        }
    };
    if outcome.recovered {
        println!(
            "resumed:        {} checkpointed iterations verified against the replay",
            outcome.replayed_iterations
        );
    }
    println!(
        "store:          {} hits / {} misses, billed {} this process",
        outcome.store_stats.hits,
        outcome.store_stats.misses,
        datasculpt::obs::cost::format_usd(outcome.billed_nanousd)
    );
    report_run(dataset, config, &outcome.result, obs, flags)
}

fn execute_run<M: ChatModel>(
    dataset: &TextDataset,
    config: DataSculptConfig,
    llm: &mut M,
    obs: &mut Observability,
    flags: &Flags,
) -> ExitCode {
    let mut observer = obs.shared.clone();
    let run = match DataSculpt::new(dataset, config).run_observed(llm, &mut observer) {
        Ok(run) => run,
        Err(e) => {
            obs.close();
            eprintln!("run aborted: {e}");
            return ExitCode::FAILURE;
        }
    };
    report_run(dataset, config, &run, obs, flags)
}

/// Evaluate and print one finished run (shared by the plain and durable
/// paths).
fn report_run(
    dataset: &TextDataset,
    config: DataSculptConfig,
    run: &RunResult,
    obs: &mut Observability,
    flags: &Flags,
) -> ExitCode {
    let eval_config = EvalConfig {
        threads: config.threads,
        ..EvalConfig::default()
    };
    let eval = evaluate_lf_set(dataset, &run.lf_set, &eval_config);

    // Validated up-front by `run`; default is enough here.
    let show: usize = flags.parse_strict("--show-lfs", 5).unwrap_or(5);
    if show > 0 {
        println!("sample LFs:");
        for lf in run.lf_set.lfs().iter().take(show) {
            println!("  {lf}");
        }
    }
    println!("run digest:     {:016x}", run.digest());
    print_eval(&eval, Some(&run.ledger));
    if obs.close() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn baseline(args: &[String]) -> ExitCode {
    let flags = Flags { args };
    if let Err(m) = flags.validate(
        1,
        &["--system", "--model", "--scale", "--seed", "--trace"],
        &["--metrics", "--verbose"],
    ) {
        return usage_error(&m);
    }
    let dataset = match load_dataset(args) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let seed: u64 = match flags.parse_strict("--seed", 0) {
        Ok(v) => v,
        Err(m) => return usage_error(&m),
    };
    let model = match parse_model(&flags) {
        Ok(m) => m,
        Err(code) => return code,
    };
    let Some(name) = DatasetName::parse(dataset.spec.name) else {
        eprintln!("error: unknown dataset '{}'", dataset.spec.name);
        return ExitCode::from(2);
    };
    match flags.get("--system").unwrap_or("wrench") {
        "wrench" => {
            let mut set = LfSet::new(&dataset, FilterConfig::validity_only());
            for lf in wrench_expert_lfs(&dataset, wrench_lf_count(name)) {
                set.try_add(lf);
            }
            print_eval(
                &evaluate_lf_set(&dataset, &set, &EvalConfig::default()),
                None,
            );
        }
        "scriptorium" => {
            let mut llm = SimulatedLlm::new(model, dataset.generative.clone(), seed);
            let result = match scriptorium_run(
                &dataset,
                &mut llm,
                datasculpt::baselines::scriptorium::scriptorium_lf_count(name),
            ) {
                Ok(result) => result,
                Err(e) => {
                    eprintln!("run aborted: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut set = LfSet::new(&dataset, FilterConfig::validity_only());
            for lf in result.lfs {
                set.try_add(lf);
            }
            print_eval(
                &evaluate_lf_set(&dataset, &set, &EvalConfig::default()),
                Some(&result.ledger),
            );
        }
        "promptedlf" => {
            let mut obs = match Observability::from_flags(&flags) {
                Ok(o) => o,
                Err(code) => return code,
            };
            let mut llm = SimulatedLlm::new(model, dataset.generative.clone(), seed);
            let mut observer = obs.shared.clone();
            let result = promptedlf_run_observed(&dataset, &mut llm, &mut observer);
            print_eval(
                &evaluate_matrix(&dataset, &result.matrix, &EvalConfig::default()),
                Some(&result.ledger),
            );
            if !obs.close() {
                return ExitCode::FAILURE;
            }
        }
        other => {
            return usage_error(&format!(
                "unknown baseline system '{other}' (wrench|scriptorium|promptedlf)"
            ));
        }
    }
    ExitCode::SUCCESS
}

/// Dispatch `datasculpt trace <analyze|diff|flame|expo|check>`.
fn trace_family(args: &[String]) -> ExitCode {
    let rest = args.get(1..).unwrap_or(&[]);
    match args.first().map(String::as_str) {
        Some("analyze") => trace_analyze(rest),
        Some("diff") => trace_diff(rest),
        Some("flame") => trace_flame(rest),
        Some("expo") => trace_expo(rest),
        Some("check") => trace_check(rest),
        other => {
            eprintln!(
                "unknown trace subcommand {:?} (analyze|diff|flame|expo|check)",
                other.unwrap_or("<none>")
            );
            ExitCode::FAILURE
        }
    }
}

/// Read and analyze one trace file, or print the error and fail.
fn load_analysis(path: &str) -> Result<datasculpt::obs::TraceAnalysis, ExitCode> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read '{path}': {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    match datasculpt::obs::TraceAnalysis::from_trace(&text) {
        Ok(analysis) => Ok(analysis),
        Err(e) => {
            eprintln!("{path}: invalid trace: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn trace_analyze(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: datasculpt trace analyze <path> [--json]");
        return ExitCode::FAILURE;
    };
    let analysis = match load_analysis(path) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let flags = Flags { args };
    if flags.has("--json") {
        println!(
            "{}",
            datasculpt::obs::report::render_analyze_json(&analysis)
        );
    } else {
        print!("{}", datasculpt::obs::report::render_analyze(&analysis));
    }
    ExitCode::SUCCESS
}

fn trace_diff(args: &[String]) -> ExitCode {
    let (Some(path_a), Some(path_b)) = (args.first(), args.get(1)) else {
        eprintln!("usage: datasculpt trace diff <a> <b> [--timing]");
        return ExitCode::FAILURE;
    };
    let (a, b) = match (load_analysis(path_a), load_analysis(path_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let flags = Flags { args };
    let entries = datasculpt::obs::report::diff(&a, &b, flags.has("--timing"));
    print!("{}", datasculpt::obs::report::render_diff(&entries));
    if entries.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn trace_flame(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: datasculpt trace flame <path>");
        return ExitCode::FAILURE;
    };
    match load_analysis(path) {
        Ok(analysis) => {
            print!("{}", datasculpt::obs::report::folded_stacks(&analysis));
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}

fn trace_expo(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: datasculpt trace expo <path>");
        return ExitCode::FAILURE;
    };
    match load_analysis(path) {
        Ok(analysis) => {
            print!(
                "{}",
                datasculpt::obs::render_prometheus(&analysis.to_metrics_snapshot())
            );
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}

fn trace_check(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("expected a trace file path");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read '{path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    match datasculpt::obs::schema::validate_trace(&text) {
        Ok(summary) => {
            println!("{path}: valid trace (schema v1)");
            println!("events:     {}", summary.events);
            println!("iterations: {}", summary.iterations);
            println!("stages:     {}", summary.stages.join(" "));
            for (counter, total) in &summary.counters {
                println!("counter:    {counter} = {total}");
            }
            println!(
                "cost:       {}",
                datasculpt::obs::cost::format_usd(summary.cost_nanousd)
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: invalid trace: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Dispatch `datasculpt serve <start|submit|status|cancel|drain|ping>`
/// (docs/serving.md). `start` runs the daemon in the foreground; the rest
/// are one-shot clients of a running daemon's socket.
fn serve_family(args: &[String]) -> ExitCode {
    let rest = args.get(1..).unwrap_or(&[]);
    match args.first().map(String::as_str) {
        Some("start") => serve_start(rest),
        Some("submit") => serve_submit(rest),
        Some("status") => serve_status(rest),
        Some("cancel") => serve_cancel(rest),
        Some("drain") => serve_drain(rest),
        Some("ping") => serve_ping(rest),
        other => usage_error(&format!(
            "unknown serve subcommand {:?} (start|submit|status|cancel|drain|ping)",
            other.unwrap_or("<none>")
        )),
    }
}

fn serve_start(args: &[String]) -> ExitCode {
    let flags = Flags { args };
    if let Err(m) = flags.validate(
        0,
        &[
            "--socket",
            "--state",
            "--slots",
            "--checkpoint-every",
            "--trace",
        ],
        &["--metrics", "--verbose"],
    ) {
        return usage_error(&m);
    }
    let Some(socket) = flags.get("--socket") else {
        return usage_error("serve start requires --socket PATH (or tcp:PORT)");
    };
    let Some(state) = flags.get("--state") else {
        return usage_error("serve start requires --state DIR");
    };
    let endpoint = match Endpoint::parse(socket) {
        Ok(e) => e,
        Err(m) => return usage_error(&m),
    };
    let slots: usize = match flags.parse_strict("--slots", 4usize) {
        Ok(0) => return usage_error("--slots must be at least 1"),
        Ok(v) => v,
        Err(m) => return usage_error(&m),
    };
    let checkpoint_every: u64 = match flags.parse_strict("--checkpoint-every", 1u64) {
        Ok(v) => v,
        Err(m) => return usage_error(&m),
    };
    let mut obs = match Observability::from_flags(&flags) {
        Ok(o) => o,
        Err(code) => return code,
    };
    let config = ServeConfig {
        slots,
        checkpoint_every,
    };
    let service = match Service::open(std::path::Path::new(state), config) {
        Ok(s) => s.with_observer(obs.shared.clone()),
        Err(e) => {
            eprintln!("error: cannot open state dir '{state}': {e}");
            return ExitCode::FAILURE;
        }
    };
    if service.recovered_jobs() > 0 {
        eprintln!(
            "recovered {} in-flight job(s) from {state}",
            service.recovered_jobs()
        );
    }
    eprintln!("datasculpt-serve listening on {endpoint} (state: {state})");
    let code = match run_daemon(service, &endpoint) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("daemon failed: {e}");
            ExitCode::FAILURE
        }
    };
    if obs.close() {
        code
    } else {
        ExitCode::FAILURE
    }
}

fn serve_submit(args: &[String]) -> ExitCode {
    let flags = Flags { args };
    if let Err(m) = flags.validate(
        1,
        &[
            "--socket",
            "--tenant",
            "--budget",
            "--queries",
            "--scale",
            "--seed",
            "--config",
            "--model",
        ],
        &[],
    ) {
        return usage_error(&m);
    }
    let Some(dataset) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage_error(
            "serve submit expects the dataset name first (youtube sms imdb yelp agnews spouse)",
        );
    };
    let Some(tenant) = flags.get("--tenant") else {
        return usage_error("serve submit requires --tenant NAME");
    };
    let budget: u128 = match flags.parse_strict("--budget", 0u128) {
        Ok(v) => v,
        Err(m) => return usage_error(&m),
    };
    let queries: u64 = match flags.parse_strict("--queries", 8u64) {
        Ok(v) => v,
        Err(m) => return usage_error(&m),
    };
    let seed: u64 = match flags.parse_strict("--seed", 1u64) {
        Ok(v) => v,
        Err(m) => return usage_error(&m),
    };
    // Scale travels as a string on the (float-free) wire; check it parses
    // here so the daemon never sees a bad one.
    let scale = flags.get("--scale").unwrap_or("1");
    if scale.parse::<f64>().is_err() {
        return usage_error(&format!("flag --scale has unparseable value '{scale}'"));
    }
    let config = flags.get("--config").unwrap_or("base");
    let model = flags.get("--model").unwrap_or("gpt-3.5");
    use datasculpt::obs::jsonl::escape_json;
    let line = format!(
        "{{\"op\":\"submit\",\"tenant\":\"{}\",\"dataset\":\"{}\",\"config\":\"{}\",\
         \"model\":\"{}\",\"seed\":{seed},\"scale\":\"{}\",\"queries\":{queries},\
         \"budget_nanousd\":{budget}}}",
        escape_json(tenant),
        escape_json(dataset),
        escape_json(config),
        escape_json(model),
        escape_json(scale),
    );
    match serve_request(&flags, &line) {
        Ok(lines) => finish_reply(&lines),
        Err(code) => code,
    }
}

fn serve_status(args: &[String]) -> ExitCode {
    let flags = Flags { args };
    if let Err(m) = flags.validate(0, &["--socket", "--job"], &[]) {
        return usage_error(&m);
    }
    let line = match flags.parse_strict::<u64>("--job", 0) {
        Ok(_) if flags.has("--job") => {
            format!(
                "{{\"op\":\"status\",\"job\":{}}}",
                flags.get("--job").unwrap_or("0")
            )
        }
        Ok(_) => "{\"op\":\"status\"}".to_string(),
        Err(m) => return usage_error(&m),
    };
    match serve_request(&flags, &line) {
        Ok(lines) => finish_reply(&lines),
        Err(code) => code,
    }
}

fn serve_cancel(args: &[String]) -> ExitCode {
    let flags = Flags { args };
    if let Err(m) = flags.validate(0, &["--socket", "--job"], &[]) {
        return usage_error(&m);
    }
    if !flags.has("--job") {
        return usage_error("serve cancel requires --job N");
    }
    let job: u64 = match flags.parse_strict("--job", 0) {
        Ok(v) => v,
        Err(m) => return usage_error(&m),
    };
    match serve_request(&flags, &format!("{{\"op\":\"cancel\",\"job\":{job}}}")) {
        Ok(lines) => finish_reply(&lines),
        Err(code) => code,
    }
}

fn serve_drain(args: &[String]) -> ExitCode {
    let flags = Flags { args };
    if let Err(m) = flags.validate(0, &["--socket"], &[]) {
        return usage_error(&m);
    }
    match serve_request(&flags, "{\"op\":\"drain\"}") {
        Ok(lines) => finish_reply(&lines),
        Err(code) => code,
    }
}

fn serve_ping(args: &[String]) -> ExitCode {
    let flags = Flags { args };
    if let Err(m) = flags.validate(0, &["--socket"], &[]) {
        return usage_error(&m);
    }
    match serve_request(&flags, "{\"op\":\"ping\"}") {
        Ok(lines) => finish_reply(&lines),
        Err(code) => code,
    }
}

/// A client connection to the daemon (Unix socket or localhost TCP).
trait ServeStream: std::io::Read + std::io::Write {}
impl ServeStream for std::os::unix::net::UnixStream {}
impl ServeStream for std::net::TcpStream {}

/// Send one request line to a running daemon and collect its reply lines
/// (a status header announces how many job lines follow it).
fn serve_request(flags: &Flags, line: &str) -> Result<Vec<String>, ExitCode> {
    use std::io::{BufRead, BufReader, Write};
    let Some(socket) = flags.get("--socket") else {
        return Err(usage_error(
            "requires --socket PATH (or tcp:PORT) of a running daemon",
        ));
    };
    let endpoint = match Endpoint::parse(socket) {
        Ok(e) => e,
        Err(m) => return Err(usage_error(&m)),
    };
    let mut stream: Box<dyn ServeStream> = match &endpoint {
        Endpoint::Unix(path) => match std::os::unix::net::UnixStream::connect(path) {
            Ok(s) => Box::new(s),
            Err(e) => {
                eprintln!("error: cannot connect to {endpoint}: {e}");
                return Err(ExitCode::FAILURE);
            }
        },
        Endpoint::Tcp(port) => match std::net::TcpStream::connect(("127.0.0.1", *port)) {
            Ok(s) => Box::new(s),
            Err(e) => {
                eprintln!("error: cannot connect to {endpoint}: {e}");
                return Err(ExitCode::FAILURE);
            }
        },
    };
    let sent = stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush());
    if let Err(e) = sent {
        eprintln!("error: cannot send request to {endpoint}: {e}");
        return Err(ExitCode::FAILURE);
    }
    let mut reader = BufReader::new(stream);
    let mut first = String::new();
    match reader.read_line(&mut first) {
        Ok(0) => {
            eprintln!("error: daemon closed the connection without answering");
            return Err(ExitCode::FAILURE);
        }
        Ok(_) => {}
        Err(e) => {
            eprintln!("error: cannot read reply: {e}");
            return Err(ExitCode::FAILURE);
        }
    }
    let header = first.trim_end().to_string();
    let mut follow = reply_job_count(&header);
    let mut lines = vec![header];
    while follow > 0 {
        let mut next = String::new();
        match reader.read_line(&mut next) {
            Ok(0) | Err(_) => break,
            Ok(_) => lines.push(next.trim_end().to_string()),
        }
        follow -= 1;
    }
    Ok(lines)
}

/// How many job lines follow a `{"ok":true,"jobs":N}` status header.
fn reply_job_count(header: &str) -> u128 {
    use datasculpt::obs::schema::JsonValue;
    let Ok(fields) = datasculpt::obs::schema::parse_object(header) else {
        return 0;
    };
    fields
        .iter()
        .find_map(|(k, v)| match (k.as_str(), v) {
            ("jobs", JsonValue::UInt(n)) => Some(*n),
            _ => None,
        })
        .unwrap_or(0)
}

/// True when a reply line carries `"ok":true`.
fn reply_ok(line: &str) -> bool {
    use datasculpt::obs::schema::JsonValue;
    datasculpt::obs::schema::parse_object(line)
        .ok()
        .and_then(|fields| {
            fields.into_iter().find_map(|(k, v)| match (k.as_str(), v) {
                ("ok", JsonValue::Bool(b)) => Some(b),
                _ => None,
            })
        })
        .unwrap_or(false)
}

/// Print all reply lines; exit success iff the first line says `"ok":true`.
fn finish_reply(lines: &[String]) -> ExitCode {
    for line in lines {
        println!("{line}");
    }
    match lines.first() {
        Some(first) if reply_ok(first) => ExitCode::SUCCESS,
        _ => ExitCode::FAILURE,
    }
}

fn print_eval(eval: &PwsEvaluation, ledger: Option<&UsageLedger>) {
    println!("#LFs:           {}", eval.lf_stats.n_lfs);
    match eval.lf_stats.lf_accuracy {
        Some(acc) => println!("LF accuracy:    {acc:.3}"),
        None => println!("LF accuracy:    - (train ground truth unavailable)"),
    }
    println!("LF coverage:    {:.4}", eval.lf_stats.lf_coverage);
    println!("total coverage: {:.3}", eval.lf_stats.total_coverage);
    println!("end model {}:  {:.3}", eval.metric, eval.end_metric);
    if let Some(l) = ledger {
        let u = l.total_usage();
        println!(
            "tokens:         {} ({} prompt + {} completion)",
            u.total(),
            u.prompt_tokens,
            u.completion_tokens
        );
        println!("API cost:       ${:.4}", l.total_cost_usd());
    }
}
