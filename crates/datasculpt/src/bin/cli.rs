//! The `datasculpt` command-line interface.
//!
//! ```text
//! datasculpt inspect  <dataset> [--scale F] [--seed N]
//! datasculpt run      <dataset> [--config base|cot|sc|kate] [--model M]
//!                     [--queries N] [--sampler random|uncertain|seu|coreset]
//!                     [--scale F] [--seed N] [--revise] [--show-lfs N]
//!                     [--threads N] [--trace PATH] [--metrics] [--retries N]
//!                     [--cache N] [--verbose]
//!                     [--store DIR] [--resume DIR] [--checkpoint-every N]
//!                     [--inject-crash-after N]
//! datasculpt baseline <dataset> --system wrench|scriptorium|promptedlf
//!                     [--model M] [--scale F] [--seed N] [--trace PATH] [--metrics]
//! datasculpt trace analyze <path> [--json]
//! datasculpt trace diff <a> <b> [--timing]
//! datasculpt trace flame <path>
//! datasculpt trace expo <path>
//! datasculpt trace check <path>       (alias: datasculpt trace-check)
//! datasculpt models
//! ```
//!
//! Datasets: youtube, sms, imdb, yelp, agnews, spouse.
//! Models: gpt-3.5 (default), gpt-4, llama-7b, llama-13b, llama-70b.
//!
//! Human-readable progress goes through [`StderrProgressSink`]; `--trace`
//! writes the machine-readable JSONL trace (schema: `docs/trace-schema.md`),
//! which the `trace` subcommand family analyzes (see
//! `docs/observability.md`).

use datasculpt::core::eval::evaluate_matrix;
use datasculpt::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("inspect") => inspect(args.get(1..).unwrap_or(&[])),
        Some("run") => run(args.get(1..).unwrap_or(&[])),
        Some("baseline") => baseline(args.get(1..).unwrap_or(&[])),
        Some("trace") => trace_family(args.get(1..).unwrap_or(&[])),
        // Pre-PR-9 spelling of `trace check`, kept as an alias.
        Some("trace-check") => trace_check(args.get(1..).unwrap_or(&[])),
        Some("models") => {
            for m in ModelId::ALL {
                let (inp, out) = PricingTable::rates(m);
                println!(
                    "{:<16} {:<22} ${inp:.2}/M in, ${out:.2}/M out",
                    m.label(),
                    m.api_name()
                );
            }
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | None => {
            print!("{}", HELP);
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n\n{HELP}");
            ExitCode::FAILURE
        }
    }
}

const HELP: &str = "\
datasculpt — cost-efficient LF design via prompting LLMs (EDBT 2025 reproduction)

USAGE:
  datasculpt inspect  <dataset> [--scale F] [--seed N]
  datasculpt run      <dataset> [--config base|cot|sc|kate] [--model M]
                      [--queries N] [--sampler random|uncertain|seu|coreset]
                      [--scale F] [--seed N] [--revise] [--show-lfs N]
                      [--threads N] [--trace PATH] [--metrics] [--retries N]
                      [--cache N] [--verbose]
                      [--store DIR] [--resume DIR] [--checkpoint-every N]
                      [--inject-crash-after N]
  datasculpt baseline <dataset> --system wrench|scriptorium|promptedlf
                      [--model M] [--scale F] [--seed N] [--trace PATH] [--metrics]
  datasculpt trace analyze <path> [--json]
  datasculpt trace diff <a> <b> [--timing]
  datasculpt trace flame <path>
  datasculpt trace expo <path>
  datasculpt trace check <path>
  datasculpt models

Datasets: youtube sms imdb yelp agnews spouse.

Execution:
  --threads N    worker threads for vote columns, label model, and LLM
                 batches (default 1; any value yields the same run digest)

Observability:
  --trace PATH   write a JSONL trace of the run (schema: docs/trace-schema.md)
  --metrics      print a per-stage latency/count/cost table after the run
  --retries N    retry transient LLM errors up to N times per call
  --cache N      wrap the model in a response cache with capacity N
  --verbose      per-iteration progress lines on stderr

Trace analytics (docs/observability.md):
  trace analyze  attribution tree (self/total time + exact nano-USD per
                 span), hot paths, latency histograms, counter/usage
                 rollup; --json emits the stable machine-readable form
  trace diff     structural diff of two traces: counters, costs, span
                 tree, digests — empty (exit 0) for two same-seed runs at
                 any thread count; add --timing to also compare durations
  trace flame    folded-stacks export (flamegraph.pl / speedscope input)
  trace expo     Prometheus text exposition of the trace's metrics
  trace check    validate a trace file and print its summary
                 (alias: `datasculpt trace-check`, the pre-PR-9 spelling)

Durability (docs/persistence.md):
  --store DIR            run durably in DIR: every LLM response is persisted
                         before use and each iteration is checkpointed, so a
                         crashed run can be resumed with zero re-billing
                         (--cache is ignored; the disk store subsumes it)
  --resume DIR           like --store, but refuse to start fresh: DIR must
                         already hold a checkpoint from the same config
  --checkpoint-every N   checkpoint every N iterations (default 1)
  --inject-crash-after N crash-injection smoke knob: abort the process after
                         N backend LLM calls
";

/// Minimal flag parser: `--key value` pairs plus boolean switches.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn load_dataset(args: &[String]) -> Result<TextDataset, ExitCode> {
    let Some(name) = args.first().and_then(|a| DatasetName::parse(a)) else {
        eprintln!("expected a dataset name (youtube sms imdb yelp agnews spouse)");
        return Err(ExitCode::FAILURE);
    };
    let flags = Flags { args };
    let scale: f64 = flags.parse_or("--scale", 1.0);
    let seed: u64 = flags.parse_or("--seed", 0);
    Ok(if (scale - 1.0).abs() < 1e-12 {
        name.load(seed)
    } else {
        name.load_scaled(seed, scale)
    })
}

fn parse_model(flags: &Flags) -> ModelId {
    match flags.get("--model").unwrap_or("gpt-3.5") {
        "gpt-4" => ModelId::Gpt4,
        "llama-7b" => ModelId::Llama2Chat7b,
        "llama-13b" => ModelId::Llama2Chat13b,
        "llama-70b" => ModelId::Llama2Chat70b,
        _ => ModelId::Gpt35Turbo,
    }
}

fn inspect(args: &[String]) -> ExitCode {
    let dataset = match load_dataset(args) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let spec = &dataset.spec;
    println!("dataset:       {} ({})", spec.name, spec.domain);
    println!("task:          {}", spec.task_description);
    println!("classes:       {:?}", spec.class_names);
    println!(
        "splits:        {} train / {} valid / {} test",
        dataset.train.len(),
        dataset.valid.len(),
        dataset.test.len()
    );
    println!("metric:        {}", spec.metric);
    println!("relation task: {}", spec.relation);
    if let Some(dc) = spec.default_class {
        println!(
            "default class: {} ({})",
            dc,
            spec.class_names.get(dc).copied().unwrap_or("?")
        );
    }
    println!(
        "class balance (valid): {:?}",
        dataset
            .valid
            .class_distribution(spec.n_classes())
            .iter()
            .map(|p| (p * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    println!("\nsample instances:");
    for inst in dataset.train.iter().take(3) {
        let label = inst
            .label
            .and_then(|y| spec.class_names.get(y).copied())
            .unwrap_or("<hidden>");
        println!("  [{label:>9}] {}", inst.prompt_text());
    }
    ExitCode::SUCCESS
}

/// The observer stack behind one traced CLI run: human-readable progress
/// on stderr, an in-memory metrics aggregate, and (with `--trace`) a JSONL
/// file sink — all reachable through one shareable handle so the pipeline
/// and the LLM middleware emit into the same trace.
struct Observability {
    shared: SharedObserver,
    metrics: MetricsRecorder,
    want_metrics: bool,
}

impl Observability {
    fn from_flags(flags: &Flags) -> Result<Observability, ExitCode> {
        let metrics = MetricsRecorder::new();
        let mut tracer = Tracer::new(Box::new(SystemClock::new()));
        tracer.add_sink(Box::new(metrics.clone()));
        if let Some(path) = flags.get("--trace") {
            match JsonlTraceSink::to_file(path) {
                Ok(sink) => tracer.add_sink(Box::new(sink)),
                Err(e) => {
                    eprintln!("error: cannot open trace file '{path}': {e}");
                    return Err(ExitCode::FAILURE);
                }
            }
        }
        let multi = Multi::new()
            .with(StderrProgressSink::new().verbose(flags.has("--verbose")))
            .with(tracer);
        Ok(Observability {
            shared: SharedObserver::new(multi),
            metrics,
            want_metrics: flags.has("--metrics"),
        })
    }

    /// Flush the sinks and, with `--metrics`, print the summary table.
    /// Returns `false` if a sink failed to flush.
    fn close(&mut self) -> bool {
        let flushed = match self.shared.finish() {
            Ok(()) => true,
            Err(e) => {
                eprintln!("error: trace sink failed: {e}");
                false
            }
        };
        if self.want_metrics {
            println!("{}", self.metrics.render_table());
        }
        flushed
    }
}

fn run(args: &[String]) -> ExitCode {
    let dataset = match load_dataset(args) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let flags = Flags { args };
    let seed: u64 = flags.parse_or("--seed", 0);
    let mut config = match flags.get("--config").unwrap_or("base") {
        "cot" => DataSculptConfig::cot(seed),
        "sc" => DataSculptConfig::sc(seed),
        "kate" => DataSculptConfig::kate(seed),
        _ => DataSculptConfig::base(seed),
    };
    config.num_queries = flags.parse_or("--queries", config.num_queries);
    config.sampler = match flags.get("--sampler").unwrap_or("random") {
        "uncertain" => SamplerKind::Uncertain,
        "seu" => SamplerKind::Seu,
        "coreset" => SamplerKind::CoreSet,
        _ => SamplerKind::Random,
    };
    config.revise_rejected = flags.has("--revise");
    config.threads = flags.parse_or("--threads", 1usize).max(1);
    let model = parse_model(&flags);

    let mut obs = match Observability::from_flags(&flags) {
        Ok(o) => o,
        Err(code) => return code,
    };
    let sim = SimulatedLlm::new(model, dataset.generative.clone(), seed)
        .with_pool(Pool::new(config.threads));
    let retries: u32 = flags.parse_or("--retries", 0);
    let retry = RetryModel::new(sim, retries).with_observer(obs.shared.clone());
    if flags.get("--store").or(flags.get("--resume")).is_some() {
        return run_durably(&dataset, config, model, seed, retry, &mut obs, &flags);
    }
    let cache: usize = flags.parse_or("--cache", 0);
    if cache > 0 {
        let mut llm = CachedModel::with_capacity(retry, cache).with_observer(obs.shared.clone());
        execute_run(&dataset, config, &mut llm, &mut obs, &flags)
    } else {
        let mut llm = retry;
        execute_run(&dataset, config, &mut llm, &mut obs, &flags)
    }
}

/// The `--store`/`--resume` path: wrap the backend in the disk store and
/// checkpointer (`docs/persistence.md`) and run via the durable runner.
fn run_durably<M: ChatModel>(
    dataset: &TextDataset,
    config: DataSculptConfig,
    model: ModelId,
    seed: u64,
    backend: M,
    obs: &mut Observability,
    flags: &Flags,
) -> ExitCode {
    let resume = flags.get("--resume");
    let dir = match resume.or(flags.get("--store")) {
        Some(dir) => std::path::PathBuf::from(dir),
        None => return ExitCode::FAILURE,
    };
    let scale: f64 = flags.parse_or("--scale", 1.0);
    let fingerprint = RunFingerprint {
        dataset: dataset.spec.name.to_string(),
        dataset_seed: seed,
        scale_bits: scale.to_bits(),
        model: model.api_name().to_string(),
        llm_seed: seed,
        config,
    };
    let opts = DurableOptions {
        checkpoint_every: flags.parse_or("--checkpoint-every", 1u64),
        kill: None,
        require_existing: resume.is_some(),
    };
    let observer = Some(obs.shared.clone());
    let outcome = match flags.get("--inject-crash-after") {
        Some(n) => {
            let budget: u64 = n.parse().unwrap_or(0);
            let doomed = KillAfter::aborting_process(backend, budget);
            run_durable(dataset, &fingerprint, doomed, &dir, &opts, observer)
        }
        None => run_durable(dataset, &fingerprint, backend, &dir, &opts, observer),
    };
    let outcome = match outcome {
        Ok(outcome) => outcome,
        Err(e) => {
            obs.close();
            eprintln!("run aborted: {e}");
            return ExitCode::FAILURE;
        }
    };
    if outcome.recovered {
        println!(
            "resumed:        {} checkpointed iterations verified against the replay",
            outcome.replayed_iterations
        );
    }
    println!(
        "store:          {} hits / {} misses, billed {} this process",
        outcome.store_stats.hits,
        outcome.store_stats.misses,
        datasculpt::obs::cost::format_usd(outcome.billed_nanousd)
    );
    report_run(dataset, config, &outcome.result, obs, flags)
}

fn execute_run<M: ChatModel>(
    dataset: &TextDataset,
    config: DataSculptConfig,
    llm: &mut M,
    obs: &mut Observability,
    flags: &Flags,
) -> ExitCode {
    let mut observer = obs.shared.clone();
    let run = match DataSculpt::new(dataset, config).run_observed(llm, &mut observer) {
        Ok(run) => run,
        Err(e) => {
            obs.close();
            eprintln!("run aborted: {e}");
            return ExitCode::FAILURE;
        }
    };
    report_run(dataset, config, &run, obs, flags)
}

/// Evaluate and print one finished run (shared by the plain and durable
/// paths).
fn report_run(
    dataset: &TextDataset,
    config: DataSculptConfig,
    run: &RunResult,
    obs: &mut Observability,
    flags: &Flags,
) -> ExitCode {
    let eval_config = EvalConfig {
        threads: config.threads,
        ..EvalConfig::default()
    };
    let eval = evaluate_lf_set(dataset, &run.lf_set, &eval_config);

    let show: usize = flags.parse_or("--show-lfs", 5);
    if show > 0 {
        println!("sample LFs:");
        for lf in run.lf_set.lfs().iter().take(show) {
            println!("  {lf}");
        }
    }
    println!("run digest:     {:016x}", run.digest());
    print_eval(&eval, Some(&run.ledger));
    if obs.close() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn baseline(args: &[String]) -> ExitCode {
    let dataset = match load_dataset(args) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let flags = Flags { args };
    let seed: u64 = flags.parse_or("--seed", 0);
    let model = parse_model(&flags);
    let Some(name) = DatasetName::parse(dataset.spec.name) else {
        eprintln!("error: unknown dataset '{}'", dataset.spec.name);
        return ExitCode::from(2);
    };
    match flags.get("--system").unwrap_or("wrench") {
        "wrench" => {
            let mut set = LfSet::new(&dataset, FilterConfig::validity_only());
            for lf in wrench_expert_lfs(&dataset, wrench_lf_count(name)) {
                set.try_add(lf);
            }
            print_eval(
                &evaluate_lf_set(&dataset, &set, &EvalConfig::default()),
                None,
            );
        }
        "scriptorium" => {
            let mut llm = SimulatedLlm::new(model, dataset.generative.clone(), seed);
            let result = match scriptorium_run(
                &dataset,
                &mut llm,
                datasculpt::baselines::scriptorium::scriptorium_lf_count(name),
            ) {
                Ok(result) => result,
                Err(e) => {
                    eprintln!("run aborted: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut set = LfSet::new(&dataset, FilterConfig::validity_only());
            for lf in result.lfs {
                set.try_add(lf);
            }
            print_eval(
                &evaluate_lf_set(&dataset, &set, &EvalConfig::default()),
                Some(&result.ledger),
            );
        }
        "promptedlf" => {
            let mut obs = match Observability::from_flags(&flags) {
                Ok(o) => o,
                Err(code) => return code,
            };
            let mut llm = SimulatedLlm::new(model, dataset.generative.clone(), seed);
            let mut observer = obs.shared.clone();
            let result = promptedlf_run_observed(&dataset, &mut llm, &mut observer);
            print_eval(
                &evaluate_matrix(&dataset, &result.matrix, &EvalConfig::default()),
                Some(&result.ledger),
            );
            if !obs.close() {
                return ExitCode::FAILURE;
            }
        }
        other => {
            eprintln!("unknown baseline system '{other}' (wrench|scriptorium|promptedlf)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Dispatch `datasculpt trace <analyze|diff|flame|expo|check>`.
fn trace_family(args: &[String]) -> ExitCode {
    let rest = args.get(1..).unwrap_or(&[]);
    match args.first().map(String::as_str) {
        Some("analyze") => trace_analyze(rest),
        Some("diff") => trace_diff(rest),
        Some("flame") => trace_flame(rest),
        Some("expo") => trace_expo(rest),
        Some("check") => trace_check(rest),
        other => {
            eprintln!(
                "unknown trace subcommand {:?} (analyze|diff|flame|expo|check)",
                other.unwrap_or("<none>")
            );
            ExitCode::FAILURE
        }
    }
}

/// Read and analyze one trace file, or print the error and fail.
fn load_analysis(path: &str) -> Result<datasculpt::obs::TraceAnalysis, ExitCode> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read '{path}': {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    match datasculpt::obs::TraceAnalysis::from_trace(&text) {
        Ok(analysis) => Ok(analysis),
        Err(e) => {
            eprintln!("{path}: invalid trace: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn trace_analyze(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: datasculpt trace analyze <path> [--json]");
        return ExitCode::FAILURE;
    };
    let analysis = match load_analysis(path) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let flags = Flags { args };
    if flags.has("--json") {
        println!(
            "{}",
            datasculpt::obs::report::render_analyze_json(&analysis)
        );
    } else {
        print!("{}", datasculpt::obs::report::render_analyze(&analysis));
    }
    ExitCode::SUCCESS
}

fn trace_diff(args: &[String]) -> ExitCode {
    let (Some(path_a), Some(path_b)) = (args.first(), args.get(1)) else {
        eprintln!("usage: datasculpt trace diff <a> <b> [--timing]");
        return ExitCode::FAILURE;
    };
    let (a, b) = match (load_analysis(path_a), load_analysis(path_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let flags = Flags { args };
    let entries = datasculpt::obs::report::diff(&a, &b, flags.has("--timing"));
    print!("{}", datasculpt::obs::report::render_diff(&entries));
    if entries.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn trace_flame(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: datasculpt trace flame <path>");
        return ExitCode::FAILURE;
    };
    match load_analysis(path) {
        Ok(analysis) => {
            print!("{}", datasculpt::obs::report::folded_stacks(&analysis));
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}

fn trace_expo(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: datasculpt trace expo <path>");
        return ExitCode::FAILURE;
    };
    match load_analysis(path) {
        Ok(analysis) => {
            print!(
                "{}",
                datasculpt::obs::render_prometheus(&analysis.to_metrics_snapshot())
            );
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}

fn trace_check(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("expected a trace file path");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read '{path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    match datasculpt::obs::schema::validate_trace(&text) {
        Ok(summary) => {
            println!("{path}: valid trace (schema v1)");
            println!("events:     {}", summary.events);
            println!("iterations: {}", summary.iterations);
            println!("stages:     {}", summary.stages.join(" "));
            for (counter, total) in &summary.counters {
                println!("counter:    {counter} = {total}");
            }
            println!(
                "cost:       {}",
                datasculpt::obs::cost::format_usd(summary.cost_nanousd)
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: invalid trace: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_eval(eval: &PwsEvaluation, ledger: Option<&UsageLedger>) {
    println!("#LFs:           {}", eval.lf_stats.n_lfs);
    match eval.lf_stats.lf_accuracy {
        Some(acc) => println!("LF accuracy:    {acc:.3}"),
        None => println!("LF accuracy:    - (train ground truth unavailable)"),
    }
    println!("LF coverage:    {:.4}", eval.lf_stats.lf_coverage);
    println!("total coverage: {:.3}", eval.lf_stats.total_coverage);
    println!("end model {}:  {:.3}", eval.metric, eval.end_metric);
    if let Some(l) = ledger {
        let u = l.total_usage();
        println!(
            "tokens:         {} ({} prompt + {} completion)",
            u.total(),
            u.prompt_tokens,
            u.completion_tokens
        );
        println!("API cost:       ${:.4}", l.total_cost_usd());
    }
}
