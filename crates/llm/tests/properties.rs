//! Property-based tests for the LLM substrate.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt_data::DatasetName;
use datasculpt_llm::{
    approx_token_count, ChatMessage, ChatModel, ChatRequest, ModelId, PricingTable, SimulatedLlm,
};
use proptest::prelude::*;

proptest! {
    /// Token counting is total, zero only on symbol-free text, and
    /// additive across a whitespace join.
    #[test]
    fn token_count_total_and_additive(a in "[a-zA-Z ,.!?]{0,80}", b in "[a-zA-Z ,.!?]{0,80}") {
        let ta = approx_token_count(&a);
        let tb = approx_token_count(&b);
        prop_assert_eq!(ta + tb, approx_token_count(&format!("{a} {b}")));
    }

    /// Cost is linear in tokens and non-negative for every model.
    #[test]
    fn pricing_linear(p in 0u64..1_000_000, c in 0u64..1_000_000) {
        for m in ModelId::ALL {
            let one = PricingTable::cost_usd(m, p, c);
            let two = PricingTable::cost_usd(m, 2 * p, 2 * c);
            prop_assert!(one >= 0.0);
            prop_assert!((two - 2.0 * one).abs() < 1e-9);
        }
    }

    #[test]
    /// The simulator never panics and always produces the requested number
    /// of choices, for arbitrary prompt text.
    fn simulator_total(sys in "\\PC{0,100}", user in "\\PC{0,200}", n in 1usize..4) {
        let (_, world) = DatasetName::Youtube.spec();
        let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, world, 1);
        let resp = llm
            .complete(
                &ChatRequest::new(vec![
                    ChatMessage::system(sys),
                    ChatMessage::user(user),
                ])
                .with_n(n),
            )
            .unwrap();
        prop_assert_eq!(resp.choices.len(), n);
        prop_assert!(resp.usage.prompt_tokens > 0 || resp.usage.completion_tokens > 0);
    }

    /// Billing consistency: completion tokens grow with `n`, prompt tokens
    /// do not.
    #[test]
    fn usage_scales_with_samples(seed in any::<u64>()) {
        let (_, world) = DatasetName::Imdb.spec();
        let mk = |n: usize, seed: u64| {
            let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, world.clone(), seed);
            llm.complete(
                &ChatRequest::new(vec![ChatMessage::user(
                    "Query: a great and wonderful movie that i loved".to_string(),
                )])
                .with_n(n),
            )
            .unwrap()
        };
        let one = mk(1, seed);
        let five = mk(5, seed);
        prop_assert_eq!(one.usage.prompt_tokens, five.usage.prompt_tokens);
        prop_assert!(five.usage.completion_tokens >= one.usage.completion_tokens);
    }
}
