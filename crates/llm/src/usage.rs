//! Token usage accounting (Figures 3–4).

use crate::pricing::{ModelId, PricingTable};
use std::collections::BTreeMap;

/// Token counts for one API call (or an accumulated total).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TokenUsage {
    /// Prompt (input) tokens.
    pub prompt_tokens: u64,
    /// Completion (output) tokens, summed over all returned choices.
    pub completion_tokens: u64,
}

impl TokenUsage {
    /// Total tokens billed. Saturates at `u64::MAX`: a long-lived daemon
    /// must never wrap a tenant's accumulated spend back toward zero (a
    /// wrap would silently defeat budget admission control).
    pub fn total(&self) -> u64 {
        self.prompt_tokens.saturating_add(self.completion_tokens)
    }

    /// Element-wise sum, saturating at `u64::MAX` per component.
    pub fn add(&mut self, other: TokenUsage) {
        self.prompt_tokens = self.prompt_tokens.saturating_add(other.prompt_tokens);
        self.completion_tokens = self
            .completion_tokens
            .saturating_add(other.completion_tokens);
    }
}

impl std::ops::Add for TokenUsage {
    type Output = TokenUsage;
    fn add(self, rhs: TokenUsage) -> TokenUsage {
        TokenUsage {
            prompt_tokens: self.prompt_tokens.saturating_add(rhs.prompt_tokens),
            completion_tokens: self.completion_tokens.saturating_add(rhs.completion_tokens),
        }
    }
}

/// Cumulative per-model usage ledger for one experiment run.
#[derive(Debug, Clone, Default)]
pub struct UsageLedger {
    per_model: BTreeMap<ModelId, TokenUsage>,
    calls: u64,
}

impl UsageLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one call's usage.
    pub fn record(&mut self, model: ModelId, usage: TokenUsage) {
        self.per_model.entry(model).or_default().add(usage);
        self.calls = self.calls.saturating_add(1);
    }

    /// Number of API calls recorded.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Usage for one model (zero if never called).
    pub fn usage(&self, model: ModelId) -> TokenUsage {
        self.per_model.get(&model).copied().unwrap_or_default()
    }

    /// Total usage across models.
    pub fn total_usage(&self) -> TokenUsage {
        let mut t = TokenUsage::default();
        for u in self.per_model.values() {
            t.add(*u);
        }
        t
    }

    /// Per-model usage in deterministic (model-id) order.
    pub fn per_model(&self) -> impl Iterator<Item = (ModelId, TokenUsage)> + '_ {
        self.per_model.iter().map(|(m, u)| (*m, *u))
    }

    /// Exact total cost in nano-USD across models, at the
    /// [`PricingTable`] rates.
    pub fn total_cost_nanousd(&self) -> u128 {
        self.per_model
            .iter()
            .map(|(m, u)| PricingTable::cost_nanousd(*m, u.prompt_tokens, u.completion_tokens))
            .sum()
    }

    /// Total cost in USD across models (display form of the exact
    /// nano-USD total, via the shared `datasculpt_obs::cost` boundary).
    pub fn total_cost_usd(&self) -> f64 {
        datasculpt_obs::cost::nanousd_to_usd(self.total_cost_nanousd())
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &UsageLedger) {
        for (m, u) in &other.per_model {
            self.per_model.entry(*m).or_default().add(*u);
        }
        self.calls = self.calls.saturating_add(other.calls);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_addition() {
        let a = TokenUsage {
            prompt_tokens: 10,
            completion_tokens: 5,
        };
        let b = TokenUsage {
            prompt_tokens: 1,
            completion_tokens: 2,
        };
        let c = a + b;
        assert_eq!(c.prompt_tokens, 11);
        assert_eq!(c.completion_tokens, 7);
        assert_eq!(c.total(), 18);
    }

    #[test]
    fn ledger_accumulates_per_model() {
        let mut l = UsageLedger::new();
        l.record(
            ModelId::Gpt35Turbo,
            TokenUsage {
                prompt_tokens: 100,
                completion_tokens: 20,
            },
        );
        l.record(
            ModelId::Gpt35Turbo,
            TokenUsage {
                prompt_tokens: 50,
                completion_tokens: 10,
            },
        );
        l.record(
            ModelId::Gpt4,
            TokenUsage {
                prompt_tokens: 10,
                completion_tokens: 10,
            },
        );
        assert_eq!(l.calls(), 3);
        assert_eq!(l.usage(ModelId::Gpt35Turbo).prompt_tokens, 150);
        assert_eq!(l.total_usage().total(), 200);
        let expected = 150.0 * 1.5 / 1e6 + 30.0 * 2.0 / 1e6 + 10.0 * 30.0 / 1e6 + 10.0 * 60.0 / 1e6;
        assert!((l.total_cost_usd() - expected).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = UsageLedger::new();
        a.record(
            ModelId::Gpt4,
            TokenUsage {
                prompt_tokens: 1,
                completion_tokens: 1,
            },
        );
        let mut b = UsageLedger::new();
        b.record(
            ModelId::Gpt4,
            TokenUsage {
                prompt_tokens: 2,
                completion_tokens: 2,
            },
        );
        a.merge(&b);
        assert_eq!(a.usage(ModelId::Gpt4).prompt_tokens, 3);
        assert_eq!(a.calls(), 2);
    }

    #[test]
    fn unknown_model_is_zero() {
        let l = UsageLedger::new();
        assert_eq!(l.usage(ModelId::Llama2Chat7b), TokenUsage::default());
        assert_eq!(l.total_cost_usd(), 0.0);
    }

    /// Accumulation at the `u64::MAX` boundary saturates instead of
    /// wrapping. A wrap would reset a long-lived tenant's spend to
    /// near-zero and silently defeat budget admission control.
    #[test]
    fn accumulation_saturates_at_u64_max() {
        let near_max = TokenUsage {
            prompt_tokens: u64::MAX - 1,
            completion_tokens: u64::MAX,
        };
        let one = TokenUsage {
            prompt_tokens: 2,
            completion_tokens: 1,
        };

        // `total()` on a single saturated reading.
        assert_eq!(near_max.total(), u64::MAX);

        // `Add` (by value).
        let summed = near_max + one;
        assert_eq!(summed.prompt_tokens, u64::MAX);
        assert_eq!(summed.completion_tokens, u64::MAX);

        // `add` (in place), both orders.
        let mut acc = near_max;
        acc.add(one);
        assert_eq!(acc.prompt_tokens, u64::MAX);
        assert_eq!(acc.completion_tokens, u64::MAX);
        let mut acc = one;
        acc.add(near_max);
        assert_eq!(acc.prompt_tokens, u64::MAX);
        assert_eq!(acc.completion_tokens, u64::MAX);
    }

    /// A ledger fed `u64::MAX`-scale readings pins at the ceiling — it
    /// never reports less than it did before a record.
    #[test]
    fn ledger_saturates_instead_of_wrapping() {
        let mut l = UsageLedger::new();
        l.record(
            ModelId::Gpt35Turbo,
            TokenUsage {
                prompt_tokens: u64::MAX,
                completion_tokens: u64::MAX - 3,
            },
        );
        let before = l.total_usage();
        l.record(
            ModelId::Gpt35Turbo,
            TokenUsage {
                prompt_tokens: 10,
                completion_tokens: 10,
            },
        );
        let after = l.total_usage();
        assert!(after.prompt_tokens >= before.prompt_tokens, "monotone");
        assert!(
            after.completion_tokens >= before.completion_tokens,
            "monotone"
        );
        assert_eq!(after.prompt_tokens, u64::MAX);
        assert_eq!(after.completion_tokens, u64::MAX);

        // Merging two saturated ledgers stays saturated, calls included.
        let mut a = l.clone();
        a.calls = u64::MAX;
        let b = l.clone();
        a.merge(&b);
        assert_eq!(a.calls(), u64::MAX);
        assert_eq!(a.total_usage().prompt_tokens, u64::MAX);
    }
}
