//! Approximate token counting.
//!
//! Real APIs bill by BPE tokens. Offline we approximate with a
//! deterministic word-piece estimate: each whitespace-separated word
//! contributes `1 + (len-1)/7` pieces (English averages ~1.3 BPE tokens per
//! word), and each punctuation character its own token. The estimate only
//! needs to be *consistent* — Figures 3–4 compare methods against each other
//! under the same counter, so relative shape is preserved.

/// Approximate the number of BPE tokens in `text`.
pub fn approx_token_count(text: &str) -> u64 {
    let mut tokens: u64 = 0;
    let mut word_len: usize = 0;
    for ch in text.chars() {
        if ch.is_whitespace() {
            if word_len > 0 {
                tokens += word_tokens(word_len);
                word_len = 0;
            }
        } else if ch.is_alphanumeric() || ch == '\'' {
            word_len += 1;
        } else {
            // Punctuation: flush the word, count the symbol.
            if word_len > 0 {
                tokens += word_tokens(word_len);
                word_len = 0;
            }
            tokens += 1;
        }
    }
    if word_len > 0 {
        tokens += word_tokens(word_len);
    }
    tokens
}

#[inline]
fn word_tokens(len: usize) -> u64 {
    (1 + (len.saturating_sub(1)) / 7) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(approx_token_count(""), 0);
        assert_eq!(approx_token_count("   "), 0);
    }

    #[test]
    fn short_words_are_one_token() {
        assert_eq!(approx_token_count("the cat sat"), 3);
    }

    #[test]
    fn long_words_split() {
        // 14 chars -> 2 pieces; 21 chars -> 3 pieces.
        assert_eq!(approx_token_count("internationali"), 2);
        assert_eq!(approx_token_count("internationalizations"), 3);
    }

    #[test]
    fn punctuation_counts() {
        assert_eq!(approx_token_count("hello, world!"), 4);
        assert_eq!(approx_token_count("..."), 3);
    }

    #[test]
    fn roughly_1_3_tokens_per_english_word() {
        let text =
            "the quick brown fox jumps over the lazy dog near the riverbank every single morning";
        let words = text.split_whitespace().count() as f64;
        let toks = approx_token_count(text) as f64;
        let ratio = toks / words;
        assert!((0.9..=1.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn additive_over_concatenation() {
        let a = "alpha beta";
        let b = "gamma delta";
        assert_eq!(
            approx_token_count(a) + approx_token_count(b),
            approx_token_count(&format!("{a} {b}"))
        );
    }
}
