//! Bounded-retry middleware for any [`ChatModel`].
//!
//! A real HTTP backend fails transiently (timeouts, HTTP 429); the paper's
//! experiment grids should ride those out instead of burning an iteration.
//! [`RetryModel`] re-issues a failed request up to a bounded number of
//! times, but only for errors where a retry can help
//! ([`LlmError::is_retryable`]) — an empty body or an API rejection
//! surfaces immediately.
//!
//! There is no sleep/backoff here: waiting is a transport concern, and the
//! offline backends fail deterministically. A real client would implement
//! backoff inside its `complete`.
//!
//! Stack order matters: wrap the *backend* in `RetryModel` and the result
//! in [`CachedModel`](crate::CachedModel), so cache hits skip the retry
//! layer entirely and retried successes get cached.

use crate::error::LlmError;
use crate::message::{ChatRequest, ChatResponse};
use crate::pricing::ModelId;
use crate::ChatModel;
use datasculpt_obs::{Counter, Event, RunObserver, SharedObserver};

/// Composable retry middleware over any [`ChatModel`].
///
/// ```
/// use datasculpt_llm::{
///     ChatMessage, ChatModel, ChatRequest, FailingModel, RetryModel, ScriptedModel,
/// };
///
/// // The backend fails on its first call, then recovers.
/// let flaky = FailingModel::fail_on(ScriptedModel::new(vec!["Label: 1".into()]), [0]);
/// let mut model = RetryModel::new(flaky, 2);
/// let req = ChatRequest::new(vec![ChatMessage::user("Query: great movie")]);
/// assert!(model.complete(&req).is_ok());
/// assert_eq!(model.retries_performed(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RetryModel<M> {
    inner: M,
    max_retries: u32,
    retries_performed: u64,
    observer: Option<SharedObserver>,
}

impl<M: ChatModel> RetryModel<M> {
    /// Wrap `inner`, re-issuing each failed request at most `max_retries`
    /// extra times (so a request costs at most `1 + max_retries` calls).
    pub fn new(inner: M, max_retries: u32) -> Self {
        RetryModel {
            inner,
            max_retries,
            retries_performed: 0,
            observer: None,
        }
    }

    /// Attach a trace observer; every retry is mirrored to it as a counter
    /// event.
    pub fn with_observer(mut self, observer: SharedObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Total retries issued since construction (excludes first attempts).
    pub fn retries_performed(&self) -> u64 {
        self.retries_performed
    }

    /// The wrapped backend.
    pub fn get_ref(&self) -> &M {
        &self.inner
    }

    /// Unwrap, discarding the retry state.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: ChatModel> ChatModel for RetryModel<M> {
    fn complete(&mut self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        let mut attempt = 0u32;
        loop {
            match self.inner.complete(request) {
                Ok(response) => return Ok(response),
                Err(e) if e.is_retryable() && attempt < self.max_retries => {
                    attempt += 1;
                    self.retries_performed += 1;
                    if let Some(obs) = &mut self.observer {
                        obs.on_event(&Event::Counter {
                            counter: Counter::Retry,
                            delta: 1,
                        });
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Forward the whole batch to the backend (so a sharded or pipelined
    /// `complete_batch` underneath is preserved), then re-issue each
    /// retryable failure individually within the per-request budget —
    /// *only* the failed slots: an already-succeeded item is never
    /// re-issued (and therefore never re-billed) because a later item in
    /// the batch failed.
    ///
    /// Attempt counts, result order, and retry counters are identical to
    /// the sequential default implementation. If a misbehaving backend
    /// returns the wrong number of results, the vector is normalized to
    /// `requests.len()` before the per-slot retry pass: missing slots
    /// become retryable transport errors (so they are re-issued
    /// individually within the budget) instead of silently truncating the
    /// tail — a short return would otherwise misalign every later item
    /// with its request and bill responses against the wrong prompts.
    fn complete_batch(&mut self, requests: &[ChatRequest]) -> Vec<Result<ChatResponse, LlmError>> {
        let mut results = self.inner.complete_batch(requests);
        results.truncate(requests.len());
        while results.len() < requests.len() {
            results.push(Err(LlmError::Transport(
                "batch backend returned fewer results than requests".into(),
            )));
        }
        for (request, slot) in requests.iter().zip(results.iter_mut()) {
            let mut attempt = 0u32;
            while let Err(e) = slot {
                if !e.is_retryable() || attempt >= self.max_retries {
                    break;
                }
                attempt += 1;
                self.retries_performed += 1;
                if let Some(obs) = &mut self.observer {
                    obs.on_event(&Event::Counter {
                        counter: Counter::Retry,
                        delta: 1,
                    });
                }
                *slot = self.inner.complete(request);
            }
        }
        results
    }

    fn model_id(&self) -> ModelId {
        self.inner.model_id()
    }

    fn advance_replayed(&mut self, calls: u64) {
        self.inner.advance_replayed(calls);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ChatMessage;
    use crate::scripted::{FailingModel, ScriptedModel};
    use datasculpt_obs::{ManualClock, MetricsRecorder, Tracer};

    fn req(text: &str) -> ChatRequest {
        ChatRequest::new(vec![ChatMessage::user(text)])
    }

    #[test]
    fn transient_failure_is_retried_to_success() {
        let flaky = FailingModel::fail_on(ScriptedModel::new(vec!["ok".into()]), [0, 1]);
        let mut m = RetryModel::new(flaky, 2);
        let resp = m.complete(&req("q")).unwrap();
        assert_eq!(resp.choices[0].content, "ok");
        assert_eq!(m.retries_performed(), 2);
        assert_eq!(m.get_ref().calls_attempted(), 3);
    }

    #[test]
    fn budget_exhaustion_surfaces_the_error() {
        let flaky = FailingModel::fail_every(ScriptedModel::new(vec!["ok".into()]), 1);
        let mut m = RetryModel::new(flaky, 2);
        let err = m.complete(&req("q")).unwrap_err();
        assert!(matches!(err, LlmError::Transport(_)));
        assert_eq!(m.retries_performed(), 2);
        assert_eq!(m.get_ref().calls_attempted(), 3);
    }

    #[test]
    fn zero_budget_never_retries() {
        let flaky = FailingModel::fail_every(ScriptedModel::new(vec!["ok".into()]), 1);
        let mut m = RetryModel::new(flaky, 0);
        assert!(m.complete(&req("q")).is_err());
        assert_eq!(m.retries_performed(), 0);
        assert_eq!(m.get_ref().calls_attempted(), 1);
    }

    #[test]
    fn batch_retries_failures_individually() {
        let flaky = FailingModel::fail_on(
            ScriptedModel::new(vec!["ok".into()]),
            [1, 2], // both tail requests fail on their first attempt
        );
        let mut m = RetryModel::new(flaky, 2);
        let reqs = vec![req("a"), req("b"), req("c")];
        let results = m.complete_batch(&reqs);
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(m.retries_performed(), 2);
        assert_eq!(m.get_ref().calls_attempted(), 5);
    }

    #[test]
    fn batch_surfaces_errors_after_budget() {
        let flaky = FailingModel::fail_every(ScriptedModel::new(vec!["ok".into()]), 1);
        let mut m = RetryModel::new(flaky, 1);
        let results = m.complete_batch(&[req("a"), req("b")]);
        assert!(results.iter().all(|r| r.is_err()));
        assert_eq!(m.retries_performed(), 2);
        assert_eq!(m.get_ref().calls_attempted(), 4);
    }

    /// The re-billing audit, pinned with exact nano-USD arithmetic: when a
    /// later batch item fails, the already-succeeded earlier items are
    /// *not* re-issued to the backend, and a ledger fed the batch results
    /// bills exactly what a sequential un-wrapped run of the same script
    /// would — nothing twice.
    #[test]
    fn batch_failure_rebills_nothing_exact_nanousd() {
        use crate::usage::UsageLedger;

        let script = vec!["Label: 0".into(), "Label: 1".into(), "Label: 2".into()];
        let reqs = vec![req("alpha"), req("bravo"), req("charlie")];

        // Expected billing: the same script served sequentially with no
        // failures and no middleware.
        let mut oracle = ScriptedModel::new(script.clone());
        let mut expected = UsageLedger::new();
        for r in &reqs {
            let resp = oracle.complete(r).unwrap();
            expected.record(resp.model, resp.usage);
        }

        // The middle item fails once (call index 1), succeeds on retry.
        let flaky = FailingModel::fail_on(ScriptedModel::new(script), [1]);
        let mut m = RetryModel::new(flaky, 2);
        let mut ledger = UsageLedger::new();
        for slot in m.complete_batch(&reqs) {
            let resp = slot.unwrap();
            ledger.record(resp.model, resp.usage);
        }

        // Only the failed item was re-issued: 3 first attempts + 1 retry
        // reached the failure layer, and exactly 3 calls (one per request)
        // reached the backend — the two successes were never re-issued.
        assert_eq!(m.retries_performed(), 1);
        assert_eq!(m.get_ref().calls_attempted(), 4);
        assert_eq!(m.get_ref().get_ref().calls_served(), 3);

        // Exact nano-USD equality with the failure-free sequential oracle.
        assert!(expected.total_cost_nanousd() > 0);
        assert_eq!(ledger.total_cost_nanousd(), expected.total_cost_nanousd());
        assert_eq!(ledger.calls(), expected.calls());
        assert_eq!(ledger.total_usage(), expected.total_usage());
    }

    /// A misbehaving backend that returns fewer batch results than
    /// requests must not silently truncate the tail (which would misalign
    /// every later item with its request): missing slots are padded with
    /// retryable errors and recovered individually.
    #[test]
    fn short_batch_return_is_padded_and_recovered() {
        /// Drops the last result of every batch (contract violation).
        struct ShortBatch(ScriptedModel);
        impl ChatModel for ShortBatch {
            fn complete(&mut self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
                self.0.complete(request)
            }
            fn complete_batch(
                &mut self,
                requests: &[ChatRequest],
            ) -> Vec<Result<ChatResponse, LlmError>> {
                let mut results = self.0.complete_batch(requests);
                results.pop();
                results
            }
            fn model_id(&self) -> ModelId {
                self.0.model_id()
            }
        }

        let mut m = RetryModel::new(
            ShortBatch(ScriptedModel::new(vec!["a".into(), "b".into(), "c".into()])),
            1,
        );
        let results = m.complete_batch(&[req("x"), req("y"), req("z")]);
        assert_eq!(results.len(), 3, "normalized to requests.len()");
        assert!(results.iter().all(|r| r.is_ok()));
        // The dropped tail slot was re-issued individually, once.
        assert_eq!(m.retries_performed(), 1);
        // Items keep their request alignment: the re-issued tail got the
        // next scripted response, not a shifted earlier one.
        assert_eq!(results[0].as_ref().unwrap().choices[0].content, "a");
        assert_eq!(results[1].as_ref().unwrap().choices[0].content, "b");
        assert_eq!(results[2].as_ref().unwrap().choices[0].content, "a");
    }

    #[test]
    fn observer_counts_retries() {
        let metrics = MetricsRecorder::new();
        let tracer =
            Tracer::new(Box::new(ManualClock::new(1))).with_sink(Box::new(metrics.clone()));
        let flaky = FailingModel::fail_on(ScriptedModel::new(vec!["ok".into()]), [0]);
        let mut m = RetryModel::new(flaky, 3).with_observer(SharedObserver::new(tracer));
        m.complete(&req("q")).unwrap();
        assert_eq!(metrics.snapshot().counters["retry"], 1);
    }
}
