//! Bounded-retry middleware for any [`ChatModel`].
//!
//! A real HTTP backend fails transiently (timeouts, HTTP 429); the paper's
//! experiment grids should ride those out instead of burning an iteration.
//! [`RetryModel`] re-issues a failed request up to a bounded number of
//! times, but only for errors where a retry can help
//! ([`LlmError::is_retryable`]) — an empty body or an API rejection
//! surfaces immediately.
//!
//! There is no sleep/backoff here: waiting is a transport concern, and the
//! offline backends fail deterministically. A real client would implement
//! backoff inside its `complete`.
//!
//! Stack order matters: wrap the *backend* in `RetryModel` and the result
//! in [`CachedModel`](crate::CachedModel), so cache hits skip the retry
//! layer entirely and retried successes get cached.

use crate::error::LlmError;
use crate::message::{ChatRequest, ChatResponse};
use crate::pricing::ModelId;
use crate::ChatModel;
use datasculpt_obs::{Counter, Event, RunObserver, SharedObserver};

/// Composable retry middleware over any [`ChatModel`].
///
/// ```
/// use datasculpt_llm::{
///     ChatMessage, ChatModel, ChatRequest, FailingModel, RetryModel, ScriptedModel,
/// };
///
/// // The backend fails on its first call, then recovers.
/// let flaky = FailingModel::fail_on(ScriptedModel::new(vec!["Label: 1".into()]), [0]);
/// let mut model = RetryModel::new(flaky, 2);
/// let req = ChatRequest::new(vec![ChatMessage::user("Query: great movie")]);
/// assert!(model.complete(&req).is_ok());
/// assert_eq!(model.retries_performed(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RetryModel<M> {
    inner: M,
    max_retries: u32,
    retries_performed: u64,
    observer: Option<SharedObserver>,
}

impl<M: ChatModel> RetryModel<M> {
    /// Wrap `inner`, re-issuing each failed request at most `max_retries`
    /// extra times (so a request costs at most `1 + max_retries` calls).
    pub fn new(inner: M, max_retries: u32) -> Self {
        RetryModel {
            inner,
            max_retries,
            retries_performed: 0,
            observer: None,
        }
    }

    /// Attach a trace observer; every retry is mirrored to it as a counter
    /// event.
    pub fn with_observer(mut self, observer: SharedObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Total retries issued since construction (excludes first attempts).
    pub fn retries_performed(&self) -> u64 {
        self.retries_performed
    }

    /// The wrapped backend.
    pub fn get_ref(&self) -> &M {
        &self.inner
    }

    /// Unwrap, discarding the retry state.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: ChatModel> ChatModel for RetryModel<M> {
    fn complete(&mut self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        let mut attempt = 0u32;
        loop {
            match self.inner.complete(request) {
                Ok(response) => return Ok(response),
                Err(e) if e.is_retryable() && attempt < self.max_retries => {
                    attempt += 1;
                    self.retries_performed += 1;
                    if let Some(obs) = &mut self.observer {
                        obs.on_event(&Event::Counter {
                            counter: Counter::Retry,
                            delta: 1,
                        });
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Forward the whole batch to the backend (so a sharded or pipelined
    /// `complete_batch` underneath is preserved), then re-issue each
    /// retryable failure individually within the per-request budget.
    ///
    /// Attempt counts, result order, and retry counters are identical to
    /// the sequential default implementation.
    fn complete_batch(&mut self, requests: &[ChatRequest]) -> Vec<Result<ChatResponse, LlmError>> {
        let mut results = self.inner.complete_batch(requests);
        for (request, slot) in requests.iter().zip(results.iter_mut()) {
            let mut attempt = 0u32;
            while let Err(e) = slot {
                if !e.is_retryable() || attempt >= self.max_retries {
                    break;
                }
                attempt += 1;
                self.retries_performed += 1;
                if let Some(obs) = &mut self.observer {
                    obs.on_event(&Event::Counter {
                        counter: Counter::Retry,
                        delta: 1,
                    });
                }
                *slot = self.inner.complete(request);
            }
        }
        results
    }

    fn model_id(&self) -> ModelId {
        self.inner.model_id()
    }

    fn advance_replayed(&mut self, calls: u64) {
        self.inner.advance_replayed(calls);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ChatMessage;
    use crate::scripted::{FailingModel, ScriptedModel};
    use datasculpt_obs::{ManualClock, MetricsRecorder, Tracer};

    fn req(text: &str) -> ChatRequest {
        ChatRequest::new(vec![ChatMessage::user(text)])
    }

    #[test]
    fn transient_failure_is_retried_to_success() {
        let flaky = FailingModel::fail_on(ScriptedModel::new(vec!["ok".into()]), [0, 1]);
        let mut m = RetryModel::new(flaky, 2);
        let resp = m.complete(&req("q")).unwrap();
        assert_eq!(resp.choices[0].content, "ok");
        assert_eq!(m.retries_performed(), 2);
        assert_eq!(m.get_ref().calls_attempted(), 3);
    }

    #[test]
    fn budget_exhaustion_surfaces_the_error() {
        let flaky = FailingModel::fail_every(ScriptedModel::new(vec!["ok".into()]), 1);
        let mut m = RetryModel::new(flaky, 2);
        let err = m.complete(&req("q")).unwrap_err();
        assert!(matches!(err, LlmError::Transport(_)));
        assert_eq!(m.retries_performed(), 2);
        assert_eq!(m.get_ref().calls_attempted(), 3);
    }

    #[test]
    fn zero_budget_never_retries() {
        let flaky = FailingModel::fail_every(ScriptedModel::new(vec!["ok".into()]), 1);
        let mut m = RetryModel::new(flaky, 0);
        assert!(m.complete(&req("q")).is_err());
        assert_eq!(m.retries_performed(), 0);
        assert_eq!(m.get_ref().calls_attempted(), 1);
    }

    #[test]
    fn batch_retries_failures_individually() {
        let flaky = FailingModel::fail_on(
            ScriptedModel::new(vec!["ok".into()]),
            [1, 2], // both tail requests fail on their first attempt
        );
        let mut m = RetryModel::new(flaky, 2);
        let reqs = vec![req("a"), req("b"), req("c")];
        let results = m.complete_batch(&reqs);
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(m.retries_performed(), 2);
        assert_eq!(m.get_ref().calls_attempted(), 5);
    }

    #[test]
    fn batch_surfaces_errors_after_budget() {
        let flaky = FailingModel::fail_every(ScriptedModel::new(vec!["ok".into()]), 1);
        let mut m = RetryModel::new(flaky, 1);
        let results = m.complete_batch(&[req("a"), req("b")]);
        assert!(results.iter().all(|r| r.is_err()));
        assert_eq!(m.retries_performed(), 2);
        assert_eq!(m.get_ref().calls_attempted(), 4);
    }

    #[test]
    fn observer_counts_retries() {
        let metrics = MetricsRecorder::new();
        let tracer =
            Tracer::new(Box::new(ManualClock::new(1))).with_sink(Box::new(metrics.clone()));
        let flaky = FailingModel::fail_on(ScriptedModel::new(vec!["ok".into()]), [0]);
        let mut m = RetryModel::new(flaky, 3).with_observer(SharedObserver::new(tracer));
        m.complete(&req("q")).unwrap();
        assert_eq!(metrics.snapshot().counters["retry"], 1);
    }
}
