//! Per-model fidelity profiles for the simulator.
//!
//! Each profile controls how faithfully the simulated model reads the
//! dataset's generative "world": persistent knowledge corruption (cannot be
//! averaged away by self-consistency), per-sample decision noise (scaled by
//! temperature, averaged away by self-consistency), keyword habits, and
//! formatting discipline. Values are calibrated so the *ordering* of models
//! in Table 3 reproduces: GPT-4 > GPT-3.5 ≈ Llama-70b > Llama-13b/7b on LF
//! accuracy, with small Llamas sometimes hallucinating artificial examples.

use crate::pricing::ModelId;

/// Behavioural parameters of one simulated model.
#[derive(Debug, Clone, Copy)]
pub struct ModelProfile {
    /// Which model this profile describes.
    pub model: ModelId,
    /// Std-dev of the *persistent* Gaussian corruption applied to the
    /// normalized keyword→class affinity weights. Keyed per `(model, gram,
    /// class)`, so repeated sampling sees the same error.
    pub knowledge_noise: f64,
    /// Scale of per-sample Gaussian noise on class evidence, multiplied by
    /// the request temperature.
    pub decision_noise: f64,
    /// Multiplier (< 1 helps) applied to decision noise when the prompt
    /// requests chain-of-thought reasoning.
    pub cot_gain: f64,
    /// Probability of appending a junk (non-indicative) keyword from the
    /// query text.
    pub junk_keyword_rate: f64,
    /// Probability of emitting a malformed response (missing label line,
    /// prose instead of the keyword list, …).
    pub format_break_rate: f64,
    /// Probability of hallucinating an artificial example instead of
    /// answering the query (observed for small Llama models, §4.3).
    pub hallucination_rate: f64,
    /// Expected number of extra keywords beyond the first (Poisson mean).
    pub keyword_richness: f64,
    /// Verbosity multiplier for chain-of-thought explanations (drives
    /// completion-token cost).
    pub verbosity: f64,
}

impl ModelProfile {
    /// The calibrated profile for a model.
    pub fn for_model(model: ModelId) -> ModelProfile {
        match model {
            ModelId::Gpt4 => ModelProfile {
                model,
                knowledge_noise: 0.05,
                decision_noise: 0.22,
                cot_gain: 0.85,
                junk_keyword_rate: 0.03,
                format_break_rate: 0.01,
                hallucination_rate: 0.0,
                keyword_richness: 1.5,
                verbosity: 1.2,
            },
            ModelId::Gpt35Turbo => ModelProfile {
                model,
                knowledge_noise: 0.11,
                decision_noise: 0.32,
                cot_gain: 0.90,
                junk_keyword_rate: 0.08,
                format_break_rate: 0.03,
                hallucination_rate: 0.005,
                keyword_richness: 1.2,
                verbosity: 1.0,
            },
            ModelId::Llama2Chat70b => ModelProfile {
                model,
                knowledge_noise: 0.13,
                decision_noise: 0.36,
                cot_gain: 0.92,
                junk_keyword_rate: 0.10,
                format_break_rate: 0.06,
                hallucination_rate: 0.02,
                keyword_richness: 1.3,
                verbosity: 1.4,
            },
            ModelId::Llama2Chat13b => ModelProfile {
                model,
                knowledge_noise: 0.22,
                decision_noise: 0.50,
                cot_gain: 0.95,
                junk_keyword_rate: 0.18,
                format_break_rate: 0.10,
                hallucination_rate: 0.06,
                keyword_richness: 1.1,
                verbosity: 1.3,
            },
            ModelId::Llama2Chat7b => ModelProfile {
                model,
                knowledge_noise: 0.26,
                decision_noise: 0.55,
                cot_gain: 0.95,
                junk_keyword_rate: 0.22,
                format_break_rate: 0.12,
                hallucination_rate: 0.10,
                keyword_richness: 1.4,
                verbosity: 1.5,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knowledge_ordering_matches_table3() {
        let p = |m| ModelProfile::for_model(m).knowledge_noise;
        assert!(p(ModelId::Gpt4) < p(ModelId::Gpt35Turbo));
        assert!(p(ModelId::Gpt35Turbo) < p(ModelId::Llama2Chat70b) + 1e-9);
        assert!(p(ModelId::Llama2Chat70b) < p(ModelId::Llama2Chat13b));
        assert!(p(ModelId::Llama2Chat13b) <= p(ModelId::Llama2Chat7b));
    }

    #[test]
    fn only_small_llamas_hallucinate_meaningfully() {
        let h = |m| ModelProfile::for_model(m).hallucination_rate;
        assert_eq!(h(ModelId::Gpt4), 0.0);
        assert!(h(ModelId::Llama2Chat7b) > 0.05);
        assert!(h(ModelId::Llama2Chat13b) > h(ModelId::Llama2Chat70b));
    }

    #[test]
    fn cot_always_helps_or_is_neutral() {
        for m in ModelId::ALL {
            assert!(ModelProfile::for_model(m).cot_gain <= 1.0);
        }
    }
}
