//! The simulated LLM.
//!
//! [`SimulatedLlm`] implements [`ChatModel`] by actually *reading the
//! prompt*: it locates the final `Query:` line of the last user message,
//! tokenizes it, extracts candidate n-grams, and scores them against a
//! noise-corrupted view of the dataset's [`GenerativeModel`] — its "world
//! knowledge". From those scores it predicts a class label and selects the
//! keywords most supportive of that label, emitting exactly the response
//! format of Figure 2 (`Explanation:` / `Keywords:` / `Label:`).
//!
//! Two noise sources shape model quality (see [`ModelProfile`]):
//!
//! * **persistent knowledge corruption** — a Gaussian perturbation of each
//!   n-gram's class-affinity vector, keyed by `(model, gram, class)`. It is
//!   identical across samples, so self-consistency cannot vote it away;
//!   this is what separates GPT-4 from Llama-7b in Table 3.
//! * **per-sample decision noise** — scaled by the request temperature;
//!   independent across the `n` choices, so self-consistency *does* average
//!   it away, and higher temperature yields more diverse keyword sets
//!   (larger LF sets for DataSculpt-SC, Table 2).
//!
//! The prompt contract (the marker strings below) is shared with the prompt
//! builder in `datasculpt-core`; a real API client would honour the same
//! contract implicitly by the LLM following instructions.

use crate::error::LlmError;
use crate::message::{ChatChoice, ChatRequest, ChatResponse};
use crate::pricing::ModelId;
use crate::profile::ModelProfile;
use crate::tokens::approx_token_count;
use crate::usage::TokenUsage;
use crate::ChatModel;
use datasculpt_data::GenerativeModel;
use datasculpt_exec::Pool;
use datasculpt_text::rng::{derive_seed, hash_str};
use datasculpt_text::{extract_ngrams, tokenize_keep_markers};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Marks the query instance in the user prompt.
pub const QUERY_PREFIX: &str = "Query:";
/// Marks the keyword list in responses and in-context examples.
pub const KEYWORDS_PREFIX: &str = "Keywords:";
/// Marks the class label in responses and in-context examples.
pub const LABEL_PREFIX: &str = "Label:";
/// Marks the chain-of-thought explanation.
pub const EXPLANATION_PREFIX: &str = "Explanation:";
/// System-prompt phrase that requests chain-of-thought (Figure 2, CoT).
pub const COT_MARKER: &str = "explain your reason";
/// System-prompt phrase that requests a bare class label (PromptedLF mode).
pub const LABEL_ONLY_MARKER: &str = "Respond with only the class label";
/// Prompt phrase that requests task-level keywords with no query instance
/// (the ScriptoriumWS-style broad prompt). Must be followed by
/// `"for class <digit>"` somewhere in the user message.
pub const GENERIC_KEYWORDS_MARKER: &str = "List the most indicative keywords";
/// Prompt phrase of the LF-revision extension (§5 future work): asks the
/// model to replace a rejected keyword with a more specific phrase from the
/// same passage. The user message must contain `keyword '<kw>'` and
/// `for class <digit>` plus the `Query:`.
pub const REVISE_MARKER: &str = "Propose a more specific phrase";

/// A deterministic, knowledge-corrupted simulated chat model.
#[derive(Debug, Clone)]
pub struct SimulatedLlm {
    profile: ModelProfile,
    world: GenerativeModel,
    seed: u64,
    calls: u64,
    pool: Pool,
}

impl SimulatedLlm {
    /// Build a simulator for `model` over a dataset's generative model.
    pub fn new(model: ModelId, world: GenerativeModel, seed: u64) -> Self {
        Self {
            profile: ModelProfile::for_model(model),
            world,
            seed: derive_seed(seed, hash_str(model.api_name())),
            calls: 0,
            pool: Pool::serial(),
        }
    }

    /// Build with an explicit profile (for calibration experiments).
    pub fn with_profile(profile: ModelProfile, world: GenerativeModel, seed: u64) -> Self {
        Self {
            seed: derive_seed(seed, hash_str(profile.model.api_name())),
            profile,
            world,
            calls: 0,
            pool: Pool::serial(),
        }
    }

    /// Serve [`ChatModel::complete_batch`] through `pool`. Responses are a
    /// pure function of `(seed, call index, request)`, so sharding a batch
    /// across threads with positional call indices reproduces the
    /// sequential transcript exactly at every thread count.
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Number of completion calls served.
    pub fn calls_served(&self) -> u64 {
        self.calls
    }

    /// Persistent standard-normal deviate keyed by `(model, gram, class)`.
    fn persistent_noise(&self, gram: &str, class: usize) -> f64 {
        let key = hash_str(gram)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(hash_str(self.profile.model.api_name()))
            .wrapping_add(class as u64);
        // Two derived uniforms -> Box–Muller.
        let u1 = ((derive_seed(key, 1) >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
        let u2 = (derive_seed(key, 2) >> 11) as f64 / (1u64 << 53) as f64;
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// The model's belief about an n-gram's class distribution: the true
    /// normalized affinity plus persistent corruption, re-normalized.
    /// Returns `None` for n-grams the model has no knowledge of.
    fn believed_affinity(&self, gram: &str) -> Option<(Vec<f64>, f64)> {
        let probs = self.world.affinity(gram)?;
        let strength: f64 = probs.iter().sum();
        if strength <= 0.0 {
            return None;
        }
        let c = probs.len();
        let mut w: Vec<f64> = probs.iter().map(|p| p / strength).collect();
        for (cls, wc) in w.iter_mut().enumerate() {
            *wc += self.profile.knowledge_noise * self.persistent_noise(gram, cls);
            if *wc < 0.0 {
                *wc = 0.0;
            }
        }
        let sum: f64 = w.iter().sum();
        if sum <= 0.0 {
            w = vec![1.0 / c as f64; c];
        } else {
            for wc in &mut w {
                *wc /= sum;
            }
        }
        Some((w, strength))
    }

    /// Produce one response sample.
    #[allow(clippy::too_many_arguments)]
    fn respond_once(
        &self,
        query: &str,
        provided_label: Option<usize>,
        cot: bool,
        label_only: bool,
        temperature: f64,
        rng: &mut StdRng,
    ) -> String {
        let n_classes = self.world.n_classes();
        let tokens = tokenize_query(query);
        let mut grams = extract_ngrams(&tokens, 3);
        grams.sort_unstable();
        grams.dedup();

        // Candidate knowledge: believed affinity of every known n-gram.
        let candidates: Vec<(String, Vec<f64>, f64)> = grams
            .iter()
            .filter_map(|g| self.believed_affinity(g).map(|(w, s)| (g.clone(), w, s)))
            .collect();

        // Class evidence with per-sample decision noise.
        let noise_scale = self.profile.decision_noise
            * temperature.max(0.05)
            * if cot { self.profile.cot_gain } else { 1.0 };
        let mut evidence = vec![0.0f64; n_classes];
        if candidates.is_empty() {
            // Nothing recognized: fall back to prior plausibility.
            for (e, &p) in evidence.iter_mut().zip(self.world.priors()) {
                *e = p;
            }
        } else {
            // Each recognized n-gram contributes its believed class
            // direction; the sum is normalized by √count so the evidence
            // scale is comparable across documents (a reader's confidence
            // grows with the number of agreeing cues, not with how common
            // the cues are).
            for (_, w, _) in &candidates {
                for (e, &wc) in evidence.iter_mut().zip(w.iter()) {
                    *e += wc - 1.0 / n_classes as f64;
                }
            }
            let norm = (candidates.len() as f64).sqrt();
            for e in evidence.iter_mut() {
                *e /= norm;
            }
        }
        for e in evidence.iter_mut() {
            *e += noise_scale * gauss(rng);
        }
        let label = provided_label.unwrap_or_else(|| argmax(&evidence));

        if label_only {
            // Annotation templates allow "abstain if unsure": with no
            // recognized evidence the simulator abstains, giving
            // PromptedLF columns realistic partial coverage.
            if candidates.is_empty() && provided_label.is_none() {
                return "abstain".to_string();
            }
            return format!("{label}");
        }

        // Keyword selection: support for the chosen label.
        let mut scored: Vec<(&str, f64)> = candidates
            .iter()
            .map(|(g, w, s)| {
                let other = w
                    .iter()
                    .take(n_classes)
                    .enumerate()
                    .filter(|&(c, _)| c != label)
                    .map(|(_, &wc)| wc)
                    .fold(f64::NEG_INFINITY, f64::max);
                let support = w.get(label).copied().unwrap_or(0.0) - other;
                // Specificity bonus: LLMs reading an instance surface its
                // distinctive phrases, not the most common ones — this is
                // what keeps DataSculpt's per-LF coverage an order of
                // magnitude below the broad baselines (Table 2).
                let specificity = 1.0 / (1.0 + 20.0 * s);
                (
                    g.as_str(),
                    support * specificity + 0.15 * temperature * gauss(rng),
                )
            })
            .filter(|(_, score)| *score > 0.0)
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));

        let k = 1 + poisson(self.profile.keyword_richness * 2.0, rng);
        let mut keywords: Vec<String> = scored.iter().take(k).map(|(g, _)| g.to_string()).collect();

        // Real LLMs often quote a slightly longer span from the passage
        // ("wake me up" instead of "wake me"): extend some keywords with an
        // adjacent token from the query. The extended phrases are rare but
        // inherit the contained keyword's class signal — the long tail of
        // low-coverage LFs behind the paper's large LF sets (LF Cov ~0.01).
        let mut extensions = Vec::new();
        for kw in &keywords {
            if rng.gen::<f64>() < 0.6 {
                if let Some(ext) = extend_with_neighbor(&tokens, kw, rng) {
                    extensions.push(ext);
                }
            }
        }
        keywords.extend(extensions);

        // Junk habit: sometimes include an uninformative word from the text.
        if rng.gen::<f64>() < self.profile.junk_keyword_rate {
            let plain: Vec<&String> = tokens
                .iter()
                .filter(|t| t.len() >= 3 && !t.starts_with('['))
                .collect();
            if !plain.is_empty() {
                if let Some(junk) = plain
                    .get(rng.gen_range(0..plain.len()))
                    .map(|t| (*t).clone())
                {
                    if !keywords.contains(&junk) {
                        keywords.push(junk);
                    }
                }
            }
        }

        // Formatting failures.
        let break_roll: f64 = rng.gen();
        if break_roll < self.profile.hallucination_rate {
            return self.hallucinate(rng);
        }
        let drop_label_line =
            break_roll < self.profile.hallucination_rate + self.profile.format_break_rate;

        let mut out = String::new();
        if cot {
            out.push_str(EXPLANATION_PREFIX);
            out.push(' ');
            out.push_str(&self.explanation(&keywords, label, rng));
            out.push('\n');
        }
        out.push_str(KEYWORDS_PREFIX);
        out.push(' ');
        if keywords.is_empty() {
            out.push_str("none");
        } else {
            out.push_str(&keywords.join(", "));
        }
        out.push('\n');
        if !drop_label_line {
            out.push_str(LABEL_PREFIX);
            out.push(' ');
            out.push_str(&label.to_string());
        }
        out
    }

    /// A templated chain-of-thought explanation; its length scales with the
    /// profile's verbosity (and therefore drives completion-token cost).
    fn explanation(&self, keywords: &[String], label: usize, rng: &mut StdRng) -> String {
        let mut s = String::from("let us reason step by step. ");
        if keywords.is_empty() {
            s.push_str("the input contains no strongly indicative phrase, ");
        } else {
            s.push_str("the input mentions ");
            s.push_str(&keywords.join(" and "));
            s.push_str(", ");
        }
        s.push_str(&format!(
            "which is characteristic of class {label}, so the label should be {label}."
        ));
        let padding = (self.profile.verbosity - 1.0).max(0.0);
        while rng.gen::<f64>() < padding * 0.5 {
            s.push_str(" considering the overall tone and context of the passage, this reading is consistent with the examples provided above.");
        }
        s
    }

    /// Instance-free keyword generation (the ScriptoriumWS prompt style):
    /// produce broad task-level keywords for `class` from corrupted world
    /// knowledge, ranked by believed coverage — which is exactly why such
    /// LFs are less precise than instance-grounded ones (§4.2).
    fn respond_generic(&self, class: usize, count: usize, rng: &mut StdRng) -> String {
        let mut scored: Vec<(String, f64)> = self
            .world
            .indicative_grams()
            .iter()
            .filter_map(|g| {
                let (w, s) = self.believed_affinity(&g.gram)?;
                if w.get(class).copied().unwrap_or(0.0) < 0.3 {
                    return None;
                }
                // Coverage-first ranking: a broad prompt surfaces the most
                // *common* phrases it associates with the class, not the
                // most precise ones — and with substantial noise, since no
                // concrete instance grounds the choice.
                Some((g.gram.clone(), s + 0.03 * gauss(rng)))
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut ranked = scored.into_iter().map(|(g, _)| g);
        // Without an instance to ground it, the model pads the list with
        // plausible-sounding generic words — broad coverage, no signal
        // (the over-generality that costs ScriptoriumWS ~11 accuracy
        // points in Table 2).
        let background = self.world.background_words();
        let mut keywords: Vec<String> = Vec::with_capacity(count);
        while keywords.len() < count {
            let pick = if rng.gen::<f64>() < 0.2 && !background.is_empty() {
                background
                    .get(rng.gen_range(0..background.len().min(40)))
                    .cloned()
            } else {
                ranked.next()
            };
            match pick {
                Some(k) if !keywords.contains(&k) => keywords.push(k),
                Some(_) => continue,
                None => break,
            }
        }
        format!(
            "{KEYWORDS_PREFIX} {}\n{LABEL_PREFIX} {class}",
            if keywords.is_empty() {
                "none".to_string()
            } else {
                keywords.join(", ")
            }
        )
    }

    /// LF-revision mode (§5 future work): given a rejected keyword and its
    /// source passage, propose a more specific phrase — the keyword
    /// extended with a neighbouring token, or a stronger alternative from
    /// the same passage.
    fn respond_revise(&self, query: &str, keyword: &str, class: usize, rng: &mut StdRng) -> String {
        let tokens = tokenize_query(query);
        if let Some(ext) = extend_with_neighbor(&tokens, keyword, rng) {
            return format!("{KEYWORDS_PREFIX} {ext}\n{LABEL_PREFIX} {class}");
        }
        // Cannot extend (trigram or keyword absent): fall back to the most
        // class-supportive other phrase in the passage.
        let mut grams = extract_ngrams(&tokens, 3);
        grams.sort_unstable();
        grams.dedup();
        let best = grams
            .iter()
            .filter(|g| g.as_str() != keyword)
            .filter_map(|g| {
                let (w, _) = self.believed_affinity(g)?;
                Some((g, w.get(class).copied().unwrap_or(0.0)))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1));
        match best {
            Some((g, support)) if support > 0.5 => {
                format!("{KEYWORDS_PREFIX} {g}\n{LABEL_PREFIX} {class}")
            }
            _ => format!("{KEYWORDS_PREFIX} none\n{LABEL_PREFIX} {class}"),
        }
    }

    /// Small-Llama failure mode: invent an artificial example instead of
    /// answering (§4.3: "sometimes generate artificial examples instead of
    /// addressing the query directly").
    fn hallucinate(&self, rng: &mut StdRng) -> String {
        let grams = self.world.indicative_grams();
        let gi = rng.gen_range(0..grams.len().max(1));
        let invented_label = rng.gen_range(0..self.world.n_classes());
        let Some(g) = grams.get(gi) else {
            return format!("Here is another example for you:\n{QUERY_PREFIX} this text talks about nothing\n{KEYWORDS_PREFIX} none\n{LABEL_PREFIX} {invented_label}");
        };
        format!(
            "Here is another example for you:\n{QUERY_PREFIX} this text talks about {}\n{KEYWORDS_PREFIX} {}\n{LABEL_PREFIX} {}",
            g.gram, g.gram, invented_label
        )
    }
}

impl SimulatedLlm {
    /// Serve one completion at an explicit call index. This is the whole
    /// response logic; it takes `&self` because the response is a pure
    /// function of `(seed, call_idx, request)` — which is what lets
    /// [`ChatModel::complete_batch`] assign indices positionally and fan
    /// the batch out across threads.
    fn complete_at(&self, call_idx: u64, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        let system_text: String = request
            .messages
            .iter()
            .filter(|m| m.role == crate::message::Role::System)
            .map(|m| m.content.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        let user_text = request
            .last_user()
            .map(|m| m.content.clone())
            .unwrap_or_default();

        let cot = system_text.contains(COT_MARKER);
        let label_only =
            system_text.contains(LABEL_ONLY_MARKER) || user_text.contains(LABEL_ONLY_MARKER);
        let generic = (system_text.contains(GENERIC_KEYWORDS_MARKER)
            || user_text.contains(GENERIC_KEYWORDS_MARKER))
        .then(|| parse_generic_request(&user_text, &system_text));
        let revise = (system_text.contains(REVISE_MARKER) || user_text.contains(REVISE_MARKER))
            .then(|| parse_revise_request(&user_text, &system_text));
        let (query, provided_label) = extract_query(&user_text);

        let prompt_tokens = approx_token_count(&request.full_text());
        let mut completion_tokens = 0;
        let mut choices = Vec::with_capacity(request.n);
        for sample in 0..request.n {
            let mut rng =
                StdRng::seed_from_u64(derive_seed(self.seed, derive_seed(call_idx, sample as u64)));
            let content = if let Some((keyword, class)) = &revise {
                self.respond_revise(&query, keyword, *class, &mut rng)
            } else if let Some((class, count)) = generic {
                self.respond_generic(class, count, &mut rng)
            } else {
                self.respond_once(
                    &query,
                    provided_label,
                    cot,
                    label_only,
                    request.temperature,
                    &mut rng,
                )
            };
            completion_tokens += approx_token_count(&content);
            choices.push(ChatChoice { content });
        }
        Ok(ChatResponse {
            choices,
            usage: TokenUsage {
                prompt_tokens,
                completion_tokens,
            },
            model: self.profile.model,
        })
    }
}

impl ChatModel for SimulatedLlm {
    fn complete(&mut self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        let call_idx = self.calls;
        self.calls += 1;
        self.complete_at(call_idx, request)
    }

    /// Serve the batch in parallel on the configured [`Pool`]. Request `i`
    /// gets call index `calls + i` — exactly the index it would get from
    /// sequential `complete` calls — so the responses and the final call
    /// counter are identical to the serial transcript.
    fn complete_batch(&mut self, requests: &[ChatRequest]) -> Vec<Result<ChatResponse, LlmError>> {
        let base = self.calls;
        let this = &*self;
        let outcome = this.pool.try_map(requests, |i, request| {
            this.complete_at(base + i as u64, request)
        });
        self.calls = base + requests.len() as u64;
        match outcome {
            Ok(results) => results,
            // A worker panic cannot happen for this pure backend, but keep
            // the failure visible instead of unwinding through the pool.
            Err(e) => requests
                .iter()
                .map(|_| Err(LlmError::Transport(format!("batch worker panicked: {e}"))))
                .collect(),
        }
    }

    fn model_id(&self) -> ModelId {
        self.profile.model
    }

    /// The simulator is a pure function of `(seed, call index, request)`,
    /// so replayed calls must consume their original indices: a resumed
    /// run then serves every *new* request at exactly the index an
    /// uninterrupted run would have used.
    fn advance_replayed(&mut self, calls: u64) {
        self.calls += calls;
    }
}

/// Parse `keyword '<kw>'` and `for class <digit>` from a revision request.
fn parse_revise_request(user_text: &str, system_text: &str) -> (String, usize) {
    let text = format!("{system_text}\n{user_text}");
    let keyword = text
        .find("keyword '")
        .and_then(|p| {
            let after = text.get(p + "keyword '".len()..).unwrap_or("");
            after
                .find('\'')
                .and_then(|end| after.get(..end))
                .map(str::to_string)
        })
        .unwrap_or_default();
    let (class, _) = parse_generic_request(user_text, system_text);
    (keyword, class)
}

/// Parse `"for class <digit>"` and an optional `"up to <n> keywords"` from a
/// generic-keywords request.
fn parse_generic_request(user_text: &str, system_text: &str) -> (usize, usize) {
    let text = format!("{system_text}\n{user_text}");
    let class = text
        .find("for class ")
        .and_then(|p| {
            text.get(p + "for class ".len()..)
                .unwrap_or("")
                .split_whitespace()
                .next()
                .and_then(|t| t.trim_matches(|c: char| !c.is_ascii_digit()).parse().ok())
        })
        .unwrap_or(0);
    let count = text
        .find("up to ")
        .and_then(|p| {
            text.get(p + "up to ".len()..)
                .unwrap_or("")
                .split_whitespace()
                .next()
                .and_then(|t| t.parse().ok())
        })
        .unwrap_or(8);
    (class, count)
}

/// Extract the final `Query:` text of the user message, plus a provided
/// label if the prompt already states one after the query (the KATE
/// auto-annotation mode of §3.3, where examples are labeled in advance).
fn extract_query(user_text: &str) -> (String, Option<usize>) {
    let Some(qpos) = user_text.rfind(QUERY_PREFIX) else {
        return (user_text.to_string(), None);
    };
    let after = user_text.get(qpos + QUERY_PREFIX.len()..).unwrap_or("");
    // Query runs to the next structural marker (or message end).
    let mut end = after.len();
    for marker in [KEYWORDS_PREFIX, LABEL_PREFIX, EXPLANATION_PREFIX] {
        if let Some(p) = after.find(marker) {
            end = end.min(p);
        }
    }
    let query = after.get(..end).unwrap_or("").trim().to_string();
    let provided_label = after
        .get(end..)
        .unwrap_or("")
        .find(LABEL_PREFIX)
        .map(|p| end + p + LABEL_PREFIX.len())
        .and_then(|start| {
            after
                .get(start..)
                .unwrap_or("")
                .split_whitespace()
                .next()
                .and_then(|tok| tok.trim_matches(|c: char| !c.is_ascii_digit()).parse().ok())
        });
    (query, provided_label)
}

/// Tokenize a prompt-rendered query, restoring `[a]`/`[b]` entity markers
/// from the `[A:name]` / `[B:name]` prompt rendering.
fn tokenize_query(query: &str) -> Vec<String> {
    let mut rewritten = String::with_capacity(query.len());
    let mut rest = query;
    loop {
        // Earliest of either marker (they can appear in any order).
        let start = match (rest.find("[A:"), rest.find("[B:")) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => break,
        };
        let tail = rest.get(start..).unwrap_or("");
        let is_a = tail.starts_with("[A:");
        rewritten.push_str(rest.get(..start).unwrap_or(""));
        match tail.find(']') {
            Some(close) => {
                rewritten.push_str(if is_a { " [a] " } else { " [b] " });
                rest = rest.get(start + close + 1..).unwrap_or("");
            }
            None => {
                rewritten.push_str(tail);
                rest = "";
            }
        }
    }
    rewritten.push_str(rest);
    tokenize_keep_markers(&rewritten)
}

/// Extend `keyword` with one adjacent token from its occurrence in
/// `tokens`, if the result stays a 1–3-gram. Returns `None` when the
/// keyword is not found, already a trigram, or the neighbour is an entity
/// marker.
fn extend_with_neighbor(tokens: &[String], keyword: &str, rng: &mut StdRng) -> Option<String> {
    let parts: Vec<&str> = keyword.split(' ').collect();
    if parts.len() >= 3 {
        return None;
    }
    let start = (0..tokens.len().checked_sub(parts.len() - 1)?).find(|&i| {
        tokens
            .get(i..i + parts.len())
            .is_some_and(|w| w.iter().zip(&parts).all(|(t, p)| t == p))
    })?;
    let before = start.checked_sub(1).and_then(|i| tokens.get(i));
    let after = tokens.get(start + parts.len());
    let valid = |t: &&String| !t.starts_with('[');
    let (prepend, tok) = match (before.filter(valid), after.filter(valid)) {
        (Some(b), Some(a)) => {
            if rng.gen::<bool>() {
                (true, b)
            } else {
                (false, a)
            }
        }
        (Some(b), None) => (true, b),
        (None, Some(a)) => (false, a),
        (None, None) => return None,
    };
    Some(if prepend {
        format!("{tok} {keyword}")
    } else {
        format!("{keyword} {tok}")
    })
}

fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = (1.0 - rng.gen::<f64>()).max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn poisson(lambda: f64, rng: &mut StdRng) -> usize {
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 50 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ChatMessage;
    use datasculpt_data::DatasetName;

    fn sim(model: ModelId) -> SimulatedLlm {
        let (_, world) = DatasetName::Imdb.spec();
        SimulatedLlm::new(model, world, 42)
    }

    fn ask(model: &mut SimulatedLlm, system: &str, user: &str, n: usize) -> ChatResponse {
        model
            .complete(
                &ChatRequest::new(vec![
                    ChatMessage::system(system.to_string()),
                    ChatMessage::user(user.to_string()),
                ])
                .with_n(n),
            )
            .unwrap()
    }

    const SYS: &str = "You are a helpful assistant who helps users in a sentiment analysis task. After the user provides input, identify a list of keywords that helps making prediction. Finally, provide the class label for the input.";

    #[test]
    fn parallel_batch_matches_sequential_at_every_thread_count() {
        let queries = [
            "Query: this movie was great and heartwarming i loved it",
            "Query: the cgi was horrible and the plot was boring",
            "Query: a really wonderful film with a great cast",
            "Query: dull characters and a total waste of time",
            "Query: the acting was superb and the story moving",
        ];
        let reqs: Vec<ChatRequest> = queries
            .iter()
            .map(|q| {
                ChatRequest::new(vec![
                    ChatMessage::system(SYS.to_string()),
                    ChatMessage::user((*q).to_string()),
                ])
                .with_n(2)
            })
            .collect();
        // Reference transcript: sequential `complete` calls.
        let mut serial = sim(ModelId::Gpt4);
        let expected: Vec<_> = reqs.iter().map(|r| serial.complete(r).unwrap()).collect();
        for threads in [1, 2, 8] {
            let mut m = sim(ModelId::Gpt4).with_pool(Pool::new(threads));
            let results = m.complete_batch(&reqs);
            assert_eq!(m.calls_served(), reqs.len() as u64, "threads={threads}");
            for (got, want) in results.into_iter().zip(&expected) {
                assert_eq!(&got.unwrap(), want, "threads={threads}");
            }
        }
    }

    #[test]
    fn positive_review_gets_positive_label_and_keywords() {
        let mut m = sim(ModelId::Gpt4);
        let resp = ask(
            &mut m,
            SYS,
            "Query: this movie was great and heartwarming i loved it",
            1,
        );
        let text = &resp.choices[0].content;
        assert!(text.contains("Keywords:"), "{text}");
        assert!(text.contains("Label: 1"), "{text}");
        // The keyword should be one of the indicative grams in the query.
        let kw_line = text
            .lines()
            .find(|l| l.starts_with("Keywords:"))
            .expect("keywords line");
        assert!(
            kw_line.contains("great")
                || kw_line.contains("heartwarming")
                || kw_line.contains("loved it"),
            "{kw_line}"
        );
    }

    #[test]
    fn negative_review_gets_negative_label() {
        let mut m = sim(ModelId::Gpt4);
        let resp = ask(
            &mut m,
            SYS,
            "Query: the cgi was horrible and the plot was boring a total waste of time",
            1,
        );
        assert!(
            resp.choices[0].content.contains("Label: 0"),
            "{}",
            resp.choices[0].content
        );
    }

    #[test]
    fn label_accuracy_orders_by_model_quality() {
        // Over many generated documents, GPT-4 should label more accurately
        // than Llama-7b.
        let data = DatasetName::Imdb.load_scaled(7, 0.01);
        let mut correct = std::collections::HashMap::new();
        for model in [ModelId::Gpt4, ModelId::Llama2Chat7b] {
            let mut m = SimulatedLlm::new(model, data.generative.clone(), 0);
            let mut ok = 0usize;
            for inst in data.train.iter().take(120) {
                let resp = ask(&mut m, SYS, &format!("Query: {}", inst.text), 1);
                let text = &resp.choices[0].content;
                let label: Option<usize> = text
                    .rfind("Label:")
                    .and_then(|p| text[p + 6..].trim().parse().ok());
                if label == inst.label {
                    ok += 1;
                }
            }
            correct.insert(model, ok);
        }
        let g4 = correct[&ModelId::Gpt4];
        let l7 = correct[&ModelId::Llama2Chat7b];
        assert!(g4 > l7, "gpt4 {g4} vs llama7b {l7}");
        assert!(g4 >= 90, "gpt4 should be strong, got {g4}/120");
    }

    #[test]
    fn self_consistency_samples_differ() {
        let mut m = sim(ModelId::Gpt35Turbo);
        let resp = ask(
            &mut m,
            SYS,
            "Query: great funny heartwarming movie with a brilliant and touching story that i loved",
            10,
        );
        assert_eq!(resp.choices.len(), 10);
        let distinct: std::collections::HashSet<_> =
            resp.choices.iter().map(|c| c.content.clone()).collect();
        assert!(distinct.len() > 1, "samples should be diverse");
        // Prompt billed once; completions summed.
        assert!(resp.usage.completion_tokens > resp.usage.prompt_tokens / 10);
    }

    #[test]
    fn determinism_per_call_index() {
        let (_, world) = DatasetName::Imdb.spec();
        let mut a = SimulatedLlm::new(ModelId::Gpt35Turbo, world.clone(), 9);
        let mut b = SimulatedLlm::new(ModelId::Gpt35Turbo, world, 9);
        let r1 = ask(&mut a, SYS, "Query: a great movie", 1);
        let r2 = ask(&mut b, SYS, "Query: a great movie", 1);
        assert_eq!(r1.choices[0].content, r2.choices[0].content);
        // Second call on the same instance draws fresh sampling noise.
        let r3 = ask(&mut a, SYS, "Query: a great movie", 1);
        // (content may or may not differ, but the call counter advanced)
        assert_eq!(a.calls_served(), 2);
        let _ = r3;
    }

    #[test]
    fn label_only_mode_returns_bare_digit() {
        let mut m = sim(ModelId::Gpt35Turbo);
        let resp = ask(
            &mut m,
            &format!("{SYS} {LABEL_ONLY_MARKER}."),
            "Query: this was a wonderful and excellent movie",
            1,
        );
        let text = resp.choices[0].content.trim();
        assert!(
            text.len() == 1 && text.chars().all(|c| c.is_ascii_digit()),
            "{text}"
        );
    }

    #[test]
    fn provided_label_is_respected() {
        // KATE auto-annotation: the label is included in the user input.
        let mut m = sim(ModelId::Gpt35Turbo);
        let resp = ask(&mut m, SYS, "Query: this movie was horrible\nLabel: 0", 1);
        assert!(resp.choices[0].content.contains("Label: 0"));
    }

    #[test]
    fn cot_marker_triggers_explanation() {
        let mut m = sim(ModelId::Gpt4);
        let sys_cot = format!(
            "You are a helpful assistant. After the user provides input, first {COT_MARKER} process step by step. Then identify a list of keywords. Finally provide the class label."
        );
        let resp = ask(&mut m, &sys_cot, "Query: a boring terrible movie", 1);
        assert!(
            resp.choices[0].content.starts_with(EXPLANATION_PREFIX),
            "{}",
            resp.choices[0].content
        );
    }

    #[test]
    fn small_llama_hallucinates_sometimes() {
        let data = DatasetName::Youtube.load_scaled(3, 0.05);
        let mut m = SimulatedLlm::new(ModelId::Llama2Chat7b, data.generative.clone(), 5);
        let mut hallucinated = 0;
        for inst in data.train.iter().take(150) {
            let resp = ask(&mut m, SYS, &format!("Query: {}", inst.text), 1);
            if resp.choices[0].content.contains("Here is another example") {
                hallucinated += 1;
            }
        }
        assert!(hallucinated > 0, "7b should hallucinate occasionally");
        assert!(
            hallucinated < 60,
            "but not most of the time: {hallucinated}"
        );
    }

    #[test]
    fn entity_markers_survive_prompt_rendering() {
        let (_, world) = DatasetName::Spouse.spec();
        let mut m = SimulatedLlm::new(ModelId::Gpt4, world, 11);
        let resp = ask(
            &mut m,
            SYS,
            "Query: the ceremony was lovely as [A:john smith] married [B:mary jones] last june at their wedding",
            1,
        );
        let text = &resp.choices[0].content;
        assert!(text.contains("Label: 1"), "{text}");
    }

    #[test]
    fn generic_mode_returns_broad_keywords() {
        let mut m = sim(ModelId::Gpt4);
        let resp = ask(
            &mut m,
            "You are a helpful assistant in a sentiment analysis task.",
            &format!("{GENERIC_KEYWORDS_MARKER} for class 1. Return up to 5 keywords."),
            1,
        );
        let text = &resp.choices[0].content;
        assert!(text.contains("Label: 1"), "{text}");
        let kw_line = text.lines().next().expect("keywords line");
        let kws: Vec<&str> = kw_line["Keywords: ".len()..].split(", ").collect();
        assert!(kws.len() <= 5 && !kws.is_empty(), "{kws:?}");
        // Broad positive sentiment terms should dominate.
        assert!(
            kws.iter()
                .any(|k| k.contains("great") || k.contains("excellent") || k.contains("wonderful")),
            "{kws:?}"
        );
    }

    #[test]
    fn revise_mode_extends_the_keyword() {
        let mut m = sim(ModelId::Gpt4);
        let resp = ask(
            &mut m,
            &format!("You help with sentiment analysis. {REVISE_MARKER} from the passage."),
            "The keyword 'great' should be revised for class 1.\nQuery: this was a great movie indeed",
            1,
        );
        let text = &resp.choices[0].content;
        assert!(text.contains("Label: 1"), "{text}");
        let kw_line = text.lines().next().expect("keywords line");
        // The revision contains the original keyword plus a neighbour.
        assert!(kw_line.contains("great"), "{kw_line}");
        assert!(
            kw_line.contains("a great") || kw_line.contains("great movie"),
            "{kw_line}"
        );
    }

    #[test]
    fn parse_revise_request_extracts_keyword_and_class() {
        let (kw, class) = parse_revise_request(
            "The keyword 'waste of time' should be revised for class 0.",
            "",
        );
        assert_eq!(kw, "waste of time");
        assert_eq!(class, 0);
    }

    #[test]
    fn parse_generic_request_defaults() {
        assert_eq!(parse_generic_request("for class 2.", ""), (2, 8));
        assert_eq!(
            parse_generic_request("for class 1. up to 12 keywords", ""),
            (1, 12)
        );
        assert_eq!(parse_generic_request("no class marker", ""), (0, 8));
    }

    #[test]
    fn extract_query_handles_provided_label() {
        let (q, l) = extract_query("Query: some text here\nLabel: 2");
        assert_eq!(q, "some text here");
        assert_eq!(l, Some(2));
        let (q2, l2) = extract_query("Query: other text");
        assert_eq!(q2, "other text");
        assert_eq!(l2, None);
        // Earlier in-context examples are skipped: only the last query counts.
        let (q3, _) = extract_query("Query: first\nKeywords: a\nLabel: 0\nQuery: second");
        assert_eq!(q3, "second");
    }

    #[test]
    fn tokenize_query_restores_markers() {
        let toks = tokenize_query("[A:john smith] married [B:mary jones] yesterday");
        assert_eq!(toks[0], "[a]");
        assert!(toks.contains(&"[b]".to_string()));
        assert!(toks.contains(&"married".to_string()));
        assert!(!toks.contains(&"john".to_string()));
    }
}
