//! Chat message and request/response types (OpenAI-style surface).

use crate::pricing::ModelId;
use crate::usage::TokenUsage;

/// Message author role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The system prompt (task description, Figure 2 top).
    System,
    /// The user turn (in-context examples + query).
    User,
    /// A model turn (used when replaying few-shot dialogues).
    Assistant,
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Role::System => write!(f, "system"),
            Role::User => write!(f, "user"),
            Role::Assistant => write!(f, "assistant"),
        }
    }
}

/// One chat message.
#[derive(Debug, Clone)]
pub struct ChatMessage {
    /// Author role.
    pub role: Role,
    /// Message text.
    pub content: String,
}

impl ChatMessage {
    /// A system message.
    pub fn system(content: impl Into<String>) -> Self {
        Self {
            role: Role::System,
            content: content.into(),
        }
    }

    /// A user message.
    pub fn user(content: impl Into<String>) -> Self {
        Self {
            role: Role::User,
            content: content.into(),
        }
    }

    /// An assistant message.
    pub fn assistant(content: impl Into<String>) -> Self {
        Self {
            role: Role::Assistant,
            content: content.into(),
        }
    }
}

/// A chat completion request.
#[derive(Debug, Clone)]
pub struct ChatRequest {
    /// Conversation so far (system prompt first).
    pub messages: Vec<ChatMessage>,
    /// Sampling temperature (the paper uses 0.7).
    pub temperature: f64,
    /// Number of independent samples to return (10 for self-consistency).
    pub n: usize,
}

impl ChatRequest {
    /// A single-sample request at the paper's default temperature.
    pub fn new(messages: Vec<ChatMessage>) -> Self {
        Self {
            messages,
            temperature: 0.7,
            n: 1,
        }
    }

    /// Set the temperature.
    pub fn with_temperature(mut self, t: f64) -> Self {
        self.temperature = t;
        self
    }

    /// Set the number of samples.
    pub fn with_n(mut self, n: usize) -> Self {
        assert!(n >= 1, "n must be at least 1");
        self.n = n;
        self
    }

    /// Concatenated text of all messages (used for token counting).
    pub fn full_text(&self) -> String {
        let mut s = String::new();
        for m in &self.messages {
            s.push_str(&m.content);
            s.push('\n');
        }
        s
    }

    /// The last user message, if any.
    pub fn last_user(&self) -> Option<&ChatMessage> {
        self.messages.iter().rev().find(|m| m.role == Role::User)
    }
}

/// One returned sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChatChoice {
    /// Generated text.
    pub content: String,
}

/// A chat completion response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChatResponse {
    /// `request.n` samples.
    pub choices: Vec<ChatChoice>,
    /// Token accounting for this call (prompt counted once, completions
    /// summed over all choices, mirroring the OpenAI billing model).
    pub usage: TokenUsage,
    /// Model that served the request.
    pub model: ModelId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_roles() {
        assert_eq!(ChatMessage::system("s").role, Role::System);
        assert_eq!(ChatMessage::user("u").role, Role::User);
        assert_eq!(ChatMessage::assistant("a").role, Role::Assistant);
    }

    #[test]
    fn request_defaults() {
        let r = ChatRequest::new(vec![ChatMessage::user("hi")]);
        assert_eq!(r.n, 1);
        assert!((r.temperature - 0.7).abs() < 1e-12);
    }

    #[test]
    fn last_user_skips_assistant() {
        let r = ChatRequest::new(vec![
            ChatMessage::system("sys"),
            ChatMessage::user("first"),
            ChatMessage::assistant("reply"),
        ]);
        assert_eq!(r.last_user().map(|m| m.content.as_str()), Some("first"));
    }

    #[test]
    #[should_panic(expected = "n must be at least 1")]
    fn zero_samples_rejected() {
        let _ = ChatRequest::new(vec![]).with_n(0);
    }

    #[test]
    fn full_text_concatenates() {
        let r = ChatRequest::new(vec![ChatMessage::system("a"), ChatMessage::user("b")]);
        assert_eq!(r.full_text(), "a\nb\n");
    }
}
