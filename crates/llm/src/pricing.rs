//! Model identities and the API price table used for Figure 4.

/// The language models evaluated in the paper (§4.1, §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ModelId {
    /// `gpt-3.5-turbo-0613` (OpenAI) — the paper's default.
    Gpt35Turbo,
    /// `gpt-4-0613` (OpenAI).
    Gpt4,
    /// `Llama-2-7b-chat` (Anyscale endpoints).
    Llama2Chat7b,
    /// `Llama-2-13b-chat` (Anyscale endpoints).
    Llama2Chat13b,
    /// `Llama-2-70b-chat` (Anyscale endpoints).
    Llama2Chat70b,
}

impl ModelId {
    /// All models of the Table 3 ablation, in row order.
    pub const ALL: [ModelId; 5] = [
        ModelId::Gpt35Turbo,
        ModelId::Gpt4,
        ModelId::Llama2Chat7b,
        ModelId::Llama2Chat13b,
        ModelId::Llama2Chat70b,
    ];

    /// API model string.
    pub fn api_name(&self) -> &'static str {
        match self {
            ModelId::Gpt35Turbo => "gpt-3.5-turbo-0613",
            ModelId::Gpt4 => "gpt-4-0613",
            ModelId::Llama2Chat7b => "llama-2-7b-chat",
            ModelId::Llama2Chat13b => "llama-2-13b-chat",
            ModelId::Llama2Chat70b => "llama-2-70b-chat",
        }
    }

    /// Display label used in Table 3.
    pub fn label(&self) -> &'static str {
        match self {
            ModelId::Gpt35Turbo => "GPT-3.5",
            ModelId::Gpt4 => "GPT-4",
            ModelId::Llama2Chat7b => "Llama2-CHAT-7b",
            ModelId::Llama2Chat13b => "Llama2-CHAT-13b",
            ModelId::Llama2Chat70b => "Llama2-CHAT-70b",
        }
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// API prices, matching the rates cited by the paper (footnote 2:
/// gpt-3.5-turbo-0613 was $1.50/M input, $2.00/M output) and the
/// contemporaneous OpenAI / Anyscale price lists.
///
/// Rates are stored as integer **nano-USD per token** ($1.50/M tokens =
/// 1500 nUSD/token), so cost accumulation over a run is exact integer
/// arithmetic; floating point enters only at the display boundary.
#[derive(Debug, Clone, Copy)]
pub struct PricingTable;

impl PricingTable {
    /// `(input, output)` rates in nano-USD per token.
    pub fn rates_nanousd(model: ModelId) -> (u64, u64) {
        match model {
            ModelId::Gpt35Turbo => (1_500, 2_000),
            ModelId::Gpt4 => (30_000, 60_000),
            ModelId::Llama2Chat7b => (150, 150),
            ModelId::Llama2Chat13b => (250, 250),
            ModelId::Llama2Chat70b => (1_000, 1_000),
        }
    }

    /// `(input $/M, output $/M)` for a model (display form of the
    /// nano-USD rates).
    pub fn rates(model: ModelId) -> (f64, f64) {
        let (inp, out) = Self::rates_nanousd(model);
        // ds-lint: allow(lossy-cast): display boundary; rates are < 2^53, exact in f64
        (inp as f64 / 1e3, out as f64 / 1e3)
    }

    /// Exact cost in nano-USD for a token mix under a model's rates.
    pub fn cost_nanousd(model: ModelId, prompt_tokens: u64, completion_tokens: u64) -> u128 {
        let (inp, out) = Self::rates_nanousd(model);
        u128::from(prompt_tokens) * u128::from(inp)
            + u128::from(completion_tokens) * u128::from(out)
    }

    /// Cost in USD for a token mix under a model's rates (display form via
    /// the shared `datasculpt_obs::cost` boundary).
    ///
    /// Exact below 2^53 nano-USD (≈ $9M) — far beyond any experiment grid.
    pub fn cost_usd(model: ModelId, prompt_tokens: u64, completion_tokens: u64) -> f64 {
        datasculpt_obs::cost::nanousd_to_usd(Self::cost_nanousd(
            model,
            prompt_tokens,
            completion_tokens,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_footnote_rates() {
        let (inp, out) = PricingTable::rates(ModelId::Gpt35Turbo);
        assert_eq!((inp, out), (1.50, 2.00));
    }

    #[test]
    fn gpt4_much_more_expensive() {
        let c35 = PricingTable::cost_usd(ModelId::Gpt35Turbo, 1_000_000, 1_000_000);
        let c4 = PricingTable::cost_usd(ModelId::Gpt4, 1_000_000, 1_000_000);
        assert!(c4 / c35 > 20.0);
    }

    #[test]
    fn cost_arithmetic() {
        // 38,992 tokens at gpt-3.5 rates is about $0.06 (the paper's
        // headline DataSculpt-Base cost), mostly prompt tokens.
        let cost = PricingTable::cost_usd(ModelId::Gpt35Turbo, 33_000, 6_000);
        assert!((0.05..0.08).contains(&cost), "cost {cost}");
    }

    #[test]
    fn labels_and_names_are_distinct() {
        let labels: std::collections::HashSet<_> = ModelId::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), ModelId::ALL.len());
        let names: std::collections::HashSet<_> =
            ModelId::ALL.iter().map(|m| m.api_name()).collect();
        assert_eq!(names.len(), ModelId::ALL.len());
    }
}
