//! Response cache middleware for any [`ChatModel`].
//!
//! LLM calls dominate the cost of a DataSculpt run (Figures 3–4), and
//! experiment grids re-issue many identical prompts across configurations.
//! [`CachedModel`] wraps any backend and serves repeated requests from
//! memory, keyed on the full request (messages, temperature, `n`). Hits
//! replay the recorded response verbatim — choices *and* token usage — so a
//! cached run is byte-identical to an uncached one, ledgers included.
//!
//! Errors are never cached: a failed call stays retryable.

use crate::error::LlmError;
use crate::message::{ChatRequest, ChatResponse};
use crate::pricing::ModelId;
use crate::ChatModel;
use datasculpt_obs::{Counter, Event, RunObserver, SharedObserver};
use std::collections::{BTreeMap, VecDeque};

/// Full structural identity of a request, used as the cache key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct CacheKey {
    /// `(role, content)` per message; the role is its display name.
    messages: Vec<(&'static str, String)>,
    /// Bit pattern of the sampling temperature (hashable, exact).
    temperature_bits: u64,
    /// Requested sample count.
    n: usize,
}

impl CacheKey {
    fn of(request: &ChatRequest) -> Self {
        CacheKey {
            messages: request
                .messages
                .iter()
                .map(|m| {
                    (
                        match m.role {
                            crate::Role::System => "system",
                            crate::Role::User => "user",
                            crate::Role::Assistant => "assistant",
                        },
                        m.content.clone(),
                    )
                })
                .collect(),
            temperature_bits: request.temperature.to_bits(),
            n: request.n,
        }
    }
}

/// Hit/miss/eviction counters for one [`CachedModel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the cache without touching the backend.
    pub hits: u64,
    /// Requests forwarded to the backend.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of requests served from cache (0 when nothing was asked).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Composable response-caching middleware over any [`ChatModel`].
///
/// ```
/// use datasculpt_llm::{CachedModel, ChatMessage, ChatModel, ChatRequest, ScriptedModel};
///
/// let inner = ScriptedModel::new(vec!["Label: 1".into()]);
/// let mut model = CachedModel::new(inner);
/// let req = ChatRequest::new(vec![ChatMessage::user("Query: great movie")]);
/// let first = model.complete(&req).unwrap();
/// let second = model.complete(&req).unwrap();
/// assert_eq!(first.choices[0].content, second.choices[0].content);
/// assert_eq!(model.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CachedModel<M> {
    inner: M,
    entries: BTreeMap<CacheKey, ChatResponse>,
    /// Insertion order, for FIFO eviction.
    order: VecDeque<CacheKey>,
    capacity: usize,
    stats: CacheStats,
    /// Optional trace observer: hit/miss/eviction counter events mirror the
    /// [`CacheStats`] deltas. Clones share the same underlying observer.
    observer: Option<SharedObserver>,
}

/// Default capacity: comfortably holds every distinct request of a
/// full-scale experiment grid run.
const DEFAULT_CAPACITY: usize = 65_536;

impl<M: ChatModel> CachedModel<M> {
    /// Wrap `inner` with the default capacity.
    pub fn new(inner: M) -> Self {
        Self::with_capacity(inner, DEFAULT_CAPACITY)
    }

    /// Wrap `inner`, keeping at most `capacity` responses (FIFO eviction).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_capacity(inner: M, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be at least 1");
        CachedModel {
            inner,
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            capacity,
            stats: CacheStats::default(),
            observer: None,
        }
    }

    /// Attach a trace observer; every hit/miss/eviction is mirrored to it
    /// as a counter event.
    pub fn with_observer(mut self, observer: SharedObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    fn emit(&mut self, counter: Counter) {
        if let Some(obs) = &mut self.observer {
            obs.on_event(&Event::Counter { counter, delta: 1 });
        }
    }

    /// Counters since construction (or the last [`clear`](Self::clear)).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Alias for [`stats`](Self::stats), matching the shared
    /// cache-reporting surface of the disk-backed
    /// [`DiskCachedModel`](../../datasculpt_store) middleware so ledger
    /// tests can assert hit/miss counts at any layer of the stack.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of responses currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no responses.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all cached responses and reset the counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.stats = CacheStats::default();
    }

    /// The wrapped backend.
    pub fn get_ref(&self) -> &M {
        &self.inner
    }

    /// Unwrap, discarding the cache.
    pub fn into_inner(self) -> M {
        self.inner
    }

    fn insert(&mut self, key: CacheKey, response: ChatResponse) {
        // Re-inserting a present key only refreshes the stored response.
        // Pushing a second `order` entry here would desynchronize the FIFO
        // queue from `entries`: a later eviction would pop a stale key,
        // double-count `evictions`, and could silently evict a live entry.
        if let Some(slot) = self.entries.get_mut(&key) {
            *slot = response;
            return;
        }
        if self.entries.len() == self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.entries.remove(&oldest);
                self.stats.evictions += 1;
                self.emit(Counter::CacheEviction);
            }
        }
        self.order.push_back(key.clone());
        self.entries.insert(key, response);
    }
}

impl<M: ChatModel> ChatModel for CachedModel<M> {
    fn complete(&mut self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        let key = CacheKey::of(request);
        if let Some(response) = self.entries.get(&key).cloned() {
            self.stats.hits += 1;
            self.emit(Counter::CacheHit);
            return Ok(response);
        }
        self.stats.misses += 1;
        self.emit(Counter::CacheMiss);
        let response = self.inner.complete(request)?;
        self.insert(key, response.clone());
        Ok(response)
    }

    /// Batched completion with in-batch deduplication.
    ///
    /// Cached requests are replayed immediately; the remaining *distinct*
    /// misses are forwarded to the backend as one smaller batch (so a
    /// sharded backend underneath still parallelizes them), and duplicates
    /// of a pending miss share the first occurrence's outcome instead of
    /// re-calling the backend. Counters follow the sequential semantics:
    /// the first occurrence of a missing key is a miss, every later
    /// occurrence in the batch a hit. The one divergence from the
    /// sequential default: when the first occurrence *errors*, its in-batch
    /// duplicates share that error rather than re-calling the backend.
    fn complete_batch(&mut self, requests: &[ChatRequest]) -> Vec<Result<ChatResponse, LlmError>> {
        /// Where each request's result comes from: the cache, or slot `i`
        /// of the forwarded miss batch.
        enum Slot {
            Hit(ChatResponse),
            Miss(usize),
        }
        let mut slots = Vec::with_capacity(requests.len());
        let mut miss_keys: Vec<CacheKey> = Vec::new();
        let mut miss_requests: Vec<ChatRequest> = Vec::new();
        let mut pending: BTreeMap<CacheKey, usize> = BTreeMap::new();
        for request in requests {
            let key = CacheKey::of(request);
            if let Some(response) = self.entries.get(&key).cloned() {
                self.stats.hits += 1;
                self.emit(Counter::CacheHit);
                slots.push(Slot::Hit(response));
            } else if let Some(&at) = pending.get(&key) {
                self.stats.hits += 1;
                self.emit(Counter::CacheHit);
                slots.push(Slot::Miss(at));
            } else {
                self.stats.misses += 1;
                self.emit(Counter::CacheMiss);
                pending.insert(key.clone(), miss_requests.len());
                slots.push(Slot::Miss(miss_requests.len()));
                miss_keys.push(key);
                miss_requests.push(request.clone());
            }
        }
        let miss_results = if miss_requests.is_empty() {
            Vec::new()
        } else {
            self.inner.complete_batch(&miss_requests)
        };
        for (key, result) in miss_keys.into_iter().zip(&miss_results) {
            if let Ok(response) = result {
                self.insert(key, response.clone());
            }
        }
        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Hit(response) => Ok(response),
                // A backend honoring the one-result-per-request contract
                // always fills the slot; a short reply maps to an error.
                Slot::Miss(at) => miss_results
                    .get(at)
                    .cloned()
                    .unwrap_or(Err(LlmError::EmptyResponse)),
            })
            .collect()
    }

    fn model_id(&self) -> ModelId {
        self.inner.model_id()
    }

    /// Forwarded to the backend. Note that in-memory *hits* deliberately
    /// do not advance the backend's call index: this cache is transparent
    /// within a single process, and the uncached comparison run never saw
    /// those calls either. Only durable replays (requests answered in a
    /// *previous* process) advance it, via the disk layer.
    fn advance_replayed(&mut self, calls: u64) {
        self.inner.advance_replayed(calls);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ChatMessage;
    use crate::scripted::{FailingModel, ScriptedModel};

    fn req(text: &str) -> ChatRequest {
        ChatRequest::new(vec![ChatMessage::user(text)])
    }

    #[test]
    fn hit_replays_choices_and_usage() {
        let inner = ScriptedModel::new(vec!["alpha".into(), "beta".into()]);
        let mut m = CachedModel::new(inner);
        let first = m.complete(&req("q")).unwrap();
        let second = m.complete(&req("q")).unwrap();
        assert_eq!(first.choices[0].content, second.choices[0].content);
        assert_eq!(first.usage, second.usage);
        assert_eq!(
            m.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        // The scripted backend served only one call.
        assert_eq!(m.get_ref().calls_served(), 1);
    }

    #[test]
    fn key_distinguishes_temperature_n_and_roles() {
        let inner = ScriptedModel::new(vec!["a".into(), "b".into(), "c".into(), "d".into()]);
        let mut m = CachedModel::new(inner);
        let base = req("same");
        m.complete(&base).unwrap();
        m.complete(&base.clone().with_temperature(0.0)).unwrap();
        m.complete(&base.clone().with_n(2)).unwrap();
        m.complete(&ChatRequest::new(vec![ChatMessage::system("same")]))
            .unwrap();
        assert_eq!(m.stats().misses, 4);
        assert_eq!(m.stats().hits, 0);
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let inner = ScriptedModel::new(vec!["r".into()]);
        let mut m = CachedModel::with_capacity(inner, 2);
        m.complete(&req("one")).unwrap();
        m.complete(&req("two")).unwrap();
        m.complete(&req("three")).unwrap(); // evicts "one"
        assert_eq!(m.len(), 2);
        assert_eq!(m.stats().evictions, 1);
        m.complete(&req("two")).unwrap(); // still cached
        assert_eq!(m.stats().hits, 1);
        m.complete(&req("one")).unwrap(); // evicted, refetches
        assert_eq!(m.stats().misses, 4);
    }

    #[test]
    fn capacity_one_interleaved_hits_and_misses() {
        let inner = ScriptedModel::new(vec!["r".into()]);
        let mut m = CachedModel::with_capacity(inner, 1);
        m.complete(&req("a")).unwrap(); // miss, cache = {a}
        m.complete(&req("a")).unwrap(); // hit
        m.complete(&req("b")).unwrap(); // miss, evicts a, cache = {b}
        assert_eq!(m.len(), 1);
        assert_eq!(m.stats().evictions, 1);
        m.complete(&req("b")).unwrap(); // hit
        m.complete(&req("a")).unwrap(); // miss again, evicts b
        assert_eq!(
            m.stats(),
            CacheStats {
                hits: 2,
                misses: 3,
                evictions: 2
            }
        );
        assert_eq!(m.len(), 1);
        assert_eq!(m.get_ref().calls_served(), 3);
    }

    #[test]
    fn eviction_is_fifo_not_lru() {
        // A hit on the oldest entry must NOT refresh its position: "one"
        // is still the first to go when capacity overflows.
        let inner = ScriptedModel::new(vec!["r".into()]);
        let mut m = CachedModel::with_capacity(inner, 2);
        m.complete(&req("one")).unwrap();
        m.complete(&req("two")).unwrap();
        m.complete(&req("one")).unwrap(); // hit; FIFO order unchanged
        m.complete(&req("three")).unwrap(); // evicts "one", not "two"
        assert_eq!(m.stats().evictions, 1);
        m.complete(&req("two")).unwrap();
        assert_eq!(m.stats().hits, 2, "\"two\" survived the eviction");
        m.complete(&req("one")).unwrap();
        assert_eq!(m.stats().misses, 4, "\"one\" was the FIFO victim");
    }

    #[test]
    fn errors_are_not_cached() {
        let inner = FailingModel::fail_on(ScriptedModel::new(vec!["ok".into()]), [0]);
        let mut m = CachedModel::new(inner);
        assert!(m.complete(&req("q")).is_err());
        assert!(m.is_empty());
        // The retry reaches the backend and succeeds.
        let resp = m.complete(&req("q")).unwrap();
        assert_eq!(resp.choices[0].content, "ok");
        assert_eq!(m.stats().misses, 2);
    }

    #[test]
    fn clear_resets_state() {
        let inner = ScriptedModel::new(vec!["r".into()]);
        let mut m = CachedModel::new(inner);
        m.complete(&req("q")).unwrap();
        m.complete(&req("q")).unwrap();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.stats(), CacheStats::default());
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        let _ = CachedModel::with_capacity(ScriptedModel::new(vec!["r".into()]), 0);
    }

    #[test]
    fn reinsert_of_present_key_keeps_fifo_and_entries_in_sync() {
        let inner = ScriptedModel::new(vec!["r".into()]);
        let mut m = CachedModel::with_capacity(inner, 2);
        m.complete(&req("one")).unwrap();
        m.complete(&req("two")).unwrap(); // cache full: {one, two}

        // Re-insert a present key directly, as a batched path may do.
        let key = CacheKey::of(&req("one"));
        let resp = m.entries[&key].clone();
        m.insert(key, resp);
        // Pre-fix this pushed a duplicate `order` entry without growing
        // `entries`, so later evictions popped stale keys.
        assert_eq!(m.len(), 2);
        assert_eq!(m.order.len(), 2, "order queue must mirror entries");
        assert_eq!(m.stats().evictions, 0);
        // The next overflow evicts the true oldest key exactly once.
        m.complete(&req("three")).unwrap();
        assert_eq!(m.stats().evictions, 1);
        assert_eq!(m.len(), 2);
        m.complete(&req("two")).unwrap();
        assert_eq!(m.stats().hits, 1, "\"two\" is still live");
    }

    #[test]
    fn reinsert_at_capacity_one_never_overflows_or_doublecounts() {
        let inner = ScriptedModel::new(vec!["r".into()]);
        let mut m = CachedModel::with_capacity(inner, 1);
        m.complete(&req("a")).unwrap(); // cache = {a}
        let key = CacheKey::of(&req("a"));
        let resp = m.entries[&key].clone();
        m.insert(key, resp); // refresh in place
        m.complete(&req("b")).unwrap(); // evicts "a"
        m.complete(&req("c")).unwrap(); // evicts "b"

        // Pre-fix the stale duplicate made the second eviction pop "a"
        // again: "b" survived past capacity and evictions double-counted.
        assert_eq!(m.len(), 1, "capacity bound respected");
        assert_eq!(m.order.len(), 1);
        assert_eq!(m.stats().evictions, 2);
        m.complete(&req("b")).unwrap();
        assert_eq!(m.stats().hits, 0, "\"b\" was truly evicted");
    }

    #[test]
    fn batch_mixes_hits_misses_and_in_batch_duplicates() {
        let inner = ScriptedModel::new(vec!["r".into()]);
        let mut m = CachedModel::new(inner);
        m.complete(&req("warm")).unwrap(); // pre-cached: 1 miss
        let results = m.complete_batch(&[req("warm"), req("x"), req("x"), req("y")]);
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.is_ok()));
        // "warm" hits; first "x" and "y" miss; second "x" dedups to a hit.
        assert_eq!(
            m.stats(),
            CacheStats {
                hits: 2,
                misses: 3,
                evictions: 0
            }
        );
        // The backend saw only the distinct misses.
        assert_eq!(m.get_ref().calls_served(), 3);
        // Duplicate slots replay the same response.
        assert_eq!(
            results[1].as_ref().unwrap().choices[0].content,
            results[2].as_ref().unwrap().choices[0].content
        );
        // Everything missing got cached.
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn batch_does_not_cache_errors() {
        let inner = FailingModel::fail_on(ScriptedModel::new(vec!["ok".into()]), [0]);
        let mut m = CachedModel::new(inner);
        let results = m.complete_batch(&[req("bad"), req("good")]);
        assert!(results[0].is_err());
        assert!(results[1].is_ok());
        assert_eq!(m.len(), 1, "only the success was cached");
        // The failed key stays a miss on the next batch.
        let retry = m.complete_batch(&[req("bad")]);
        assert!(retry[0].is_ok());
        assert_eq!(m.stats().misses, 3);
    }

    #[test]
    fn observer_sees_hit_miss_and_eviction_counters() {
        use datasculpt_obs::{ManualClock, MetricsRecorder, Tracer};
        let metrics = MetricsRecorder::new();
        let tracer =
            Tracer::new(Box::new(ManualClock::new(1))).with_sink(Box::new(metrics.clone()));
        let inner = ScriptedModel::new(vec!["r".into()]);
        let mut m = CachedModel::with_capacity(inner, 1).with_observer(SharedObserver::new(tracer));
        m.complete(&req("a")).unwrap(); // miss
        m.complete(&req("a")).unwrap(); // hit
        m.complete(&req("b")).unwrap(); // miss + eviction
        let counters = metrics.snapshot().counters;
        assert_eq!(counters["cache_miss"], 2);
        assert_eq!(counters["cache_hit"], 1);
        assert_eq!(counters["cache_eviction"], 1);
        // The observer mirrors, never replaces, the public stats.
        assert_eq!(
            m.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                evictions: 1
            }
        );
    }

    #[test]
    fn hit_rate_reports_fraction() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
