//! A scripted model for unit tests: returns canned responses in order.

use crate::message::{ChatChoice, ChatRequest, ChatResponse};
use crate::pricing::ModelId;
use crate::tokens::approx_token_count;
use crate::usage::TokenUsage;
use crate::ChatModel;

/// Returns pre-baked responses round-robin; counts tokens like a real call.
///
/// Useful for exercising prompt/parse logic in downstream crates without the
/// full simulator.
#[derive(Debug, Clone)]
pub struct ScriptedModel {
    responses: Vec<String>,
    cursor: usize,
    model: ModelId,
}

impl ScriptedModel {
    /// A scripted model that cycles through `responses`.
    ///
    /// # Panics
    /// Panics if `responses` is empty.
    pub fn new(responses: Vec<String>) -> Self {
        assert!(!responses.is_empty(), "scripted model needs responses");
        Self {
            responses,
            cursor: 0,
            model: ModelId::Gpt35Turbo,
        }
    }

    /// Number of calls served so far.
    pub fn calls_served(&self) -> usize {
        self.cursor
    }
}

impl ChatModel for ScriptedModel {
    fn complete(&mut self, request: &ChatRequest) -> ChatResponse {
        let mut choices = Vec::with_capacity(request.n);
        let mut completion_tokens = 0;
        for _ in 0..request.n {
            let content = self.responses[self.cursor % self.responses.len()].clone();
            self.cursor += 1;
            completion_tokens += approx_token_count(&content);
            choices.push(ChatChoice { content });
        }
        ChatResponse {
            choices,
            usage: TokenUsage {
                prompt_tokens: approx_token_count(&request.full_text()),
                completion_tokens,
            },
            model: self.model,
        }
    }

    fn model_id(&self) -> ModelId {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ChatMessage;

    #[test]
    fn cycles_through_responses() {
        let mut m = ScriptedModel::new(vec!["a".into(), "b".into()]);
        let req = ChatRequest::new(vec![ChatMessage::user("hello world")]);
        assert_eq!(m.complete(&req).choices[0].content, "a");
        assert_eq!(m.complete(&req).choices[0].content, "b");
        assert_eq!(m.complete(&req).choices[0].content, "a");
        assert_eq!(m.calls_served(), 3);
    }

    #[test]
    fn n_samples_consume_script() {
        let mut m = ScriptedModel::new(vec!["x".into(), "y".into()]);
        let req = ChatRequest::new(vec![ChatMessage::user("q")]).with_n(2);
        let resp = m.complete(&req);
        assert_eq!(resp.choices.len(), 2);
        assert_eq!(resp.choices[1].content, "y");
        assert!(resp.usage.prompt_tokens > 0);
        assert_eq!(resp.usage.completion_tokens, 2);
    }
}
