//! Scripted and fault-injecting models for unit tests.

use crate::error::LlmError;
use crate::message::{ChatChoice, ChatRequest, ChatResponse};
use crate::pricing::ModelId;
use crate::tokens::approx_token_count;
use crate::usage::TokenUsage;
use crate::ChatModel;

/// Returns pre-baked responses round-robin; counts tokens like a real call.
///
/// Useful for exercising prompt/parse logic in downstream crates without the
/// full simulator.
#[derive(Debug, Clone)]
pub struct ScriptedModel {
    responses: Vec<String>,
    cursor: usize,
    model: ModelId,
}

impl ScriptedModel {
    /// A scripted model that cycles through `responses`.
    ///
    /// # Panics
    /// Panics if `responses` is empty.
    pub fn new(responses: Vec<String>) -> Self {
        assert!(!responses.is_empty(), "scripted model needs responses");
        Self {
            responses,
            cursor: 0,
            model: ModelId::Gpt35Turbo,
        }
    }

    /// Number of calls served so far.
    pub fn calls_served(&self) -> usize {
        self.cursor
    }
}

impl ChatModel for ScriptedModel {
    fn complete(&mut self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        let mut choices = Vec::with_capacity(request.n);
        let mut completion_tokens = 0;
        for _ in 0..request.n {
            let slot = self.cursor % self.responses.len().max(1);
            let Some(content) = self.responses.get(slot).cloned() else {
                return Err(LlmError::EmptyResponse);
            };
            self.cursor += 1;
            completion_tokens += approx_token_count(&content);
            choices.push(ChatChoice { content });
        }
        Ok(ChatResponse {
            choices,
            usage: TokenUsage {
                prompt_tokens: approx_token_count(&request.full_text()),
                completion_tokens,
            },
            model: self.model,
        })
    }

    fn model_id(&self) -> ModelId {
        self.model
    }

    /// A replayed call consumes one scripted response, as if served live.
    fn advance_replayed(&mut self, calls: u64) {
        self.cursor = self.cursor.saturating_add(calls as usize);
    }
}

/// Fault-injecting wrapper: fails calls on a fixed schedule, forwarding the
/// rest to the wrapped model.
///
/// Failed calls never reach the backend (they model transport-level
/// failures), so the inner model's state does not advance on them.
#[derive(Debug, Clone)]
pub struct FailingModel<M> {
    inner: M,
    fail_indices: Vec<usize>,
    period: Option<usize>,
    error: LlmError,
    calls: usize,
}

impl<M: ChatModel> FailingModel<M> {
    /// Fail exactly the calls whose 0-based index is in `indices`.
    pub fn fail_on(inner: M, indices: impl IntoIterator<Item = usize>) -> Self {
        FailingModel {
            inner,
            fail_indices: indices.into_iter().collect(),
            period: None,
            error: LlmError::Transport("injected failure".into()),
            calls: 0,
        }
    }

    /// Fail every `period`-th call (indices `period - 1`, `2 * period - 1`, …).
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn fail_every(inner: M, period: usize) -> Self {
        assert!(period > 0, "failure period must be at least 1");
        FailingModel {
            inner,
            fail_indices: Vec::new(),
            period: Some(period),
            error: LlmError::Transport("injected failure".into()),
            calls: 0,
        }
    }

    /// Use `error` instead of the default transport error on failing calls.
    pub fn with_error(mut self, error: LlmError) -> Self {
        self.error = error;
        self
    }

    /// Total calls attempted (failed and served).
    pub fn calls_attempted(&self) -> usize {
        self.calls
    }

    /// The wrapped model.
    pub fn get_ref(&self) -> &M {
        &self.inner
    }

    fn should_fail(&self, idx: usize) -> bool {
        match self.period {
            Some(p) => idx % p == p - 1,
            None => self.fail_indices.contains(&idx),
        }
    }
}

impl<M: ChatModel> ChatModel for FailingModel<M> {
    fn complete(&mut self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        let idx = self.calls;
        self.calls += 1;
        if self.should_fail(idx) {
            Err(self.error.clone())
        } else {
            self.inner.complete(request)
        }
    }

    fn model_id(&self) -> ModelId {
        self.inner.model_id()
    }

    /// Replays count toward the failure schedule exactly as the original
    /// live calls did, so a resumed schedule stays aligned.
    fn advance_replayed(&mut self, calls: u64) {
        self.calls += calls as usize;
        self.inner.advance_replayed(calls);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ChatMessage;

    fn req(text: &str) -> ChatRequest {
        ChatRequest::new(vec![ChatMessage::user(text)])
    }

    #[test]
    fn cycles_through_responses() {
        let mut m = ScriptedModel::new(vec!["a".into(), "b".into()]);
        let r = req("hello world");
        assert_eq!(m.complete(&r).unwrap().choices[0].content, "a");
        assert_eq!(m.complete(&r).unwrap().choices[0].content, "b");
        assert_eq!(m.complete(&r).unwrap().choices[0].content, "a");
        assert_eq!(m.calls_served(), 3);
    }

    #[test]
    fn n_samples_consume_script() {
        let mut m = ScriptedModel::new(vec!["x".into(), "y".into()]);
        let r = req("q").with_n(2);
        let resp = m.complete(&r).unwrap();
        assert_eq!(resp.choices.len(), 2);
        assert_eq!(resp.choices[1].content, "y");
        assert!(resp.usage.prompt_tokens > 0);
        assert_eq!(resp.usage.completion_tokens, 2);
    }

    #[test]
    fn batch_preserves_order_and_state() {
        let mut m = ScriptedModel::new(vec!["a".into(), "b".into(), "c".into()]);
        let reqs = vec![req("1"), req("2"), req("3")];
        let results = m.complete_batch(&reqs);
        let texts: Vec<_> = results
            .into_iter()
            .map(|r| r.unwrap().choices[0].content.clone())
            .collect();
        assert_eq!(texts, ["a", "b", "c"]);
    }

    #[test]
    fn fail_on_schedule_skips_backend() {
        let mut m = FailingModel::fail_on(ScriptedModel::new(vec!["ok".into()]), [1, 3]);
        assert!(m.complete(&req("a")).is_ok());
        assert_eq!(
            m.complete(&req("b")),
            Err(LlmError::Transport("injected failure".into()))
        );
        assert!(m.complete(&req("c")).is_ok());
        assert!(m.complete(&req("d")).is_err());
        assert_eq!(m.calls_attempted(), 4);
        // The two failed calls never consumed the script.
        assert_eq!(m.get_ref().calls_served(), 2);
    }

    #[test]
    fn fail_every_period() {
        let mut m = FailingModel::fail_every(ScriptedModel::new(vec!["ok".into()]), 3);
        let outcomes: Vec<bool> = (0..6).map(|_| m.complete(&req("q")).is_ok()).collect();
        assert_eq!(outcomes, [true, true, false, true, true, false]);
    }

    #[test]
    fn custom_error_is_returned() {
        let mut m = FailingModel::fail_on(ScriptedModel::new(vec!["ok".into()]), [0])
            .with_error(LlmError::RateLimited);
        assert_eq!(m.complete(&req("q")), Err(LlmError::RateLimited));
    }

    #[test]
    fn batch_isolates_failures() {
        let mut m = FailingModel::fail_on(ScriptedModel::new(vec!["ok".into()]), [1]);
        let results = m.complete_batch(&[req("1"), req("2"), req("3")]);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }

    #[test]
    #[should_panic(expected = "period must be at least 1")]
    fn zero_period_rejected() {
        let _ = FailingModel::fail_every(ScriptedModel::new(vec!["ok".into()]), 0);
    }
}
