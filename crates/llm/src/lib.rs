//! LLM substrate for the DataSculpt reproduction.
//!
//! The paper prompts the OpenAI and Anyscale chat APIs. Those services are
//! unavailable offline, so this crate provides:
//!
//! * the provider-agnostic chat surface ([`ChatModel`], [`ChatRequest`],
//!   [`ChatResponse`]) that a real HTTP client could implement verbatim,
//! * deterministic approximate token counting and the per-model [`pricing`]
//!   table used to reproduce Figures 3–4,
//! * a cumulative [`UsageLedger`],
//! * [`SimulatedLlm`]: a seedable simulator that *reads the actual prompt
//!   text*, extracts the query instance, scores its n-grams against a
//!   noise-corrupted view of the dataset's generative model (its "world
//!   knowledge"), and emits keywords + label (+ chain-of-thought) exactly in
//!   the output format of Figure 2.
//!
//! Per-model fidelity profiles ([`ModelProfile`]) reproduce the relative
//! behaviour of GPT-4 / GPT-3.5 / Llama-2-CHAT observed in Table 3: better
//! models have less knowledge corruption and fewer formatting failures;
//! small Llama models occasionally hallucinate artificial examples instead
//! of answering (§4.3).

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod error;
pub mod message;
pub mod pricing;
pub mod profile;
pub mod retry;
pub mod scripted;
pub mod simulated;
pub mod tokens;
pub mod usage;

pub use cache::{CacheStats, CachedModel};
pub use error::LlmError;
pub use message::{ChatChoice, ChatMessage, ChatRequest, ChatResponse, Role};
pub use pricing::{ModelId, PricingTable};
pub use profile::ModelProfile;
pub use retry::RetryModel;
pub use scripted::{FailingModel, ScriptedModel};
pub use simulated::SimulatedLlm;
pub use tokens::approx_token_count;
pub use usage::{TokenUsage, UsageLedger};

/// A chat completion endpoint.
///
/// `complete` is `&mut self` because implementations keep internal state (a
/// deterministic call counter for the simulator, a connection pool for a
/// real client).
pub trait ChatModel {
    /// Run one chat completion request, returning `request.n` choices.
    fn complete(&mut self, request: &ChatRequest) -> Result<ChatResponse, LlmError>;

    /// Run a batch of requests, returning one result per request in order.
    ///
    /// The default implementation completes them sequentially; a real HTTP
    /// client would override this with a pipelined or bulk endpoint. One
    /// failed request does not abort the rest of the batch.
    fn complete_batch(&mut self, requests: &[ChatRequest]) -> Vec<Result<ChatResponse, LlmError>> {
        requests.iter().map(|r| self.complete(r)).collect()
    }

    /// The model identity (for pricing and reporting).
    fn model_id(&self) -> ModelId;

    /// Inform the model that `calls` requests were replayed from durable
    /// storage instead of reaching it.
    ///
    /// Stateful backends whose responses depend on a logical call index
    /// (notably [`SimulatedLlm`], a pure function of `(seed, call index,
    /// request)`) must advance that index so a resumed run issues the
    /// *same* post-crash requests at the *same* indices as an
    /// uninterrupted one. Middleware forwards to its inner model; true
    /// stateless backends (a real HTTP client) keep the default no-op.
    fn advance_replayed(&mut self, _calls: u64) {}
}

/// Boxed model forwarding, so heterogeneous backends (a serving daemon's
/// per-job factories, test harnesses injecting crash wrappers) can be
/// passed anywhere a concrete `ChatModel` is expected. Every method
/// forwards, preserving the inner model's `complete_batch` override.
impl<M: ChatModel + ?Sized> ChatModel for Box<M> {
    fn complete(&mut self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        (**self).complete(request)
    }

    fn complete_batch(&mut self, requests: &[ChatRequest]) -> Vec<Result<ChatResponse, LlmError>> {
        (**self).complete_batch(requests)
    }

    fn model_id(&self) -> ModelId {
        (**self).model_id()
    }

    fn advance_replayed(&mut self, calls: u64) {
        (**self).advance_replayed(calls);
    }
}
