//! Error type for chat completion calls.

/// Why a chat completion call failed.
///
/// The offline simulator never fails, but the trait surface is written for a
/// real HTTP client: callers must decide per call whether to retry, skip, or
/// abort. [`FailingModel`](crate::FailingModel) injects these in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlmError {
    /// The request never reached the backend (DNS, connect, TLS, timeout).
    Transport(String),
    /// The backend throttled the request (HTTP 429).
    RateLimited,
    /// The backend answered 200 but the body carried no choices.
    EmptyResponse,
    /// The backend rejected the request outright.
    Api {
        /// HTTP status code.
        status: u16,
        /// Provider error message.
        message: String,
    },
}

impl LlmError {
    /// Whether retrying the same request can plausibly succeed.
    ///
    /// Transport failures and throttling are transient; an empty body or an
    /// outright API rejection will repeat, so middleware like
    /// [`RetryModel`](crate::RetryModel) must not burn budget on them.
    pub fn is_retryable(&self) -> bool {
        matches!(self, LlmError::Transport(_) | LlmError::RateLimited)
    }
}

impl std::fmt::Display for LlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlmError::Transport(detail) => write!(f, "transport error: {detail}"),
            LlmError::RateLimited => write!(f, "rate limited by backend"),
            LlmError::EmptyResponse => write!(f, "backend returned no choices"),
            LlmError::Api { status, message } => {
                write!(f, "backend rejected request ({status}): {message}")
            }
        }
    }
}

impl std::error::Error for LlmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases = [
            (
                LlmError::Transport("connection refused".into()),
                "transport error: connection refused",
            ),
            (LlmError::RateLimited, "rate limited by backend"),
            (LlmError::EmptyResponse, "backend returned no choices"),
            (
                LlmError::Api {
                    status: 400,
                    message: "bad request".into(),
                },
                "backend rejected request (400): bad request",
            ),
        ];
        for (err, text) in cases {
            assert_eq!(err.to_string(), text);
        }
    }

    #[test]
    fn only_transient_errors_are_retryable() {
        assert!(LlmError::Transport("timeout".into()).is_retryable());
        assert!(LlmError::RateLimited.is_retryable());
        assert!(!LlmError::EmptyResponse.is_retryable());
        assert!(!LlmError::Api {
            status: 400,
            message: "bad request".into(),
        }
        .is_retryable());
    }
}
