//! PWS evaluation: LF statistics and end-model training/scoring.
//!
//! Computes exactly the five metric families of Tables 2–5: **#LFs**,
//! **LF Acc.** (mean per-LF accuracy on the train split, where ground truth
//! is available), **LF Cov.** (mean per-LF coverage), **Total Cov.**
//! (fraction of train covered by any LF), and **EM Acc/F1** (end-model test
//! accuracy, or positive-class F1 for the imbalanced datasets).
//!
//! The end-model tail mirrors the WRENCH configuration the paper uses:
//! label model → probabilistic labels on the train split → default-class
//! completion (§3.6) → logistic regression on text features → test metric.

use crate::lfset::LfSet;
use datasculpt_data::{Metric, Split, TextDataset};
use datasculpt_endmodel::logreg::SparseRow;
use datasculpt_endmodel::{accuracy, f1_positive, MlpClassifier, SoftmaxRegression, TrainConfig};
use datasculpt_labelmodel::{
    LabelMatrix, LabelModel, MajorityVote, MetalConfig, MetalModel, TripletModel,
};
use datasculpt_text::HashedTfIdf;

/// The LF-set statistics of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LfStats {
    /// Number of LFs.
    pub n_lfs: usize,
    /// Mean per-LF accuracy on the train split (`None` when train ground
    /// truth is unavailable — Spouse).
    pub lf_accuracy: Option<f64>,
    /// Mean per-LF coverage on the train split.
    pub lf_coverage: f64,
    /// Fraction of train instances covered by at least one LF.
    pub total_coverage: f64,
}

/// LF statistics straight from a weak-label matrix.
pub fn lf_stats_from_matrix(
    matrix: &LabelMatrix,
    train_labels: Option<&[Option<usize>]>,
) -> LfStats {
    let lf_accuracy = train_labels.and_then(|labels| {
        let accs: Vec<f64> = (0..matrix.cols())
            .filter_map(|j| matrix.lf_accuracy(j, labels))
            .collect();
        if accs.is_empty() {
            None
        } else {
            Some(accs.iter().sum::<f64>() / accs.len() as f64)
        }
    });
    LfStats {
        n_lfs: matrix.cols(),
        lf_accuracy,
        lf_coverage: matrix.mean_lf_coverage(),
        total_coverage: matrix.total_coverage(),
    }
}

/// End-model evaluation configuration.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Hashed TF-IDF dimensionality (the end model trains on the sparse
    /// TF-IDF rows directly).
    pub feature_dim: usize,
    /// N-gram order of the end-model features (1 by default; higher orders
    /// add one-off n-gram noise dimensions a linear model overfits).
    pub feature_order: usize,
    /// Which label model aggregates the weak votes.
    pub label_model: LabelModelKind,
    /// Which downstream classifier is trained on the weak labels.
    pub end_model: EndModelKind,
    /// Train the end model on hard (argmax) label-model outputs instead of
    /// the soft posteriors (the WRENCH default; soft targets dilute
    /// minority-class supervision on imbalanced tasks).
    pub hard_targets: bool,
    /// Balance end-model sample weights by weak-label class frequency.
    pub balanced_weights: bool,
    /// End-model training hyper-parameters.
    pub train: TrainConfig,
    /// Label-model EM iteration cap.
    pub label_model_iters: usize,
    /// Seed for featurization and training.
    pub seed: u64,
    /// Worker threads for the label-model E-step and prediction passes
    /// (1 = serial). Results are bit-identical at every thread count.
    pub threads: usize,
}

/// Which downstream classifier [`evaluate_matrix`] trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndModelKind {
    /// Logistic regression (the paper/WRENCH configuration).
    LogReg,
    /// One-hidden-layer MLP with the given hidden width (a WRENCH-style
    /// alternative that captures feature interactions).
    Mlp {
        /// Hidden-layer width.
        hidden: usize,
    },
}

/// Which label model [`evaluate_matrix`] uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LabelModelKind {
    /// The MeTaL-style EM model (paper configuration).
    Metal(MetalConfig),
    /// Unweighted majority vote.
    Majority,
    /// Closed-form triplet estimator.
    Triplet,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            feature_dim: 32_768,
            feature_order: 1,
            label_model: LabelModelKind::Metal(MetalConfig::default()),
            end_model: EndModelKind::LogReg,
            hard_targets: true,
            balanced_weights: true,
            // Tuned on oracle (ground-truth-label) training: unigram
            // TF-IDF with a hot learning rate and no L2 generalizes best
            // on these corpora; see EXPERIMENTS.md.
            train: TrainConfig {
                epochs: 150,
                learning_rate: 5.0,
                l2: 0.0,
                batch_size: 64,
                seed: 0,
            },
            label_model_iters: 50,
            seed: 0,
            threads: 1,
        }
    }
}

/// The full evaluation of one LF set / weak-label matrix.
#[derive(Debug, Clone)]
pub struct PwsEvaluation {
    /// LF statistics on the train split.
    pub lf_stats: LfStats,
    /// End-model test score.
    pub end_metric: f64,
    /// Which metric `end_metric` is.
    pub metric: Metric,
    /// Label-model per-LF accuracy estimates (diagnostic).
    pub lf_accuracy_estimates: Vec<f64>,
}

/// Evaluate an [`LfSet`] end-to-end.
pub fn evaluate_lf_set(
    dataset: &TextDataset,
    lf_set: &LfSet,
    config: &EvalConfig,
) -> PwsEvaluation {
    evaluate_matrix(dataset, lf_set.train_matrix(), config)
}

/// Evaluate a raw weak-label matrix end-to-end (used by PromptedLF, whose
/// "LFs" are per-template annotation columns rather than keyword LFs).
pub fn evaluate_matrix(
    dataset: &TextDataset,
    matrix: &LabelMatrix,
    config: &EvalConfig,
) -> PwsEvaluation {
    let train_labels = dataset
        .spec
        .train_labels_available
        .then(|| dataset.train.labels_opt());
    let lf_stats = lf_stats_from_matrix(matrix, train_labels.as_deref());
    let n_classes = dataset.n_classes();
    let test_truth: Vec<usize> = dataset.test.labels();

    // Degenerate LF set: score the constant default/majority prediction.
    if matrix.cols() == 0 || matrix.total_coverage() == 0.0 {
        let fallback = dataset.spec.default_class.unwrap_or(0);
        let pred = vec![fallback; test_truth.len()];
        return PwsEvaluation {
            lf_stats,
            end_metric: score(&pred, &test_truth, dataset.spec.metric),
            metric: dataset.spec.metric,
            lf_accuracy_estimates: Vec::new(),
        };
    }

    // Label model (MeTaL-style EM by default) with the validation class
    // balance.
    let balance = dataset.valid.class_distribution(n_classes);
    let (mut probs, lf_accuracy_estimates) = match config.label_model {
        LabelModelKind::Metal(metal_config) => {
            let mut lm = MetalModel::new()
                .with_config(metal_config)
                .with_class_balance(balance)
                .with_max_iter(config.label_model_iters)
                .with_pool(datasculpt_exec::Pool::new(config.threads));
            lm.fit(matrix, n_classes);
            (lm.predict_proba(matrix), lm.accuracies().to_vec())
        }
        LabelModelKind::Majority => {
            let mut lm = MajorityVote::new();
            lm.fit(matrix, n_classes);
            (lm.predict_proba(matrix), Vec::new())
        }
        LabelModelKind::Triplet => {
            let mut lm = TripletModel::new();
            lm.fit(matrix, n_classes);
            (lm.predict_proba(matrix), lm.accuracies().to_vec())
        }
    };
    if let Some(dc) = dataset.spec.default_class {
        probs.apply_default_class(dc);
    }
    let covered = probs.covered_indices();

    // Features: sparse hashed TF-IDF rows, fit on the train split. The
    // end model trains on the sparse rows directly (no lossy projection).
    // Unigrams only: higher orders add one-off n-gram noise dimensions
    // that a linear model overfits (see EXPERIMENTS.md).
    let mut tfidf = HashedTfIdf::new(config.feature_dim, config.feature_order);
    tfidf.fit(dataset.train.iter().map(|i| i.tokens.as_slice()));
    let feature_dim = config.feature_dim;
    let sparse = |split: &Split, indices: Option<&[usize]>| -> Vec<SparseRow> {
        let to_row = |inst: &datasculpt_data::Instance| -> SparseRow {
            let mut row: SparseRow = tfidf
                .transform_sparse(&inst.tokens)
                .into_iter()
                .map(|(d, v)| (d as u32, v))
                .collect();
            // Relation tasks: word order matters — "married" linking the
            // queried pair is a different signal from "married" elsewhere
            // (the §3.1 "A marry C" problem). BERT sees this implicitly;
            // our bag-of-words substitute gets explicit window features:
            // n-grams inside the anchor span, hashed into their own
            // buckets.
            append_window_features(inst, feature_dim, &mut row);
            row
        };
        match indices {
            Some(idx) => idx
                .iter()
                .filter_map(|&i| split.instances.get(i))
                .map(&to_row)
                .collect(),
            None => split.iter().map(to_row).collect(),
        }
    };

    let x_train = sparse(&dataset.train, Some(&covered));
    // WRENCH-style end-model training: hard labels from the label-model
    // posterior by default (soft targets dilute minority-class supervision
    // on the imbalanced datasets; see EXPERIMENTS.md).
    let targets: Vec<Vec<f64>> = covered
        .iter()
        .map(|&i| {
            let row = probs.row(i);
            if !config.hard_targets {
                return row.to_vec();
            }
            let mut best = 0;
            let mut best_p = f64::NEG_INFINITY;
            for (c, &p) in row.iter().enumerate() {
                if p > best_p {
                    best = c;
                    best_p = p;
                }
            }
            let mut t = vec![0.0; n_classes];
            if let Some(slot) = t.get_mut(best) {
                *slot = 1.0;
            }
            t
        })
        .collect();

    // Balanced sample weights (scikit-learn's `class_weight="balanced"`,
    // computed from the weak labels): on imbalanced tasks (SMS, Spouse)
    // plain cross-entropy starves the minority class that the F1 metric
    // measures.
    let weights: Option<Vec<f64>> = config.balanced_weights.then(|| {
        let hard: Vec<usize> = targets
            .iter()
            .map(|t| {
                let mut best = 0;
                let mut best_p = f64::NEG_INFINITY;
                for (c, &p) in t.iter().enumerate() {
                    if p > best_p {
                        best = c;
                        best_p = p;
                    }
                }
                best
            })
            .collect();
        let mut counts = vec![0usize; n_classes];
        for &h in &hard {
            if let Some(slot) = counts.get_mut(h) {
                *slot += 1;
            }
        }
        let n_cov = covered.len().max(1) as f64;
        hard.iter()
            .map(|&h| {
                let cnt = counts.get(h).copied().unwrap_or(0).max(1);
                n_cov / (n_classes as f64 * cnt as f64)
            })
            .collect()
    });

    let x_test = sparse(&dataset.test, None);
    let pred = match config.end_model {
        EndModelKind::LogReg => {
            let mut end_model = SoftmaxRegression::new(config.feature_dim, n_classes);
            end_model.fit_sparse(&x_train, &targets, weights.as_deref(), &config.train);
            end_model.predict_sparse(&x_test)
        }
        EndModelKind::Mlp { hidden } => {
            let mut end_model =
                MlpClassifier::new(config.feature_dim, hidden, n_classes, config.seed);
            // The MLP takes smaller steps than the linear model's hot
            // learning rate; fewer epochs keep cost comparable.
            let train = TrainConfig {
                learning_rate: (config.train.learning_rate * 0.1).min(0.5),
                epochs: config.train.epochs.min(30),
                ..config.train
            };
            end_model.fit_sparse(&x_train, &targets, weights.as_deref(), &train);
            end_model.predict_sparse(&x_test)
        }
    };

    PwsEvaluation {
        lf_stats,
        end_metric: score(&pred, &test_truth, dataset.spec.metric),
        metric: dataset.spec.metric,
        lf_accuracy_estimates,
    }
}

/// Append window features for a relation instance: n-grams found inside
/// the anchor span between `[a]` and `[b]` are hashed (salted) into the
/// same feature space, and the row is re-normalized. No-op for plain
/// classification instances.
fn append_window_features(inst: &datasculpt_data::Instance, dim: usize, row: &mut SparseRow) {
    use crate::lf::ANCHOR_WINDOW;
    let Some(marked) = &inst.marked_tokens else {
        return;
    };
    let ia = marked.iter().position(|t| t == "[a]");
    let ib = marked.iter().position(|t| t == "[b]");
    let (Some(ia), Some(ib)) = (ia, ib) else {
        return;
    };
    let (lo, hi) = if ia < ib { (ia, ib) } else { (ib, ia) };
    if hi - lo > ANCHOR_WINDOW || hi - lo < 2 {
        return;
    }
    let grams = datasculpt_text::extract_ngrams(marked.get(lo + 1..hi).unwrap_or(&[]), 2);
    if grams.is_empty() {
        return;
    }
    // Window features carry the same magnitude as an average text feature.
    let mean_mag = row.iter().map(|(_, v)| v.abs()).sum::<f32>() / row.len().max(1) as f32;
    let weight = mean_mag.max(0.1);
    for g in grams {
        let bucket = (datasculpt_text::rng::hash_str(&format!("window:{g}")) >> 1) as usize % dim;
        row.push((bucket as u32, weight));
    }
    // Re-normalize the combined vector.
    let norm = row.iter().map(|(_, v)| v * v).sum::<f32>().sqrt();
    if norm > 0.0 {
        for (_, v) in row.iter_mut() {
            *v /= norm;
        }
    }
}

fn score(pred: &[usize], truth: &[usize], metric: Metric) -> f64 {
    match metric {
        Metric::Accuracy => accuracy(pred, truth),
        Metric::F1 => f1_positive(pred, truth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterConfig;
    use crate::lf::KeywordLf;
    use datasculpt_data::DatasetName;

    fn eval_cfg() -> EvalConfig {
        EvalConfig {
            feature_dim: 8192,
            ..EvalConfig::default()
        }
    }

    #[test]
    fn good_lfs_yield_usable_end_model() {
        let d = DatasetName::Imdb.load_scaled(11, 0.08);
        let mut set = LfSet::new(&d, FilterConfig::all());
        for (kw, y) in [
            ("great", 1),
            ("excellent", 1),
            ("wonderful", 1),
            ("funny", 1),
            ("loved it", 1),
            ("horrible", 0),
            ("terrible", 0),
            ("boring", 0),
            ("awful", 0),
            ("waste of time", 0),
        ] {
            set.try_add(KeywordLf::new(kw, y));
        }
        assert!(set.len() >= 8, "most seed LFs accepted, got {}", set.len());
        let eval = evaluate_lf_set(&d, &set, &eval_cfg());
        assert!(eval.end_metric > 0.7, "end accuracy {}", eval.end_metric);
        let stats = eval.lf_stats;
        assert!(stats.lf_accuracy.expect("imdb has train labels") > 0.65);
        assert!(stats.total_coverage > 0.3, "{}", stats.total_coverage);
        assert!(stats.lf_coverage < stats.total_coverage);
    }

    #[test]
    fn empty_lf_set_falls_back_to_constant() {
        let d = DatasetName::Youtube.load_scaled(3, 0.05);
        let set = LfSet::new(&d, FilterConfig::all());
        let eval = evaluate_lf_set(&d, &set, &eval_cfg());
        assert_eq!(eval.lf_stats.n_lfs, 0);
        assert!(eval.end_metric > 0.0); // constant class-0 accuracy
    }

    #[test]
    fn spouse_stats_hide_lf_accuracy_and_use_f1() {
        let d = DatasetName::Spouse.load_scaled(3, 0.01);
        let mut set = LfSet::new(&d, FilterConfig::all());
        set.try_add(KeywordLf::anchored("married", 1));
        set.try_add(KeywordLf::new("wedding", 1));
        let eval = evaluate_lf_set(&d, &set, &eval_cfg());
        assert!(eval.lf_stats.lf_accuracy.is_none(), "train GT unavailable");
        assert_eq!(eval.metric, Metric::F1);
    }

    #[test]
    fn stats_from_matrix_handles_missing_labels() {
        use datasculpt_labelmodel::ABSTAIN;
        let m = LabelMatrix::from_columns(&[vec![1, ABSTAIN, 0, 1]], 4);
        let labels = vec![Some(1), None, Some(0), Some(0)];
        let s = lf_stats_from_matrix(&m, Some(&labels));
        assert_eq!(s.n_lfs, 1);
        assert!((s.lf_accuracy.expect("labels") - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.lf_coverage - 0.75).abs() < 1e-12);
        assert!((s.total_coverage - 0.75).abs() < 1e-12);
        let s2 = lf_stats_from_matrix(&m, None);
        assert!(s2.lf_accuracy.is_none());
    }
}
