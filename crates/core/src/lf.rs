//! Keyword label functions (§3.1).
//!
//! A keyword LF `λ_{k,c}` labels a passage as class `c` if it contains the
//! n-gram `k` (unigram, bigram, or trigram). For relation-classification
//! tasks the LF is *entity-anchored*: it additionally requires the keyword
//! to appear in a short window between the two entity markers, which is how
//! `[A] marry [B]` distinguishes the queried pair from a third person
//! (the "A marry C" problem of §3.1).

use datasculpt_data::{Instance, Label, Split};
use datasculpt_labelmodel::ABSTAIN;
use datasculpt_text::ngram::{contains_ngram, ngram_order, MAX_NGRAM_ORDER};

/// Maximum token distance between `[a]` and `[b]` for an anchored LF to
/// consider the pair linked.
pub const ANCHOR_WINDOW: usize = 10;

/// A keyword label function.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KeywordLf {
    /// Canonical lowercase space-joined n-gram.
    pub keyword: String,
    /// The class this LF votes for when active.
    pub label: Label,
    /// Entity anchoring (relation tasks): the keyword must fall inside the
    /// window between the `[a]` and `[b]` markers.
    pub anchored: bool,
}

impl KeywordLf {
    /// A plain keyword LF.
    pub fn new(keyword: impl Into<String>, label: Label) -> Self {
        Self {
            keyword: keyword.into(),
            label,
            anchored: false,
        }
    }

    /// An entity-anchored keyword LF.
    pub fn anchored(keyword: impl Into<String>, label: Label) -> Self {
        Self {
            keyword: keyword.into(),
            label,
            anchored: true,
        }
    }

    /// Word count of the keyword.
    pub fn order(&self) -> usize {
        ngram_order(&self.keyword)
    }

    /// Whether the keyword is structurally valid (the validity filter's
    /// n-gram check, §3.5).
    pub fn is_valid_ngram(&self) -> bool {
        let order = self.order();
        (1..=MAX_NGRAM_ORDER).contains(&order) && self.keyword.split(' ').all(|w| !w.is_empty())
    }

    /// Whether the LF fires on an instance.
    pub fn fires(&self, instance: &Instance) -> bool {
        let tokens = instance.match_tokens();
        if self.anchored {
            anchored_fires(tokens, &self.keyword)
        } else {
            contains_ngram(tokens, &self.keyword)
        }
    }

    /// The LF's vote on an instance.
    pub fn vote(&self, instance: &Instance) -> i32 {
        if self.fires(instance) {
            self.label as i32
        } else {
            ABSTAIN
        }
    }

    /// The LF's vote column over a split.
    pub fn apply(&self, split: &Split) -> Vec<i32> {
        split.iter().map(|inst| self.vote(inst)).collect()
    }

    /// Human-readable name, e.g. `"great→1"` or `"[A] married [B]→1"`.
    pub fn name(&self) -> String {
        if self.anchored {
            format!("[A] {} [B]→{}", self.keyword, self.label)
        } else {
            format!("{}→{}", self.keyword, self.label)
        }
    }
}

impl std::fmt::Display for KeywordLf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Anchored activation: both markers present, within [`ANCHOR_WINDOW`] of
/// each other, and the keyword contained in the tokens strictly between
/// them (either marker order).
pub fn anchored_fires(tokens: &[String], keyword: &str) -> bool {
    let ia = tokens.iter().position(|t| t == "[a]");
    let ib = tokens.iter().position(|t| t == "[b]");
    let (Some(ia), Some(ib)) = (ia, ib) else {
        return false;
    };
    let (lo, hi) = if ia < ib { (ia, ib) } else { (ib, ia) };
    if hi - lo > ANCHOR_WINDOW || hi - lo < 2 {
        return false;
    }
    contains_ngram(tokens.get(lo + 1..hi).unwrap_or(&[]), keyword)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(text: &str) -> Instance {
        let tokens = datasculpt_text::tokenize(text);
        Instance {
            id: 0,
            text: text.to_string(),
            tokens,
            marked_tokens: None,
            entities: None,
            label: None,
        }
    }

    fn relation_inst(marked: &[&str]) -> Instance {
        Instance {
            id: 0,
            text: marked.join(" "),
            tokens: marked.iter().map(|s| s.to_string()).collect(),
            marked_tokens: Some(marked.iter().map(|s| s.to_string()).collect()),
            entities: Some(("a a".into(), "b b".into())),
            label: None,
        }
    }

    #[test]
    fn plain_lf_fires_on_containment() {
        let lf = KeywordLf::new("waste of time", 0);
        assert!(lf.fires(&inst("what a waste of time this was")));
        assert!(!lf.fires(&inst("time well spent")));
        assert_eq!(lf.vote(&inst("waste of time")), 0);
        assert_eq!(lf.vote(&inst("fine")), ABSTAIN);
    }

    #[test]
    fn validity_checks_order() {
        assert!(KeywordLf::new("great", 1).is_valid_ngram());
        assert!(KeywordLf::new("so great", 1).is_valid_ngram());
        assert!(KeywordLf::new("one of the best", 1).order() == 4);
        assert!(!KeywordLf::new("one of the best", 1).is_valid_ngram());
        assert!(!KeywordLf::new("", 1).is_valid_ngram());
    }

    #[test]
    fn anchored_requires_keyword_between_markers() {
        let lf = KeywordLf::anchored("married", 1);
        assert!(lf.fires(&relation_inst(&["[a]", "married", "[b]", "yesterday"])));
        // Keyword outside the span: no fire.
        assert!(!lf.fires(&relation_inst(&[
            "[a]", "met", "[b]", "john", "married", "mary"
        ])));
        // Marker order reversed still works.
        assert!(lf.fires(&relation_inst(&["[b]", "and", "married", "[a]"])));
        // Missing marker: no fire.
        assert!(!lf.fires(&relation_inst(&["[a]", "married", "someone"])));
    }

    #[test]
    fn anchored_window_limit() {
        let mut tokens: Vec<&str> = vec!["[a]"];
        let filler: Vec<String> = (0..ANCHOR_WINDOW + 2).map(|i| format!("w{i}")).collect();
        tokens.extend(filler.iter().map(String::as_str));
        tokens.push("married");
        tokens.push("[b]");
        let lf = KeywordLf::anchored("married", 1);
        assert!(!lf.fires(&relation_inst(&tokens)));
    }

    #[test]
    fn apply_builds_column() {
        let lf = KeywordLf::new("great", 1);
        let split = Split {
            instances: vec![inst("a great movie"), inst("a bad movie")],
        };
        assert_eq!(lf.apply(&split), vec![1, ABSTAIN]);
    }

    #[test]
    fn names_render() {
        assert_eq!(KeywordLf::new("great", 1).name(), "great→1");
        assert_eq!(
            KeywordLf::anchored("married", 1).to_string(),
            "[A] married [B]→1"
        );
    }
}
