//! Prompt templates (Figure 2).
//!
//! A single template per task: a system prompt with the task description
//! and output-format instructions (Base or chain-of-thought variant),
//! followed by a user message containing the in-context examples and the
//! final `Query:`. The marker strings come from the shared prompt contract
//! in `datasculpt_llm::simulated`.

use crate::icl::Exemplar;
use datasculpt_data::DatasetSpec;
use datasculpt_llm::simulated::{
    EXPLANATION_PREFIX, KEYWORDS_PREFIX, LABEL_ONLY_MARKER, LABEL_PREFIX, QUERY_PREFIX,
};
use datasculpt_llm::{ChatMessage, ChatRequest};

/// Base vs. chain-of-thought template (the two columns of Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromptStyle {
    /// Keywords + label only.
    Base,
    /// Step-by-step explanation, then keywords + label (§3.2).
    CoT,
}

impl PromptStyle {
    /// Whether explanations are requested.
    pub fn is_cot(&self) -> bool {
        matches!(self, PromptStyle::CoT)
    }
}

/// The system prompt for a dataset/style (Figure 2, top block).
pub fn system_prompt(spec: &DatasetSpec, style: PromptStyle) -> String {
    let mut s = format!(
        "You are a helpful assistant who helps users in {} ",
        spec.task_description
    );
    match style {
        PromptStyle::Base => s.push_str(
            "After the user provides input, identify a list of keywords that helps making prediction. Finally, provide the class label for the input.",
        ),
        PromptStyle::CoT => s.push_str(
            "After the user provides input, first explain your reason process step by step. Then identify a list of keywords that helps making prediction. Finally, provide the class label for the input.",
        ),
    }
    s
}

/// Render one in-context example block.
pub fn render_exemplar(ex: &Exemplar, style: PromptStyle) -> String {
    let mut s = format!("{QUERY_PREFIX} {}\n", ex.text);
    if style.is_cot() {
        let expl = ex
            .explanation
            .as_deref()
            .unwrap_or("the indicative phrases below determine the class.");
        s.push_str(&format!("{EXPLANATION_PREFIX} {expl}\n"));
    }
    s.push_str(&format!("{KEYWORDS_PREFIX} {}\n", ex.keywords.join(", ")));
    s.push_str(&format!("{LABEL_PREFIX} {}\n", ex.label));
    s
}

/// Build the full LF-generation request messages.
pub fn build_messages(
    spec: &DatasetSpec,
    style: PromptStyle,
    exemplars: &[Exemplar],
    query_text: &str,
) -> Vec<ChatMessage> {
    let mut user = String::new();
    for ex in exemplars {
        user.push_str(&render_exemplar(ex, style));
        user.push('\n');
    }
    user.push_str(&format!("{QUERY_PREFIX} {query_text}"));
    vec![
        ChatMessage::system(system_prompt(spec, style)),
        ChatMessage::user(user),
    ]
}

/// Build the KATE auto-annotation request (§3.3): the example's label is
/// included in the user input and the LLM supplies the reasoning and
/// keywords.
pub fn annotation_messages(spec: &DatasetSpec, text: &str, label: usize) -> Vec<ChatMessage> {
    vec![
        ChatMessage::system(format!(
            "{} The label for the query is already provided; justify it.",
            system_prompt(spec, PromptStyle::CoT)
        )),
        ChatMessage::user(format!("{QUERY_PREFIX} {text}\n{LABEL_PREFIX} {label}")),
    ]
}

/// Build a PromptedLF-style annotation request: one template applied to one
/// instance, answered with a bare label.
pub fn label_only_messages(
    spec: &DatasetSpec,
    template: &str,
    query_text: &str,
) -> Vec<ChatMessage> {
    vec![
        ChatMessage::system(format!(
            "You are a helpful assistant who helps users in {} {template} {LABEL_ONLY_MARKER}, or the word abstain if unsure.",
            spec.task_description
        )),
        ChatMessage::user(format!("{QUERY_PREFIX} {query_text}")),
    ]
}

/// Build an LF-revision request (§5 future work): ask the model to replace
/// a keyword that failed the accuracy filter with a more specific phrase
/// from the same passage.
pub fn revision_messages(
    spec: &DatasetSpec,
    query_text: &str,
    keyword: &str,
    label: usize,
) -> Vec<ChatMessage> {
    vec![
        ChatMessage::system(format!(
            "You are a helpful assistant who helps users in {} The keyword '{keyword}' was not accurate enough for class {label}. {} from the passage that better indicates the class, then provide the class label.",
            spec.task_description,
            datasculpt_llm::simulated::REVISE_MARKER,
        )),
        ChatMessage::user(format!(
            "The keyword '{keyword}' should be revised for class {label}.\n{QUERY_PREFIX} {query_text}"
        )),
    ]
}

/// Convenience: wrap messages at a temperature/sample count.
pub fn request(messages: Vec<ChatMessage>, temperature: f64, n: usize) -> ChatRequest {
    ChatRequest::new(messages)
        .with_temperature(temperature)
        .with_n(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasculpt_data::DatasetName;
    use datasculpt_llm::simulated::COT_MARKER;

    fn spec() -> DatasetSpec {
        DatasetName::Imdb.spec().0
    }

    fn exemplar() -> Exemplar {
        Exemplar {
            text: "an extremely funny and heartwarming story".into(),
            keywords: vec!["funny".into(), "heartwarming".into()],
            label: 1,
            explanation: Some("the review praises the story.".into()),
        }
    }

    #[test]
    fn base_system_prompt_has_no_cot_marker() {
        let s = system_prompt(&spec(), PromptStyle::Base);
        assert!(!s.contains(COT_MARKER));
        assert!(s.contains("sentiment analysis"));
        assert!(s.contains("identify a list of keywords"));
    }

    #[test]
    fn cot_system_prompt_has_marker() {
        let s = system_prompt(&spec(), PromptStyle::CoT);
        assert!(s.contains(COT_MARKER));
        assert!(s.contains("step by step"));
    }

    #[test]
    fn exemplar_rendering_matches_figure2() {
        let base = render_exemplar(&exemplar(), PromptStyle::Base);
        assert_eq!(
            base,
            "Query: an extremely funny and heartwarming story\nKeywords: funny, heartwarming\nLabel: 1\n"
        );
        let cot = render_exemplar(&exemplar(), PromptStyle::CoT);
        assert!(cot.contains("Explanation: the review praises the story."));
    }

    #[test]
    fn built_messages_end_with_query() {
        let msgs = build_messages(&spec(), PromptStyle::Base, &[exemplar()], "was it good");
        assert_eq!(msgs.len(), 2);
        assert!(msgs[1].content.ends_with("Query: was it good"));
        // Exemplar appears before the final query.
        let qpos = msgs[1].content.rfind("Query: was it good").unwrap();
        assert!(msgs[1].content[..qpos].contains("Keywords: funny, heartwarming"));
    }

    #[test]
    fn annotation_messages_include_label() {
        let msgs = annotation_messages(&spec(), "a dull film", 0);
        assert!(msgs[1].content.contains("Label: 0"));
        assert!(msgs[0].content.contains(COT_MARKER));
    }

    #[test]
    fn revision_messages_carry_keyword_and_class() {
        let msgs = revision_messages(&spec(), "the plot was dull", "dull", 0);
        assert!(msgs[0].content.contains("Propose a more specific phrase"));
        assert!(msgs[0].content.contains("'dull'"));
        assert!(msgs[1].content.contains("for class 0"));
        assert!(msgs[1].content.ends_with("Query: the plot was dull"));
    }

    #[test]
    fn label_only_messages_request_bare_label() {
        let msgs = label_only_messages(&spec(), "Is this review positive?", "loved it");
        assert!(msgs[0]
            .content
            .contains("Respond with only the class label"));
        assert!(msgs[1].content.ends_with("Query: loved it"));
    }
}
