//! Bridge between the pipeline and the `datasculpt-obs` event model.
//!
//! The pipeline emits *untimed* typed events; all timing lives on the
//! observer side (`datasculpt_obs::Tracer` with an injectable clock), which
//! is what keeps the core crate inside ds-lint's `wall-clock` rule and an
//! observed run digest-identical to an unobserved one.

pub use datasculpt_obs::{Counter, Event, Multi, NoopObserver, RunObserver, SharedObserver, Stage};

use crate::filter::AddOutcome;
use datasculpt_llm::{ModelId, PricingTable, TokenUsage, UsageLedger};

/// Record one call's token usage in the ledger and mirror it to the
/// observer as a usage event carrying the exact nano-USD cost.
pub(crate) fn record_usage(
    ledger: &mut UsageLedger,
    obs: &mut dyn RunObserver,
    model: ModelId,
    usage: TokenUsage,
) {
    ledger.record(model, usage);
    obs.on_event(&Event::Usage {
        model: model.api_name().to_string(),
        prompt_tokens: usage.prompt_tokens,
        completion_tokens: usage.completion_tokens,
        cost_nanousd: PricingTable::cost_nanousd(
            model,
            usage.prompt_tokens,
            usage.completion_tokens,
        ),
    });
}

/// Emit a counter event, skipping zero deltas.
pub(crate) fn count(obs: &mut dyn RunObserver, counter: Counter, delta: u64) {
    if delta > 0 {
        obs.on_event(&Event::Counter { counter, delta });
    }
}

/// Per-category tally of filter outcomes, flushed as counter events once
/// per stage rather than one event per candidate.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct OutcomeTally {
    added: u64,
    duplicate: u64,
    validity: u64,
    accuracy: u64,
    redundancy: u64,
}

impl OutcomeTally {
    pub(crate) fn note(&mut self, outcome: AddOutcome) {
        match outcome {
            AddOutcome::Added => self.added += 1,
            AddOutcome::Duplicate => self.duplicate += 1,
            AddOutcome::RejectedValidity => self.validity += 1,
            AddOutcome::RejectedAccuracy => self.accuracy += 1,
            AddOutcome::RejectedRedundancy => self.redundancy += 1,
        }
    }

    pub(crate) fn emit(&self, obs: &mut dyn RunObserver) {
        count(obs, Counter::LfAccepted, self.added);
        count(obs, Counter::LfDuplicate, self.duplicate);
        count(obs, Counter::LfRejectedValidity, self.validity);
        count(obs, Counter::LfRejectedAccuracy, self.accuracy);
        count(obs, Counter::LfRejectedRedundancy, self.redundancy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasculpt_obs::{ManualClock, MetricsRecorder, Tracer};

    #[test]
    fn record_usage_mirrors_ledger_to_observer_with_exact_cost() {
        let metrics = MetricsRecorder::new();
        let mut obs =
            Tracer::new(Box::new(ManualClock::new(1))).with_sink(Box::new(metrics.clone()));
        let mut ledger = UsageLedger::new();
        let usage = TokenUsage {
            prompt_tokens: 1_000,
            completion_tokens: 100,
        };
        record_usage(&mut ledger, &mut obs, ModelId::Gpt35Turbo, usage);
        assert_eq!(ledger.calls(), 1);
        let snap = metrics.snapshot();
        let m = &snap.models["gpt-3.5-turbo-0613"];
        assert_eq!(m.prompt_tokens, 1_000);
        assert_eq!(m.cost_nanousd, ledger.total_cost_nanousd());
    }

    #[test]
    fn tally_flushes_nonzero_counters_only() {
        let metrics = MetricsRecorder::new();
        let mut obs =
            Tracer::new(Box::new(ManualClock::new(1))).with_sink(Box::new(metrics.clone()));
        let mut tally = OutcomeTally::default();
        tally.note(AddOutcome::Added);
        tally.note(AddOutcome::Added);
        tally.note(AddOutcome::RejectedAccuracy);
        tally.emit(&mut obs);
        let counters = metrics.snapshot().counters;
        assert_eq!(counters["lf_accepted"], 2);
        assert_eq!(counters["lf_rejected_accuracy"], 1);
        assert!(!counters.contains_key("lf_duplicate"));
    }
}
