//! Fast n-gram containment index over a split.
//!
//! Applying hundreds of keyword LFs to a 96k-instance corpus by scanning
//! tokens is quadratic pain; instead each instance's n-grams (orders 1–3)
//! are interned once into a split-local [`TokenArena`] and stored as a
//! sorted symbol run in one flat CSR buffer (a contiguous symbol vector
//! plus per-instance offsets), making LF application one arena lookup plus
//! a binary search per instance. Relation datasets get a second CSR
//! restricted to the short window between the `[a]`/`[b]` entity markers,
//! which answers anchored-LF activation the same way; on classification
//! datasets that CSR is all empty ranges — adjacent equal offsets, no
//! per-instance allocation at all.

use crate::lf::{KeywordLf, ANCHOR_WINDOW};
use datasculpt_data::Split;
use datasculpt_exec::Pool;
use datasculpt_labelmodel::ABSTAIN;
use datasculpt_text::ngram::for_each_ngram;
use datasculpt_text::TokenArena;

/// Flat CSR gram storage: instance `i`'s sorted, deduplicated gram symbols
/// live at `syms[offsets[i]..offsets[i + 1]]`.
#[derive(Debug, Clone, Default)]
struct GramCsr {
    syms: Vec<u32>,
    offsets: Vec<usize>,
}

impl GramCsr {
    fn with_capacity(n: usize) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        Self {
            syms: Vec::new(),
            offsets,
        }
    }

    /// Append one instance's symbols: sort + dedup the tail in place, then
    /// seal the row with the next offset.
    fn push_row(&mut self, mut row: Vec<u32>) {
        row.sort_unstable();
        row.dedup();
        self.syms.extend_from_slice(&row);
        self.offsets.push(self.syms.len());
    }

    #[inline]
    fn row(&self, i: usize) -> &[u32] {
        let lo = self.offsets.get(i).copied().unwrap_or(0);
        let hi = self.offsets.get(i + 1).copied().unwrap_or(lo);
        self.syms.get(lo..hi).unwrap_or(&[])
    }

    /// Rows `range.start..range.end` in order, as one pass over the offset
    /// pairs. The hot path for LF application: per row this is a single
    /// slice-of-`syms` extraction, with none of the per-index fallback
    /// branches of [`row`](Self::row) inside the scan loop.
    #[inline]
    fn rows_in(&self, range: std::ops::Range<usize>) -> impl Iterator<Item = &[u32]> + '_ {
        let hi = range.end.saturating_add(1).min(self.offsets.len());
        let offs = self.offsets.get(range.start..hi).unwrap_or(&[]);
        let mut prev = offs.first().copied().unwrap_or(0);
        let mut rest = self.syms.get(prev..).unwrap_or(&[]);
        offs.iter().skip(1).map(move |&end| {
            // Offsets are non-decreasing and end at syms.len(), so the clamp
            // never bites; it just makes the split provably in-bounds.
            let len = end.saturating_sub(prev).min(rest.len());
            prev = end;
            let (row, tail) = rest.split_at(len);
            rest = tail;
            row
        })
    }

    #[inline]
    fn contains(&self, i: usize, sym: u32) -> bool {
        self.row(i).binary_search(&sym).is_ok()
    }
}

/// Precomputed n-gram symbol sets for every instance of a split. Symbols
/// come from one shared arena (first-seen order, so builds are
/// deterministic), containment is a binary search over a contiguous row,
/// and the whole index is three flat allocations instead of two
/// `Vec<Vec<u64>>` jungles.
#[derive(Debug, Clone)]
pub struct NgramIndex {
    arena: TokenArena,
    /// All n-grams (orders 1–3) of the LF-matching token view.
    full: GramCsr,
    /// N-grams inside the anchored window (relation datasets; empty offset
    /// ranges otherwise).
    between: GramCsr,
}

impl NgramIndex {
    /// Build the index for a split.
    pub fn build(split: &Split) -> Self {
        let mut arena = TokenArena::new();
        let mut full = GramCsr::with_capacity(split.len());
        let mut between = GramCsr::with_capacity(split.len());
        let mut row = Vec::new();
        for inst in split.iter() {
            let tokens = inst.match_tokens();
            row.clear();
            for_each_ngram(tokens, 3, |g| row.push(arena.intern(g)));
            full.push_row(std::mem::take(&mut row));
            if inst.marked_tokens.is_some() {
                let ia = tokens.iter().position(|t| t == "[a]");
                let ib = tokens.iter().position(|t| t == "[b]");
                if let (Some(ia), Some(ib)) = (ia, ib) {
                    let (lo, hi) = if ia < ib { (ia, ib) } else { (ib, ia) };
                    if hi - lo <= ANCHOR_WINDOW && hi - lo >= 2 {
                        for_each_ngram(tokens.get(lo + 1..hi).unwrap_or(&[]), 3, |g| {
                            row.push(arena.intern(g))
                        });
                    }
                }
            }
            between.push_row(std::mem::take(&mut row));
        }
        Self {
            arena,
            full,
            between,
        }
    }

    /// Number of instances indexed.
    pub fn len(&self) -> usize {
        self.full.offsets.len() - 1
    }

    /// True if no instances are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct grams interned across the split.
    pub fn vocab_len(&self) -> usize {
        self.arena.len()
    }

    /// Total anchored-window gram entries across all instances (0 on
    /// classification datasets: every between-range is empty).
    pub fn anchored_grams(&self) -> usize {
        self.between.syms.len()
    }

    #[inline]
    fn csr(&self, anchored: bool) -> &GramCsr {
        if anchored {
            &self.between
        } else {
            &self.full
        }
    }

    /// Whether an LF fires on instance `i`.
    #[inline]
    pub fn fires(&self, lf: &KeywordLf, i: usize) -> bool {
        match self.arena.lookup(&lf.keyword) {
            None => false,
            Some(sym) => i < self.len() && self.csr(lf.anchored).contains(i, sym),
        }
    }

    /// The LF's vote column over the indexed split.
    pub fn apply(&self, lf: &KeywordLf) -> Vec<i32> {
        let n = self.len();
        let Some(sym) = self.arena.lookup(&lf.keyword) else {
            // Keyword never seen in the split: the column is all abstain.
            return vec![ABSTAIN; n];
        };
        let csr = self.csr(lf.anchored);
        csr.rows_in(0..n)
            .map(|row| {
                if row.binary_search(&sym).is_ok() {
                    lf.label as i32
                } else {
                    ABSTAIN
                }
            })
            .collect()
    }

    /// The LF's vote column, computed in chunked shards on `pool`.
    ///
    /// Per-instance votes are independent and the shard structure depends
    /// only on the split length, so the concatenated result is
    /// byte-identical to [`apply`](Self::apply) at every thread count.
    pub fn apply_with(&self, lf: &KeywordLf, pool: &Pool) -> Vec<i32> {
        let n = self.len();
        let Some(sym) = self.arena.lookup(&lf.keyword) else {
            return vec![ABSTAIN; n];
        };
        let csr = self.csr(lf.anchored);
        let shards = pool.map_shards(n, |range| {
            csr.rows_in(range)
                .map(|row| {
                    if row.binary_search(&sym).is_ok() {
                        lf.label as i32
                    } else {
                        ABSTAIN
                    }
                })
                .collect::<Vec<i32>>()
        });
        match shards {
            Ok(cols) => {
                let mut out = Vec::with_capacity(n);
                for col in cols {
                    out.extend(col);
                }
                out
            }
            // A worker panic here is unreachable in practice; degrade to
            // the serial path rather than surfacing an error.
            Err(_) => self.apply(lf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasculpt_data::Instance;

    fn split(texts: &[&str]) -> Split {
        Split {
            instances: texts
                .iter()
                .enumerate()
                .map(|(id, t)| Instance {
                    id,
                    text: t.to_string(),
                    tokens: datasculpt_text::tokenize(t),
                    marked_tokens: None,
                    entities: None,
                    label: None,
                })
                .collect(),
        }
    }

    #[test]
    fn index_matches_direct_application() {
        let s = split(&[
            "this movie was a waste of time",
            "a great and funny movie",
            "nothing to say here",
        ]);
        let idx = NgramIndex::build(&s);
        for lf in [
            KeywordLf::new("waste of time", 0),
            KeywordLf::new("great", 1),
            KeywordLf::new("funny movie", 1),
            KeywordLf::new("absent", 0),
        ] {
            assert_eq!(idx.apply(&lf), lf.apply(&s), "lf {lf}");
        }
    }

    #[test]
    fn anchored_index_matches_direct() {
        let marked = [
            vec!["[a]", "married", "[b]", "in", "june"],
            vec!["[a]", "met", "[b]", "while", "john", "married", "sue"],
            vec!["no", "markers", "married", "here"],
        ];
        let s = Split {
            instances: marked
                .iter()
                .enumerate()
                .map(|(id, toks)| Instance {
                    id,
                    text: toks.join(" "),
                    tokens: toks.iter().map(|s| s.to_string()).collect(),
                    marked_tokens: Some(toks.iter().map(|s| s.to_string()).collect()),
                    entities: Some(("x".into(), "y".into())),
                    label: None,
                })
                .collect(),
        };
        let idx = NgramIndex::build(&s);
        let lf = KeywordLf::anchored("married", 1);
        assert_eq!(idx.apply(&lf), lf.apply(&s));
        assert_eq!(idx.apply(&lf), vec![1, ABSTAIN, ABSTAIN]);
        assert!(idx.anchored_grams() > 0);
    }

    #[test]
    fn classification_split_stores_no_anchored_grams() {
        // Regression: the old index built a per-instance between-set even
        // when no instance had entity markers. The CSR must hold zero
        // anchored entries — every between-range an empty slice — and
        // anchored LFs must abstain everywhere.
        let s = split(&[
            "this movie was a waste of time",
            "a great and funny movie",
            "nothing to say here",
        ]);
        let idx = NgramIndex::build(&s);
        assert_eq!(idx.anchored_grams(), 0);
        let lf = KeywordLf::anchored("movie", 1);
        assert_eq!(idx.apply(&lf), vec![ABSTAIN; 3]);
        assert!(!idx.fires(&lf, 0));
        // The full index is untouched by the anchored fast path.
        assert!(idx.vocab_len() > 0);
    }

    #[test]
    fn empty_split() {
        let idx = NgramIndex::build(&Split::default());
        assert!(idx.is_empty());
        assert_eq!(idx.apply(&KeywordLf::new("x", 0)), Vec::<i32>::new());
    }

    #[test]
    fn unseen_keyword_abstains_on_both_paths() {
        let s = split(&["alpha beta", "gamma delta"]);
        let idx = NgramIndex::build(&s);
        let lf = KeywordLf::new("omega", 1);
        assert_eq!(idx.apply(&lf), vec![ABSTAIN, ABSTAIN]);
        assert_eq!(idx.apply_with(&lf, &Pool::new(2)), vec![ABSTAIN, ABSTAIN]);
        assert!(!idx.fires(&lf, 0));
    }

    #[test]
    fn parallel_apply_matches_serial_at_every_thread_count() {
        let s = split(&[
            "this movie was a waste of time",
            "a great and funny movie",
            "nothing to say here",
            "another movie about nothing",
        ]);
        let idx = NgramIndex::build(&s);
        for lf in [KeywordLf::new("movie", 1), KeywordLf::new("absent", 0)] {
            for threads in [1, 2, 8] {
                assert_eq!(idx.apply_with(&lf, &Pool::new(threads)), idx.apply(&lf));
            }
        }
    }
}
