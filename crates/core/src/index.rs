//! Fast n-gram containment index over a split.
//!
//! Applying hundreds of keyword LFs to a 96k-instance corpus by scanning
//! tokens is quadratic pain; instead each instance's n-grams (orders 1–3)
//! are hashed once into a per-instance set, making LF application an O(1)
//! lookup. Relation datasets get a second set restricted to the short
//! window between the `[a]`/`[b]` entity markers, which answers anchored-LF
//! activation in O(1) as well.

use crate::lf::{KeywordLf, ANCHOR_WINDOW};
use datasculpt_data::Split;
use datasculpt_exec::Pool;
use datasculpt_labelmodel::ABSTAIN;
use datasculpt_text::ngram::extract_ngrams;
use datasculpt_text::rng::hash_str;

/// Precomputed n-gram hash sets for every instance of a split, stored as
/// sorted, deduplicated vectors: containment is a binary search, iteration
/// order is deterministic, and the memory layout is a single contiguous
/// allocation per instance.
#[derive(Debug, Clone)]
pub struct NgramIndex {
    /// All n-grams (orders 1–3) of the LF-matching token view.
    full: Vec<Vec<u64>>,
    /// N-grams inside the anchored window (relation datasets; empty sets
    /// otherwise).
    between: Vec<Vec<u64>>,
}

/// Sort + dedup a hash list into binary-searchable form.
fn into_sorted_set(mut hashes: Vec<u64>) -> Vec<u64> {
    hashes.sort_unstable();
    hashes.dedup();
    hashes
}

impl NgramIndex {
    /// Build the index for a split.
    pub fn build(split: &Split) -> Self {
        let mut full = Vec::with_capacity(split.len());
        let mut between = Vec::with_capacity(split.len());
        for inst in split.iter() {
            let tokens = inst.match_tokens();
            let grams = extract_ngrams(tokens, 3);
            full.push(into_sorted_set(grams.iter().map(|g| hash_str(g)).collect()));
            let mut span_set = Vec::new();
            if inst.marked_tokens.is_some() {
                let ia = tokens.iter().position(|t| t == "[a]");
                let ib = tokens.iter().position(|t| t == "[b]");
                if let (Some(ia), Some(ib)) = (ia, ib) {
                    let (lo, hi) = if ia < ib { (ia, ib) } else { (ib, ia) };
                    if hi - lo <= ANCHOR_WINDOW && hi - lo >= 2 {
                        for g in extract_ngrams(&tokens[lo + 1..hi], 3) {
                            span_set.push(hash_str(&g));
                        }
                    }
                }
            }
            between.push(into_sorted_set(span_set));
        }
        Self { full, between }
    }

    /// Number of instances indexed.
    pub fn len(&self) -> usize {
        self.full.len()
    }

    /// True if no instances are indexed.
    pub fn is_empty(&self) -> bool {
        self.full.is_empty()
    }

    /// Whether an LF fires on instance `i`.
    #[inline]
    pub fn fires(&self, lf: &KeywordLf, i: usize) -> bool {
        let h = hash_str(&lf.keyword);
        let set = if lf.anchored {
            &self.between
        } else {
            &self.full
        };
        set.get(i).is_some_and(|s| s.binary_search(&h).is_ok())
    }

    /// The LF's vote column over the indexed split.
    pub fn apply(&self, lf: &KeywordLf) -> Vec<i32> {
        let h = hash_str(&lf.keyword);
        let sets = if lf.anchored {
            &self.between
        } else {
            &self.full
        };
        sets.iter()
            .map(|s| {
                if s.binary_search(&h).is_ok() {
                    lf.label as i32
                } else {
                    ABSTAIN
                }
            })
            .collect()
    }

    /// The LF's vote column, computed in chunked shards on `pool`.
    ///
    /// Per-instance votes are independent and the shard structure depends
    /// only on the split length, so the concatenated result is
    /// byte-identical to [`apply`](Self::apply) at every thread count.
    pub fn apply_with(&self, lf: &KeywordLf, pool: &Pool) -> Vec<i32> {
        let h = hash_str(&lf.keyword);
        let sets = if lf.anchored {
            &self.between
        } else {
            &self.full
        };
        let shards = pool.map_shards(sets.len(), |range| {
            sets[range]
                .iter()
                .map(|s| {
                    if s.binary_search(&h).is_ok() {
                        lf.label as i32
                    } else {
                        ABSTAIN
                    }
                })
                .collect::<Vec<i32>>()
        });
        match shards {
            Ok(cols) => {
                let mut out = Vec::with_capacity(sets.len());
                for col in cols {
                    out.extend(col);
                }
                out
            }
            // A worker panic here is unreachable in practice; degrade to
            // the serial path rather than surfacing an error.
            Err(_) => self.apply(lf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasculpt_data::Instance;

    fn split(texts: &[&str]) -> Split {
        Split {
            instances: texts
                .iter()
                .enumerate()
                .map(|(id, t)| Instance {
                    id,
                    text: t.to_string(),
                    tokens: datasculpt_text::tokenize(t),
                    marked_tokens: None,
                    entities: None,
                    label: None,
                })
                .collect(),
        }
    }

    #[test]
    fn index_matches_direct_application() {
        let s = split(&[
            "this movie was a waste of time",
            "a great and funny movie",
            "nothing to say here",
        ]);
        let idx = NgramIndex::build(&s);
        for lf in [
            KeywordLf::new("waste of time", 0),
            KeywordLf::new("great", 1),
            KeywordLf::new("funny movie", 1),
            KeywordLf::new("absent", 0),
        ] {
            assert_eq!(idx.apply(&lf), lf.apply(&s), "lf {lf}");
        }
    }

    #[test]
    fn anchored_index_matches_direct() {
        let marked = [
            vec!["[a]", "married", "[b]", "in", "june"],
            vec!["[a]", "met", "[b]", "while", "john", "married", "sue"],
            vec!["no", "markers", "married", "here"],
        ];
        let s = Split {
            instances: marked
                .iter()
                .enumerate()
                .map(|(id, toks)| Instance {
                    id,
                    text: toks.join(" "),
                    tokens: toks.iter().map(|s| s.to_string()).collect(),
                    marked_tokens: Some(toks.iter().map(|s| s.to_string()).collect()),
                    entities: Some(("x".into(), "y".into())),
                    label: None,
                })
                .collect(),
        };
        let idx = NgramIndex::build(&s);
        let lf = KeywordLf::anchored("married", 1);
        assert_eq!(idx.apply(&lf), lf.apply(&s));
        assert_eq!(idx.apply(&lf), vec![1, ABSTAIN, ABSTAIN]);
    }

    #[test]
    fn empty_split() {
        let idx = NgramIndex::build(&Split::default());
        assert!(idx.is_empty());
        assert_eq!(idx.apply(&KeywordLf::new("x", 0)), Vec::<i32>::new());
    }

    #[test]
    fn parallel_apply_matches_serial_at_every_thread_count() {
        let s = split(&[
            "this movie was a waste of time",
            "a great and funny movie",
            "nothing to say here",
            "another movie about nothing",
        ]);
        let idx = NgramIndex::build(&s);
        for lf in [KeywordLf::new("movie", 1), KeywordLf::new("absent", 0)] {
            for threads in [1, 2, 8] {
                assert_eq!(idx.apply_with(&lf, &Pool::new(threads)), idx.apply(&lf));
            }
        }
    }
}
